"""Multi-constraint k-section → standard k-section (Lemma D.1 / 6.2).

With ``c ∈ O(1)`` balance constraints, the multi-constraint k-section
problem reduces to the single-constraint one: each node of constraint
class ``V_i`` is blown up into a block of ``m_i = n₀^i`` nodes, the
geometric size separation making the single balance constraint enforce
every class constraint simultaneously (the paper's induction from
``i = c`` down to 1).  The construction multiplies the size to
``n' ≈ n^{c+1}``, which is why it only transfers approximation
guarantees in a weakened form (Appendix D.1's discussion).

Blocks here are Lemma A.5 blocks by default; for inputs with
``|E| = ω(n)`` the paper switches to the strong blocks of Appendix D.1
(``strong=True``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.balance import MultiConstraint
from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..errors import ProblemTooLargeError

__all__ = ["MultiToSingleReduction", "build_multi_to_single"]


@dataclass
class MultiToSingleReduction:
    """Bookkeeping for the Lemma D.1 blow-up."""

    original: Hypergraph = field(repr=False)
    constraints: MultiConstraint
    k: int
    hypergraph: Hypergraph = field(repr=False)
    # per original node: the ids of its block in the derived instance
    blocks: tuple[tuple[int, ...], ...]
    num_isolated: int

    def partition_from_original(self, partition: Partition) -> Partition:
        """Original feasible k-section → derived balanced k-section.

        Blocks inherit their node's part; isolated filler nodes are
        spread to even the part sizes exactly.
        """
        n_prime = self.hypergraph.n
        labels = np.full(n_prime, -1, dtype=np.int64)
        for v, blk in enumerate(self.blocks):
            for x in blk:
                labels[x] = partition.labels[v]
        sizes = np.bincount(labels[labels >= 0], minlength=self.k)
        target = n_prime // self.k
        fill = np.flatnonzero(labels < 0)
        pos = 0
        for p in range(self.k):
            need = target - int(sizes[p])
            for _ in range(max(need, 0)):
                labels[fill[pos]] = p
                pos += 1
        # any leftovers (rounding) go to the lightest parts
        for x in fill[pos:]:
            sizes = np.bincount(labels[labels >= 0], minlength=self.k)
            labels[x] = int(np.argmin(sizes))
        return Partition(labels, self.k)

    def partition_to_original(self, partition: Partition) -> Partition:
        """Derived block-respecting k-section → original k-section
        (each node takes its block's majority part)."""
        labels = np.empty(self.original.n, dtype=np.int64)
        for v, blk in enumerate(self.blocks):
            counts = np.bincount(partition.labels[list(blk)],
                                 minlength=self.k)
            labels[v] = int(np.argmax(counts))
        return Partition(labels, self.k)


def build_multi_to_single(
    graph: Hypergraph,
    constraints: MultiConstraint,
    k: int = 2,
    max_nodes: int = 100_000,
) -> MultiToSingleReduction:
    """Construct the Lemma D.1 instance (ε = 0, k-section).

    Requires every ``|V_i|`` divisible by ``k`` (the paper pads with
    isolated nodes otherwise; callers should pre-pad for exactness).
    """
    subsets = constraints.subsets
    c = len(subsets)
    for s in subsets:
        if len(s) % k != 0:
            raise ValueError(
                "each constraint class size must be divisible by k "
                "(pad with isolated nodes first)")
    in_subset = {}
    for i, s in enumerate(subsets):
        for v in s:
            in_subset[v] = i + 1  # class index 1..c; 0 = unconstrained
    # n0: nodes after the (k-1)*|V \ union| isolated-node padding
    unconstrained = [v for v in range(graph.n) if v not in in_subset]
    n0 = graph.n + (k - 1) * len(unconstrained)
    sizes = [1] * (c + 1)
    for i in range(1, c + 1):
        sizes[i] = n0 ** i
    total = sum(sizes[in_subset.get(v, 0)] for v in range(graph.n))
    total += (k - 1) * len(unconstrained)
    if total > max_nodes:
        raise ProblemTooLargeError(f"n' = {total} exceeds guard {max_nodes}")

    edges: list[tuple[int, ...]] = []
    weights: list[float] = []
    blocks: list[tuple[int, ...]] = []
    nxt = 0
    # a block's splitting cost must dominate any cut of original edges
    heavy = float((k - 1) * graph.num_edges *
                  float(graph.edge_weights.sum() if graph.num_edges else 1)
                  + 1)
    for v in range(graph.n):
        size = sizes[in_subset.get(v, 0)]
        blk = tuple(range(nxt, nxt + size))
        nxt += size
        blocks.append(blk)
        # heavy path: splitting the block costs >= heavy > any edge cut
        for i in range(size - 1):
            edges.append((blk[i], blk[i + 1]))
            weights.append(heavy)
    iso_start = nxt
    nxt += (k - 1) * len(unconstrained)
    # original hyperedges: one representative pin per node's block
    for j, e in enumerate(graph.edges):
        edges.append(tuple(blocks[v][0] for v in e))
        weights.append(float(graph.edge_weights[j]))
    hg = Hypergraph(nxt, edges, edge_weights=weights,
                    name="multi-to-single")
    return MultiToSingleReduction(graph, constraints, k, hg,
                                  tuple(blocks), nxt - iso_start)
