"""Orthogonal Vectors → multi-constraint partitioning (Theorem 6.4).

With ``c = ω(log n)`` constraints, any finite-factor approximation in
subquadratic time would falsify SETH.  The construction: one gadget per
binary vector (an anchor node ``u_i`` plus nodes ``v_i^{(j)}`` for its
1-coordinates, joined by one hyperedge); a constraint forcing at least
two red anchors; and a per-dimension constraint allowing at most one red
``v_i^{(j)}``.  A cost-0 feasible partition exists iff two of the
vectors are orthogonal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from ..core.hypergraph import Hypergraph
from ..core.partition import BLUE, RED, Partition
from ._builder import BuiltInstance, MultiConstraintBuilder

__all__ = ["OVPInstance", "ovp_brute_force", "OVPReduction",
           "build_ovp_reduction"]


@dataclass(frozen=True)
class OVPInstance:
    """A set of m binary vectors of dimension D."""

    vectors: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        vs = tuple(tuple(int(bool(x)) for x in v) for v in self.vectors)
        if vs and any(len(v) != len(vs[0]) for v in vs):
            raise ValueError("vectors must share a dimension")
        object.__setattr__(self, "vectors", vs)

    @property
    def m(self) -> int:
        return len(self.vectors)

    @property
    def dim(self) -> int:
        return len(self.vectors[0]) if self.vectors else 0


def ovp_brute_force(instance: OVPInstance) -> tuple[int, int] | None:
    """O(m²·D) reference: indices of an orthogonal pair, or ``None``."""
    for i, j in combinations(range(instance.m), 2):
        if all(a * b == 0 for a, b in zip(instance.vectors[i],
                                          instance.vectors[j])):
            return i, j
    return None


@dataclass
class OVPReduction:
    instance: OVPInstance
    built: BuiltInstance = field(repr=False)
    anchors: tuple[int, ...]                    # u_i
    dim_nodes: tuple[tuple[int, ...], ...]      # dim_nodes[i][j] = v_i^{(j)}

    @property
    def hypergraph(self) -> Hypergraph:
        return self.built.hypergraph

    def partition_from_pair(self, i1: int, i2: int) -> Partition:
        """Orthogonal pair → feasible cost-0 partition (the two vector
        gadgets red, everything else blue)."""
        labels = np.full(self.hypergraph.n, BLUE, dtype=np.int64)
        for v in self.built.red_anchor:
            labels[v] = RED
        for i in (i1, i2):
            labels[self.anchors[i]] = RED
            for j, bit in enumerate(self.instance.vectors[i]):
                if bit:
                    labels[self.dim_nodes[i][j]] = RED
        return Partition(labels, 2)

    def pair_from_partition(self, partition: Partition) -> tuple[int, int]:
        """Cost-0 feasible partition → an orthogonal pair (any two red
        anchors)."""
        red = int(partition.labels[self.built.red_anchor[0]])
        reds = [i for i, u in enumerate(self.anchors)
                if partition.labels[u] == red]
        assert len(reds) >= 2, "not a cost-0 feasible partition"
        return reds[0], reds[1]


def build_ovp_reduction(instance: OVPInstance, eps: float = 0.3) -> OVPReduction:
    """Build the Theorem 6.4 construction (``c = D + 2`` constraints)."""
    if instance.m < 2:
        raise ValueError("need at least two vectors")
    b = MultiConstraintBuilder(eps)
    m, D = instance.m, instance.dim
    anchors = tuple(b.alloc(m))
    dim_nodes = tuple(tuple(b.alloc(D)) for _ in range(m))
    for i in range(m):
        pins = [anchors[i]] + [dim_nodes[i][j] for j in range(D)
                               if instance.vectors[i][j]]
        b.add_edge(pins)
    b.at_least_red(list(anchors), h=2)
    for j in range(D):
        b.at_most_red([dim_nodes[i][j] for i in range(m)], h=1)
    built = b.build(name=f"ovp-reduction-m{m}-D{D}")
    return OVPReduction(instance, built, anchors, dim_nodes)
