"""The Smallest p-Edge Subgraph problem and the Lemma C.1 reduction.

Theorem 4.1's engine: SpES — given a graph and an integer ``p``, pick a
minimum set of nodes inducing at least ``p`` edges — is inapproximable
under ETH [35], and Lemma C.1 embeds it into ε-balanced 2-way hypergraph
partitioning with ``OPT_part = OPT_SpES``.

The reduction builds (Figure 3):

* a block ``B_e`` of ``m ≥ n+1`` nodes per input edge ``e``;
* a node ``b_v`` per input node ``v``;
* two large blocks ``A`` (forced blue, tied to every ``b_v`` by ``m``
  parallel 2-pin hyperedges) and ``A'`` (forced red);
* a *main hyperedge* per ``v``: ``{b_v} ∪ {one node of each incident
  B_e}`` — cut exactly when some incident edge-block turns red;
* sizes chosen so the balance constraint forces ≥ ``p`` red edge-blocks.

Because a full exact solve of the derived instance is out of reach even
for tiny inputs (n' = O(n³)), optimum verification follows the proof's
own structure: Lemma A.5 guarantees block-splitting solutions are
dominated (tested property-based in the gadget tests), so the optimum
over *block-respecting* partitions — computed exactly here by weighted
enumeration over the contracted units — is the true optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from ..core.balance import balance_threshold
from ..core.cost import Metric, cost
from ..core.hypergraph import Hypergraph
from ..core.partition import BLUE, RED, Partition
from ..errors import ProblemTooLargeError

__all__ = ["SpESInstance", "min_p_union", "spes_optimum", "SpESReduction",
           "build_spes_reduction", "MpUInstance", "mpu_optimum",
           "build_mpu_reduction"]


@dataclass(frozen=True)
class SpESInstance:
    """A simple graph plus the target edge count ``p``."""

    num_nodes: int
    edges: tuple[tuple[int, int], ...]
    p: int

    def __post_init__(self) -> None:
        norm = tuple(sorted((min(u, v), max(u, v)) for u, v in self.edges))
        if len(set(norm)) != len(norm):
            raise ValueError("duplicate edges")
        for u, v in norm:
            if u == v or not 0 <= u < self.num_nodes or not 0 <= v < self.num_nodes:
                raise ValueError(f"bad edge ({u},{v})")
        if not 0 <= self.p <= len(norm):
            raise ValueError("need 0 <= p <= |E|")
        object.__setattr__(self, "edges", norm)


@dataclass(frozen=True)
class MpUInstance:
    """Minimum p-Union (Appendix C.5, [11]): given a hypergraph, choose
    ``p`` hyperedges minimising the size of their union.  SpES is the
    special case where every hyperedge has size 2."""

    num_nodes: int
    sets: tuple[tuple[int, ...], ...]
    p: int

    def __post_init__(self) -> None:
        norm = tuple(tuple(sorted(set(int(v) for v in s)))
                     for s in self.sets)
        for s in norm:
            if not s:
                raise ValueError("empty set")
            if s[0] < 0 or s[-1] >= self.num_nodes:
                raise ValueError("set member out of range")
        if not 0 <= self.p <= len(norm):
            raise ValueError("need 0 <= p <= number of sets")
        object.__setattr__(self, "sets", norm)


def mpu_optimum(instance: MpUInstance,
                max_combos: int = 2_000_000) -> tuple[int, tuple[int, ...]]:
    """Exact Minimum p-Union by brute force over set p-subsets."""
    if instance.p == 0:
        return 0, ()
    m = len(instance.sets)
    if math.comb(m, instance.p) > max_combos:
        raise ProblemTooLargeError("too many set subsets to enumerate")
    best = None
    best_sets: tuple[int, ...] = ()
    for chosen in combinations(range(m), instance.p):
        covered = set()
        for j in chosen:
            covered.update(instance.sets[j])
        if best is None or len(covered) < best:
            best = len(covered)
            best_sets = chosen
    assert best is not None
    return best, best_sets


def min_p_union(instance: SpESInstance, max_combos: int = 2_000_000) -> tuple[int, tuple[int, ...]]:
    """Exact SpES optimum: the fewest nodes covered by some ``p`` edges.

    (Choosing ``V₀`` = the covered nodes gives the SpES formulation; the
    two optima coincide.)  Brute force over edge ``p``-subsets.
    """
    if instance.p == 0:
        return 0, ()
    m = len(instance.edges)
    if math.comb(m, instance.p) > max_combos:
        raise ProblemTooLargeError("too many edge subsets to enumerate")
    best = None
    best_edges: tuple[int, ...] = ()
    for chosen in combinations(range(m), instance.p):
        covered = set()
        for j in chosen:
            covered.update(instance.edges[j])
        if best is None or len(covered) < best:
            best = len(covered)
            best_edges = chosen
    assert best is not None
    return best, best_edges


def spes_optimum(instance: SpESInstance, **kwargs) -> int:
    """OPT_SpES — minimum ``|V₀|`` with ≥ p induced edges."""
    return min_p_union(instance, **kwargs)[0]


@dataclass
class SpESReduction:
    """The derived partitioning instance plus its bookkeeping.

    Node layout: ``A`` nodes, then ``A'`` nodes, then the blocks ``B_e``
    (in edge order), then the ``b_v`` nodes.
    """

    instance: SpESInstance
    eps: float
    m: int                       # block size for the B_e
    hypergraph: Hypergraph = field(repr=False)
    a_nodes: tuple[int, ...]
    a_prime_nodes: tuple[int, ...]
    edge_blocks: tuple[tuple[int, ...], ...]
    bv_nodes: tuple[int, ...]
    main_edge_ids: tuple[int, ...]

    @property
    def n_prime(self) -> int:
        return self.hypergraph.n

    # -- solution mappings (the two directions of Lemma C.1) ----------
    def partition_from_edge_subset(self, chosen: tuple[int, ...] | list[int]) -> Partition:
        """SpES solution (p chosen edges) → balanced partition of equal
        cost: colour A' and the chosen edge blocks red, the rest blue,
        then pad with red edge blocks only as the proof never needs."""
        labels = np.full(self.n_prime, BLUE, dtype=np.int64)
        for v in self.a_prime_nodes:
            labels[v] = RED
        for j in chosen:
            for v in self.edge_blocks[j]:
                labels[v] = RED
        return Partition(labels, 2)

    def edge_subset_from_partition(self, partition: Partition) -> tuple[int, ...]:
        """Balanced block-respecting partition → ≥ p red edge blocks.

        The red colour is identified as the majority colour of A'.
        """
        labels = partition.labels
        a_prime_colours = labels[list(self.a_prime_nodes)]
        red = int(np.bincount(a_prime_colours, minlength=2).argmax())
        chosen = []
        for j, blk in enumerate(self.edge_blocks):
            colours = labels[list(blk)]
            if int(np.bincount(colours, minlength=2).argmax()) == red:
                chosen.append(j)
        return tuple(chosen)

    # -- exact optimum over block-respecting partitions ----------------
    def units(self) -> tuple[list[tuple[int, ...]], np.ndarray]:
        """The contraction units: A, A', each B_e, each {b_v}."""
        units: list[tuple[int, ...]] = [self.a_nodes, self.a_prime_nodes]
        units.extend(self.edge_blocks)
        units.extend((v,) for v in self.bv_nodes)
        mapping = np.empty(self.n_prime, dtype=np.int64)
        for i, unit in enumerate(units):
            for v in unit:
                mapping[v] = i
        return units, mapping

    def block_respecting_optimum(self, max_units: int = 22) -> tuple[float, Partition]:
        """Exact optimum over partitions colouring every block
        monochromatically (= the true optimum, by Lemma A.5 dominance).

        Enumerates 2-colourings of the contraction units with balance
        pruning; exponential in the number of units, guarded.
        """
        units, mapping = self.units()
        if len(units) > max_units:
            raise ProblemTooLargeError(
                f"{len(units)} units exceed guard {max_units}")
        contracted = self.hypergraph.contract(mapping, num_groups=len(units))
        sizes = np.array([len(u) for u in units], dtype=np.int64)
        cap = balance_threshold(self.n_prime, 2, self.eps)
        nu = len(units)
        best_cost = np.inf
        best_labels: np.ndarray | None = None
        unit_labels = np.zeros(nu, dtype=np.int64)
        totals = np.zeros(2, dtype=np.int64)
        suffix = np.concatenate([np.cumsum(sizes[::-1])[::-1], [0]])

        def rec(i: int) -> None:
            nonlocal best_cost, best_labels
            if totals.max(initial=0) > cap:
                return
            if i == nu:
                c = cost(contracted, unit_labels, Metric.CUT_NET, k=2)
                if c < best_cost:
                    best_cost = c
                    best_labels = unit_labels.copy()
                return
            # prune: remaining nodes must fit
            if totals.sum() + suffix[i] > 2 * cap:
                return
            for colour in (RED, BLUE):
                unit_labels[i] = colour
                totals[colour] += sizes[i]
                rec(i + 1)
                totals[colour] -= sizes[i]

        rec(0)
        if best_labels is None:
            raise ProblemTooLargeError("no balanced block-respecting partition")
        labels = np.empty(self.n_prime, dtype=np.int64)
        for i, unit in enumerate(units):
            for v in unit:
                labels[v] = best_labels[i]
        return float(best_cost), Partition(labels, 2)


def build_spes_reduction(instance: SpESInstance, eps: float = 0.0,
                         m: int | None = None,
                         max_nodes: int = 20_000) -> SpESReduction:
    """Construct the Lemma C.1 instance for ``k = 2``.

    Sizes follow the proof: ``s = |E|·m + n``; ``n'`` is the smallest
    value with ``s < (1−ε)·n'/2``; ``|A'| = ⌊(1−ε)·n'/2⌋ − p·m``;
    ``|A| = n' − s − |A'|``.
    """
    red = build_mpu_reduction(
        MpUInstance(instance.num_nodes, instance.edges, instance.p),
        eps=eps, m=m, max_nodes=max_nodes)
    red.instance = instance  # keep the SpES view for callers
    return red


def build_mpu_reduction(instance: MpUInstance, eps: float = 0.0,
                        m: int | None = None,
                        max_nodes: int = 20_000) -> SpESReduction:
    """The Minimum p-Union generalisation of Lemma C.1 (Appendix C.5).

    Identical construction, except each set block ``B_e`` now has up to
    ``n`` incident main hyperedges (one per set member) — the extension
    the paper uses to inherit the stronger MpU-based inapproximability
    bounds (Corollary 4.2).
    """
    if not 0 <= eps < 1:
        raise ValueError("reduction stated for k = 2 requires 0 <= eps < 1")
    n = instance.num_nodes
    E = instance.sets
    p = instance.p
    if m is None:
        m = n + 1
    if m < n + 1:
        raise ValueError("block size m must be >= n + 1")
    s = len(E) * m + n
    # smallest n' with s < (1-eps) * n' / 2 and room for |A| >= 2
    n_prime = int(math.floor(2 * s / (1 - eps))) + 1

    def sizes_ok(np_: int) -> bool:
        a_prime = math.floor((1 - eps) * np_ / 2) - p * m
        a = np_ - s - a_prime
        cap = balance_threshold(np_, 2, eps)
        red = a_prime + p * m
        blue = np_ - red
        return a_prime >= 2 and a >= 2 and red <= cap and blue <= cap

    while not sizes_ok(n_prime):
        n_prime += 1
    if n_prime > max_nodes:
        raise ProblemTooLargeError(f"n' = {n_prime} exceeds guard {max_nodes}")
    size_a_prime = int(math.floor((1 - eps) * n_prime / 2)) - p * m
    size_a = n_prime - s - size_a_prime

    # Node layout.
    a_nodes = tuple(range(size_a))
    a_prime_nodes = tuple(range(size_a, size_a + size_a_prime))
    offset = size_a + size_a_prime
    edge_blocks = []
    for _ in E:
        edge_blocks.append(tuple(range(offset, offset + m)))
        offset += m
    bv_nodes = tuple(range(offset, offset + n))
    assert offset + n == n_prime

    edges: list[tuple[int, ...]] = []

    def add_block_edges(nodes: tuple[int, ...]) -> None:
        for i in range(len(nodes)):
            edges.append(tuple(x for j, x in enumerate(nodes) if j != i))

    add_block_edges(a_nodes)
    add_block_edges(a_prime_nodes)
    for blk in edge_blocks:
        add_block_edges(blk)
    # m parallel hyperedges {A-node, b_v} tying every b_v to A's colour.
    for v in range(n):
        for t in range(m):
            edges.append((a_nodes[t % len(a_nodes)], bv_nodes[v]))
    # Main hyperedges (Figure 3).
    main_ids = []
    incident = [[] for _ in range(n)]
    for j, members in enumerate(E):
        for v in members:
            incident[v].append(j)
    for v in range(n):
        pins = [bv_nodes[v]]
        for idx, j in enumerate(incident[v]):
            pins.append(edge_blocks[j][idx % m])
        main_ids.append(len(edges))
        edges.append(tuple(pins))

    hg = Hypergraph(n_prime, edges, name=f"spes-reduction-n{n}-p{p}")
    return SpESReduction(instance, eps, m, hg, a_nodes, a_prime_nodes,
                         tuple(edge_blocks), bv_nodes, tuple(main_ids))
