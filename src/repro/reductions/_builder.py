"""Shared construction kit for multi-constraint reductions (App. D.3).

The negative-result constructions of Section 6 / Appendix D all need
*fixed-colour* nodes: nodes guaranteed red or blue in any cost-0
solution.  Following Appendix D.3 we realise them with two anchor
blocks, each spanned by a single hyperedge (monochromatic at cost 0) and
combined in one balance constraint that forbids them sharing a colour.
Fixed nodes for the Lemma D.2 paddings are drawn *into the anchor
hyperedges* (so cost 0 forces their colour) while staying outside the
anchor-pair constraint subset — keeping all constraint subsets disjoint
as Definition 6.1 requires.

Everything is symmetric under a global colour swap, so "red" below
means "the colour of the first anchor block"; decision answers are
swap-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.balance import MultiConstraint
from ..core.hypergraph import Hypergraph
from ..generators.gadgets import BoundMode, constraint_padding

__all__ = ["MultiConstraintBuilder", "BuiltInstance"]


@dataclass
class BuiltInstance:
    """A finished multi-constraint partitioning instance (k = 2).

    ``bounds`` records the *raw* semantic constraints — ``(subset, h,
    mode)`` before padding — which the layer-wise transform of
    Theorem 5.2 re-encodes as DAG layers.  ``core_edges``/``core_nodes``
    are the gadget hyperedges/nodes excluding the anchor machinery.
    """

    hypergraph: Hypergraph = field(repr=False)
    constraints: MultiConstraint
    eps: float
    red_anchor: tuple[int, ...]
    blue_anchor: tuple[int, ...]
    bounds: tuple[tuple[tuple[int, ...], int, str], ...] = ()
    num_core_edges: int = 0

    def core_nodes(self) -> list[int]:
        anchored = set(self.red_anchor) | set(self.blue_anchor)
        return [v for v in range(self.hypergraph.n) if v not in anchored]


class MultiConstraintBuilder:
    """Incrementally assembles nodes, hyperedges and constraints."""

    def __init__(self, eps: float, anchor_core: int = 3) -> None:
        if not 0 < eps < 1:
            raise ValueError("builder requires 0 < eps < 1 (k = 2)")
        self.eps = eps
        self._n = 0
        self._edges: list[tuple[int, ...]] = []
        self._subsets: list[list[int]] = []
        self._red_members: list[int] = []
        self._blue_members: list[int] = []
        self._core = anchor_core
        self._bounds: list[tuple[tuple[int, ...], int, str]] = []

    # -- node/edge primitives ------------------------------------------
    def alloc(self, count: int = 1) -> list[int]:
        out = list(range(self._n, self._n + count))
        self._n += count
        return out

    def add_edge(self, pins: list[int] | tuple[int, ...]) -> int:
        self._edges.append(tuple(pins))
        return len(self._edges) - 1

    def fixed_red(self, count: int) -> list[int]:
        """Fresh nodes forced red (joined into the red anchor hyperedge)."""
        nodes = self.alloc(count)
        self._red_members.extend(nodes)
        return nodes

    def fixed_blue(self, count: int) -> list[int]:
        nodes = self.alloc(count)
        self._blue_members.extend(nodes)
        return nodes

    # -- constraints -----------------------------------------------------
    def _bounded_constraint(self, subset: list[int], h: int,
                            mode: BoundMode) -> None:
        pad = constraint_padding(len(subset), h, k=2, eps=self.eps, mode=mode)
        reds = self.fixed_red(pad.fixed_counts[0])
        blues = self.fixed_blue(pad.fixed_counts[1])
        self._subsets.append(list(subset) + reds + blues)
        self._bounds.append((tuple(subset), h, mode.value))

    def at_most_red(self, subset: list[int], h: int) -> None:
        """Balance constraint satisfied iff ≤ h of ``subset`` are red
        (Lemma D.2)."""
        self._bounded_constraint(subset, h, BoundMode.AT_MOST)

    def at_least_red(self, subset: list[int], h: int) -> None:
        """Balance constraint satisfied iff ≥ h of ``subset`` are red."""
        self._bounded_constraint(subset, h, BoundMode.AT_LEAST)

    # -- finalisation ------------------------------------------------------
    def build(self, name: str = "") -> BuiltInstance:
        """Materialise the anchor blocks and return the instance."""
        num_core_edges = len(self._edges)
        red_core = self.alloc(self._core)
        blue_core = self.alloc(self._core)
        red_all = tuple(red_core + self._red_members)
        blue_all = tuple(blue_core + self._blue_members)
        # One hyperedge spanning each anchor group: cost 0 forces each
        # group monochromatic.
        self.add_edge(red_all)
        self.add_edge(blue_all)
        # Anchor-pair constraint on the cores only (disjoint from all
        # padding subsets): both colours must appear among the cores.
        pair = list(red_core) + list(blue_core)
        self._subsets.append(pair)
        hg = Hypergraph(self._n, self._edges, name=name)
        mc = MultiConstraint(self._subsets)
        # sanity: the pair constraint really forbids a monochromatic pair
        from ..core.balance import balance_threshold
        cap = balance_threshold(len(pair), 2, self.eps)
        assert cap < len(pair), "anchor-pair constraint is vacuous"
        assert self._core <= cap, "anchor cores cannot be separated"
        return BuiltInstance(hg, mc, self.eps, red_all, blue_all,
                             tuple(self._bounds), num_core_edges)
