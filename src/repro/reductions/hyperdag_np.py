"""NP-hardness of partitioning restricted to hyperDAGs (Lemma B.3).

Each node ``v`` of a general hypergraph instance becomes a "hyperDAG
block" — the densest possible hyperDAG on ``m`` nodes, whose degree
sequence is ``(1, 2, ..., m−1, m−1)`` (Appendix B.1).  Each original
hyperedge keeps only the *last* node of every incident block and gains
one fresh *light node*, which serves as the hyperedge's generator.  The
result is always a valid hyperDAG, and with the adjusted balance
parameter ε′ the optimum is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.balance import balance_threshold
from ..core.cost import Metric, cost
from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..errors import ProblemTooLargeError

__all__ = ["HyperDAGNPReduction", "build_hyperdag_np_reduction"]


@dataclass
class HyperDAGNPReduction:
    """Bookkeeping for the Lemma B.3 construction."""

    original: Hypergraph = field(repr=False)
    k: int
    eps: float
    m: int
    eps_prime: float
    hypergraph: Hypergraph = field(repr=False)
    blocks: tuple[tuple[int, ...], ...]   # per original node: its m ids
    light_nodes: tuple[int, ...]          # per original hyperedge

    def partition_from_original(self, partition: Partition) -> Partition:
        """Original solution → hyperDAG solution of the same cost:
        blocks follow their node's colour; light nodes join (any) part
        intersecting their hyperedge."""
        labels = np.empty(self.hypergraph.n, dtype=np.int64)
        for v, blk in enumerate(self.blocks):
            for x in blk:
                labels[x] = partition.labels[v]
        for j, light in enumerate(self.light_nodes):
            pins = self.original.edges[j]
            labels[light] = partition.labels[pins[0]] if pins else 0
        return Partition(labels, self.k)

    def partition_to_original(self, partition: Partition) -> Partition:
        """HyperDAG solution → original solution: each node takes the
        majority colour of the tail of its block (the proof's "last m₀
        nodes" argument)."""
        labels = np.empty(self.original.n, dtype=np.int64)
        for v, blk in enumerate(self.blocks):
            tail = partition.labels[list(blk[len(blk) // 2:])]
            labels[v] = int(np.bincount(tail, minlength=self.k).argmax())
        return Partition(labels, self.k)


def build_hyperdag_np_reduction(
    graph: Hypergraph,
    k: int = 2,
    eps: float = 0.25,
    m: int | None = None,
    max_nodes: int = 50_000,
) -> HyperDAGNPReduction:
    """Construct the Lemma B.3 hyperDAG instance.

    Sizes follow the proof: blocks of ``m`` nodes with
    ``m > (k−1)·|E| / (ε·|V|)`` (so light nodes fit anywhere) and a new
    balance parameter ε′ with
    ``(1+ε′)·n'/k = m·⌊(1+ε)·|V|/k⌋ + |E|``.
    """
    if eps <= 0:
        raise ValueError("Lemma B.3 as implemented requires eps > 0 "
                         "(the eps = 0 case goes through Lemma A.1)")
    V, E = graph.n, graph.num_edges
    if V == 0:
        raise ValueError("empty instance")
    if m is None:
        m = max(int((k - 1) * E / (eps * V)) + 1, V + 2, 4)
    n_prime = m * V + E
    if n_prime > max_nodes:
        raise ProblemTooLargeError(f"n' = {n_prime} exceeds guard {max_nodes}")
    cap_orig = balance_threshold(V, k, eps)
    eps_prime = (m * cap_orig + E) * k / n_prime - 1
    if eps_prime <= 0:
        raise ProblemTooLargeError("could not achieve eps' > 0; increase m")

    edges: list[tuple[int, ...]] = []
    blocks: list[tuple[int, ...]] = []
    for v in range(V):
        base = v * m
        blk = tuple(range(base, base + m))
        blocks.append(blk)
        # densest hyperDAG on the block: hyperedge i = {blk[i], ..., blk[m-1]}
        for i in range(m - 1):
            edges.append(blk[i:])
    light = tuple(range(m * V, m * V + E))
    for j, e in enumerate(graph.edges):
        pins = [blocks[v][-1] for v in e] + [light[j]]
        edges.append(tuple(pins))
    hg = Hypergraph(n_prime, edges, name="hyperdag-np-reduction")
    return HyperDAGNPReduction(graph, k, eps, m, eps_prime, hg,
                               tuple(blocks), light)
