"""ε-balanced partitioning ⇄ k-section (Lemma A.1).

Adding ``ε·n`` isolated nodes turns an ε-balanced instance into an
equivalent k-section (``ε = 0``) instance: a k-section of cost L exists
in the padded hypergraph iff an ε-balanced partitioning of cost L exists
in the original.  This is the easy direction showing bisection is the
*hardest* case; the paper's main theorem closes the other direction.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.balance import balance_threshold
from ..core.hypergraph import Hypergraph
from ..core.partition import Partition

__all__ = ["pad_for_ksection", "lift_ksection_solution", "pad_count"]


def pad_count(n: int, k: int, eps: float) -> int:
    """Number of isolated nodes to add.

    The proof uses ``ε·n`` so that ``n'/k = (1+ε)·n/k``; we round up to
    the next multiple matching an integral ``n'/k`` when possible, else
    take ``⌈ε·n⌉``.
    """
    target = int(math.ceil((1 + eps) * n))
    # prefer an n' divisible by k so the k-section is tight
    while target % k != 0:
        target += 1
    return target - n


def pad_for_ksection(graph: Hypergraph, k: int, eps: float) -> Hypergraph:
    """The padded hypergraph of Lemma A.1 (isolated nodes appended)."""
    return graph.add_nodes(pad_count(graph.n, k, eps))


def lift_ksection_solution(graph: Hypergraph, padded_partition: Partition) -> Partition:
    """Restrict a k-section of the padded hypergraph back to the
    original nodes; by Lemma A.1 the restriction is ε-balanced with the
    same cost (isolated nodes touch no hyperedge)."""
    return padded_partition.restrict(range(graph.n))
