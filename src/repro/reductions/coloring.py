"""3-colouring → multi-constraint partitioning (Lemma 6.3).

With ``c ≥ n^δ`` balance constraints, deciding whether a cost-0
partitioning exists is NP-hard: for every graph node ``v`` and colour
``i ∈ [3]`` the construction has a gadget hyperedge (all ``w_{v,e,i}``
for incident edges ``e`` plus two ``ŵ`` selector nodes); constraints
force exactly one of the three gadgets of ``v`` red, and forbid the same
colour index on both endpoints of an edge.  A cost-0 feasible
partitioning exists iff the graph is 3-colourable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from ..core.hypergraph import Hypergraph
from ..core.partition import BLUE, RED, Partition
from ._builder import BuiltInstance, MultiConstraintBuilder

__all__ = ["ColoringReduction", "build_coloring_reduction",
           "is_three_colorable", "three_coloring_brute_force"]


def three_coloring_brute_force(num_nodes: int,
                               edges: tuple[tuple[int, int], ...]
                               ) -> tuple[int, ...] | None:
    """Exhaustive proper 3-colouring (reference oracle; tiny graphs)."""
    for colours in product(range(3), repeat=num_nodes):
        if all(colours[u] != colours[v] for u, v in edges):
            return colours
    return None


def is_three_colorable(num_nodes: int,
                       edges: tuple[tuple[int, int], ...]) -> bool:
    return three_coloring_brute_force(num_nodes, edges) is not None


@dataclass
class ColoringReduction:
    """The derived instance plus the gadget index."""

    num_nodes: int
    graph_edges: tuple[tuple[int, int], ...]
    built: BuiltInstance = field(repr=False)
    # gadget_nodes[v][i]: all nodes of the (v, colour-i) gadget
    gadget_nodes: tuple[tuple[tuple[int, ...], ...], ...]

    @property
    def hypergraph(self) -> Hypergraph:
        return self.built.hypergraph

    def partition_from_coloring(self, colours: tuple[int, ...]) -> Partition:
        """Proper 3-colouring → feasible cost-0 partition."""
        labels = np.full(self.hypergraph.n, BLUE, dtype=np.int64)
        for v in self.built.red_anchor:
            labels[v] = RED
        for v, colour in enumerate(colours):
            for x in self.gadget_nodes[v][colour]:
                labels[x] = RED
        return Partition(labels, 2)

    def coloring_from_partition(self, partition: Partition) -> tuple[int, ...]:
        """Cost-0 feasible partition → proper 3-colouring: the colour of
        ``v`` is the index of its red gadget (red = the anchor's side)."""
        red = int(partition.labels[self.built.red_anchor[0]])
        colours = []
        for v in range(self.num_nodes):
            chosen = [i for i in range(3)
                      if partition.labels[self.gadget_nodes[v][i][0]] == red]
            assert len(chosen) == 1, "not a cost-0 feasible partition"
            colours.append(chosen[0])
        return tuple(colours)


def build_coloring_reduction(num_nodes: int,
                             edges: tuple[tuple[int, int], ...],
                             eps: float = 0.3) -> ColoringReduction:
    """Build the Lemma 6.3 construction for a 3-colouring instance."""
    edges = tuple((min(u, v), max(u, v)) for u, v in edges)
    b = MultiConstraintBuilder(eps)
    incident: list[list[int]] = [[] for _ in range(num_nodes)]
    for j, (u, v) in enumerate(edges):
        incident[u].append(j)
        incident[v].append(j)

    # w[v][e_idx][i] node ids; selector nodes ŵ.
    w: dict[tuple[int, int, int], int] = {}
    sel1: dict[tuple[int, int], int] = {}
    sel2: dict[tuple[int, int], int] = {}
    gadget_nodes: list[list[tuple[int, ...]]] = []
    for v in range(num_nodes):
        per_colour: list[tuple[int, ...]] = []
        for i in range(3):
            pins: list[int] = []
            for j in incident[v]:
                node = b.alloc(1)[0]
                w[(v, j, i)] = node
                pins.append(node)
            s1 = b.alloc(1)[0]
            s2 = b.alloc(1)[0]
            sel1[(v, i)] = s1
            sel2[(v, i)] = s2
            pins.extend((s1, s2))
            b.add_edge(pins)
            per_colour.append(tuple(pins))
        gadget_nodes.append(per_colour)

    for v in range(num_nodes):
        b.at_most_red([sel1[(v, i)] for i in range(3)], h=1)
        b.at_least_red([sel2[(v, i)] for i in range(3)], h=1)
    for j, (u, v) in enumerate(edges):
        for i in range(3):
            b.at_most_red([w[(u, j, i)], w[(v, j, i)]], h=1)

    built = b.build(name=f"coloring-reduction-n{num_nodes}")
    return ColoringReduction(num_nodes, edges, built,
                             tuple(tuple(g) for g in gadget_nodes))
