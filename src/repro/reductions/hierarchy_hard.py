"""Hierarchical-partitioning lower-bound constructions (Section 7, App. G/H).

* :func:`build_recursive_gap_instance` — Figure 8 / Lemma 7.2: nine
  blocks arranged so optimal recursive bipartitioning pays Θ(n) while a
  direct 4-way partitioning pays O(1).
* :func:`build_two_step_gap_instance` — Figure 9 / Theorem 7.4: a star
  of blocks where the *standard* optimum scatters the B_i across the
  hierarchy, paying ≈ ``(b₁−1)/b₁·g₁`` times the hierarchical optimum.
* :func:`build_3dm_assignment_instance` — Lemma H.2: hierarchy
  assignment with ``b₂ = 3`` is NP-hard via 3-dimensional matching.

Blocks here are *heavy paths*: ``size`` nodes chained by 2-pin
hyperedges of weight ``W ≈ size``.  Like the paper's Lemma A.5 blocks,
any partition splitting one costs at least ``W``; unlike them, the pin
count stays linear in ``n``, which keeps the Θ(n)-sweep benchmarks
cheap.  (``dense=True`` switches to the paper's literal blocks for
cross-checking at small sizes.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations, product

import numpy as np

from ..core.balance import balance_threshold
from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..core.tolerance import gt
from ..errors import ProblemTooLargeError
from ..hierarchy.topology import HierarchyTopology

__all__ = [
    "BlockStructure",
    "build_recursive_gap_instance",
    "build_recursive_gap_instance_general",
    "build_two_step_gap_instance",
    "block_respecting_bisection",
    "block_respecting_kway_optimum",
    "block_respecting_hierarchical_optimum",
    "ThreeDMInstance",
    "three_dm_brute_force",
    "build_3dm_assignment_instance",
    "assignment_gain",
]


# ---------------------------------------------------------------------------
# Block-structured hypergraphs
# ---------------------------------------------------------------------------

@dataclass
class BlockStructure:
    """A hypergraph composed of unsplittable blocks plus light edges."""

    hypergraph: Hypergraph = field(repr=False)
    blocks: tuple[tuple[int, ...], ...]
    block_split_cost: float  # lower bound on the cost of splitting any block
    topology: HierarchyTopology | None = None
    meta: dict = field(default_factory=dict)

    def unit_mapping(self) -> np.ndarray:
        mapping = np.empty(self.hypergraph.n, dtype=np.int64)
        for i, blk in enumerate(self.blocks):
            for v in blk:
                mapping[v] = i
        return mapping

    def expand_unit_labels(self, unit_labels: np.ndarray, k: int) -> Partition:
        labels = np.empty(self.hypergraph.n, dtype=np.int64)
        for i, blk in enumerate(self.blocks):
            for v in blk:
                labels[v] = unit_labels[i]
        return Partition(labels, k)


class _Builder:
    """Assembles block-structured hypergraphs in three styles:

    * ``"heavy"`` — blocks are weight-W paths (cheap, linear pins);
    * ``"dense"`` — the paper's literal Lemma A.5 blocks;
    * ``"hyperdag"`` — Appendix I.1 two-level blocks (a small first
      group of generators wired to a large second group), with link
      hyperedges anchored at *distinct second-group nodes* so the whole
      construction admits an injective generator assignment and is a
      valid hyperDAG.
    """

    def __init__(self, style: str = "heavy") -> None:
        if style not in ("heavy", "dense", "hyperdag"):
            raise ValueError(f"unknown block style {style!r}")
        self.style = style
        self.n = 0
        self.edges: list[tuple[int, ...]] = []
        self.weights: list[float] = []
        self.blocks: list[tuple[int, ...]] = []
        self._link_pool: list[list[int]] = []  # free link endpoints

    def add_block(self, size: int, heavy_weight: float) -> tuple[int, ...]:
        nodes = tuple(range(self.n, self.n + size))
        self.n += size
        if self.style == "dense":
            for i in range(size):
                self.edges.append(
                    tuple(x for j, x in enumerate(nodes) if j != i))
                self.weights.append(1.0)
            pool = list(nodes)
        elif self.style == "hyperdag":
            # first group ~ size/6 generators, second group the rest
            # (the 1:5 ratio of Appendix I.1's Figure 8 adaptation)
            b0 = max(2, size // 6)
            first, second = nodes[:b0], nodes[b0:]
            for f in first:
                self.edges.append((f, *second))
                self.weights.append(1.0)
            pool = list(second)
        else:
            for i in range(size - 1):
                self.edges.append((nodes[i], nodes[i + 1]))
                self.weights.append(heavy_weight)
            pool = list(nodes)
        self.blocks.append(nodes)
        self._link_pool.append(pool)
        return nodes

    def _endpoint(self, block: tuple[int, ...]) -> int:
        idx = self.blocks.index(block)
        pool = self._link_pool[idx]
        if self.style == "hyperdag":
            # each link consumes a fresh second-group node, which then
            # serves as the link hyperedge's generator (Appendix I.1)
            if len(pool) < 2:
                raise ProblemTooLargeError("block too small for its links")
            return pool.pop()
        return pool[0]

    def link(self, a: tuple[int, ...], b: tuple[int, ...],
             weight: float = 1.0) -> None:
        """A light 2-pin hyperedge between two blocks."""
        self.edges.append((self._endpoint(a), self._endpoint(b)))
        self.weights.append(weight)

    def build(self, name: str) -> Hypergraph:
        return Hypergraph(self.n, self.edges, edge_weights=self.weights,
                          name=name)


# ---------------------------------------------------------------------------
# Figure 8 / Lemma 7.2
# ---------------------------------------------------------------------------

def build_recursive_gap_instance(unit: int, g1: float = 4.0,
                                 dense: bool = False,
                                 hyperdag: bool = False) -> BlockStructure:
    """The nine-block construction of Figure 8 (``b₁ = b₂ = 2``).

    ``unit`` = n/12: the large blocks have ``2·unit`` nodes (n/6), the
    small ones ``unit`` (n/12).  The left side is a chain of 3 large
    blocks, the right side a chain of 6 small blocks; the sides are
    disconnected so the optimal first bisection splits them at cost 0 —
    after which one large block *must* be cut (cost ≥ Θ(n)), whereas the
    direct 4-way optimum only cuts O(1) light chain edges.
    """
    if unit < 2:
        raise ValueError("unit must be >= 2")
    if unit < 12 and hyperdag:
        raise ValueError("hyperdag style needs unit >= 12 (first groups)")
    W = float(2 * unit)  # splitting any block costs at least ~ its size
    style = "hyperdag" if hyperdag else ("dense" if dense else "heavy")
    b = _Builder(style)
    large = [b.add_block(2 * unit, W) for _ in range(3)]
    small = [b.add_block(unit, W) for _ in range(6)]
    for i in range(2):
        b.link(large[i], large[i + 1])
    for i in range(5):
        b.link(small[i], small[i + 1])
    hg = b.build(f"fig8-recursive-gap-u{unit}")
    topo = HierarchyTopology((2, 2), (g1, 1.0))
    meta = {"unit": unit, "large": [0, 1, 2], "small": [3, 4, 5, 6, 7, 8]}
    if style == "dense":
        split_cost = 2 * unit - 1
    elif style == "hyperdag":
        split_cost = max(2, unit // 6)  # cutting a second group cuts all
        #                                 b0 gadget hyperedges (App. I.1)
    else:
        split_cost = W
    return BlockStructure(hg, tuple(b.blocks), float(split_cost), topo, meta)


def block_respecting_bisection(structure: BlockStructure,
                               node_ids: list[int],
                               caps: tuple[float, float]) -> np.ndarray:
    """Optimal bisection of a node subset among partitions that keep
    every (restricted) block monochromatic.

    Used to realise "each recursive step is optimal separately" from
    Lemma 7.2: by the block-splitting bound, the block-respecting
    optimum is the true optimum whenever it costs less than
    ``block_split_cost``.  Returns 0/1 labels over ``node_ids``.
    """
    from ..partitioners.recursive import restrict_to_nodes

    sub = restrict_to_nodes(structure.hypergraph, node_ids)
    id_set = set(node_ids)
    pos = {v: i for i, v in enumerate(node_ids)}
    units: list[list[int]] = []
    for blk in structure.blocks:
        inside = [pos[v] for v in blk if v in id_set]
        if inside:
            units.append(inside)
    mapping = np.empty(sub.n, dtype=np.int64)
    for i, unit_nodes in enumerate(units):
        for v in unit_nodes:
            mapping[v] = i
    contracted = sub.contract(mapping, num_groups=len(units))
    sizes = np.array([len(u) for u in units], dtype=np.float64)
    if len(units) > 24:
        raise ProblemTooLargeError("too many units for exact enumeration")
    best_cost, best = np.inf, None
    for bits in range(1 << len(units)):
        lab = np.array([(bits >> i) & 1 for i in range(len(units))],
                       dtype=np.int64)
        w0 = float(sizes[lab == 0].sum())
        w1 = float(sizes[lab == 1].sum())
        if gt(w0, caps[0]) or gt(w1, caps[1]):
            continue
        from ..core.cost import connectivity_cost
        c = connectivity_cost(contracted, lab, 2)
        if c < best_cost:
            best_cost, best = c, lab
    if best is None:
        raise ProblemTooLargeError("no feasible block-respecting bisection")
    out = np.empty(sub.n, dtype=np.int64)
    for i, unit_nodes in enumerate(units):
        for v in unit_nodes:
            out[v] = best[i]
    return out


def block_respecting_kway_optimum(structure: BlockStructure, k: int,
                                  eps: float = 0.0,
                                  relaxed: bool = False,
                                  state_limit: int = 20_000_000,
                                  ) -> tuple[float, Partition]:
    """Exact standard (connectivity) optimum over block-monochromatic
    partitions, by enumerating unit colourings with part-symmetry and
    balance pruning (guarded by an explored-state counter)."""
    from ..core.cost import connectivity_cost

    from ..core.cost import Metric
    from ..errors import InfeasibleError
    from ..partitioners.exact import exact_partition

    hg = structure.hypergraph
    units = structure.blocks
    nu = len(units)
    mapping = structure.unit_mapping()
    contracted = hg.contract(mapping, num_groups=nu)
    # Unit weights encode the original node counts, so the exact solver's
    # weighted-balance mode reproduces the ε-cap on original nodes —
    # with full branch-and-bound cost pruning.
    try:
        res = exact_partition(contracted, k, eps=eps,
                              metric=Metric.CONNECTIVITY,
                              relaxed=relaxed, use_node_weights=True,
                              max_nodes=nu, node_limit=state_limit)
    except InfeasibleError:
        raise ProblemTooLargeError(
            "no balanced block-respecting partition") from None
    return float(res.cost), structure.expand_unit_labels(
        res.partition.labels, k)


def block_respecting_hierarchical_optimum(structure: BlockStructure,
                                          eps: float = 0.0,
                                          relaxed: bool = False,
                                          ) -> tuple[float, Partition]:
    """Exact hierarchical optimum over block-monochromatic partitions
    (leaves are *not* symmetric, so all ``k^units`` colourings are
    scanned with balance pruning)."""
    from ..hierarchy.cost import hierarchical_cost

    topo = structure.topology
    assert topo is not None
    k = topo.k
    hg = structure.hypergraph
    units = structure.blocks
    nu = len(units)
    if k ** nu > 50_000_000:
        raise ProblemTooLargeError("unit enumeration too large")
    mapping = structure.unit_mapping()
    contracted = hg.contract(mapping, num_groups=nu)
    sizes = np.array([len(u) for u in units], dtype=np.int64)
    cap = balance_threshold(hg.n, k, eps, relaxed=relaxed)
    best_cost, best = np.inf, None
    lab = np.zeros(nu, dtype=np.int64)
    totals = np.zeros(k, dtype=np.int64)

    def rec(i: int) -> None:
        nonlocal best_cost, best
        if i == nu:
            c = hierarchical_cost(contracted, lab, topo)
            if c < best_cost:
                best_cost, best = c, lab.copy()
            return
        for p in range(k):
            if totals[p] + sizes[i] > cap:
                continue
            lab[i] = p
            totals[p] += sizes[i]
            rec(i + 1)
            totals[p] -= sizes[i]

    rec(0)
    if best is None:
        raise ProblemTooLargeError("no balanced block-respecting partition")
    return float(best_cost), structure.expand_unit_labels(best, k)


def build_recursive_gap_instance_general(
    b: tuple[int, ...],
    unit: int,
    g1: float = 4.0,
    dense: bool = False,
) -> BlockStructure:
    """Appendix G.1: the Figure 8 phenomenon for arbitrary branching
    factors ``b = (b₁, ..., b_d)``.

    With ``b' = b₂···b_d``: one chain of ``b'+1`` large blocks (each
    ``b'·unit`` nodes) plus ``b₁−1`` chains of ``b'(b'+1)`` small blocks
    (each ``unit`` nodes).  The first recursive split separates the
    chains at cost 0, but the large-block chain must later split into
    ``b'`` parts — forcing a block cut of cost Θ(n) — while a direct
    k-way partitioning pairs large with small blocks at cost O(1).
    """
    if len(b) < 2 or any(x < 2 for x in b):
        raise ValueError("need depth >= 2 branching factors, all >= 2")
    if unit < 2:
        raise ValueError("unit must be >= 2")
    b1 = b[0]
    b_prime = 1
    for x in b[1:]:
        b_prime *= x
    large_size = b_prime * unit
    W = float(large_size)
    builder = _Builder("dense" if dense else "heavy")
    large = [builder.add_block(large_size, W) for _ in range(b_prime + 1)]
    for i in range(b_prime):
        builder.link(large[i], large[i + 1])
    small_chains = []
    for _ in range(b1 - 1):
        chain = [builder.add_block(unit, W)
                 for _ in range(b_prime * (b_prime + 1))]
        for i in range(len(chain) - 1):
            builder.link(chain[i], chain[i + 1])
        small_chains.append(chain)
    hg = builder.build(f"fig8-general-b{'x'.join(map(str, b))}-u{unit}")
    costs = tuple(g1 / (2 ** i) for i in range(len(b) - 1)) + (1.0,)
    # enforce monotone decreasing ending at 1
    costs = tuple(max(c, 1.0) for c in costs)
    topo = HierarchyTopology(b, costs)
    assert topo.k == b1 * b_prime
    # total nodes: (b'+1)·b'·unit + (b1−1)·b'(b'+1)·unit = b1·b'(b'+1)·unit
    assert hg.n == b1 * b_prime * (b_prime + 1) * unit
    meta = {"unit": unit, "b": b, "b_prime": b_prime,
            "num_large": b_prime + 1}
    return BlockStructure(hg, tuple(builder.blocks), W, topo, meta)


# ---------------------------------------------------------------------------
# Figure 9 / Theorem 7.4
# ---------------------------------------------------------------------------

def build_two_step_gap_instance(unit: int, k: int = 4, g1: float = 4.0,
                                m: int | None = None, b1: int = 2,
                                dense: bool = False,
                                hyperdag: bool = False) -> BlockStructure:
    """The star construction of Figure 9 (ε = 0, general ``k``).

    ``T = (k−1)·unit`` nodes per part, ``n = k·T``.  Blocks: A (T),
    B₁..B₍k−1₎ (unit each), C₁..C₍k−2₎ ((k−2)·unit each), D (unit),
    E₁..E₍k−3₎ (unit each).  ``m`` parallel light edges A↔Bᵢ (realised
    as one weight-m edge), single edges Bᵢ↔Cᵢ and B₍k−1₎↔D.
    """
    if k < 3:
        raise ValueError("construction needs k >= 3")
    if unit < 2:
        raise ValueError("unit must be >= 2")
    if m is None:
        m = int(math.ceil(g1 * k)) + 1
    T = (k - 1) * unit
    W = float(g1 * (m + 1) * (k - 1) + 1)  # splitting dominates everything
    style = "hyperdag" if hyperdag else ("dense" if dense else "heavy")
    if hyperdag and unit < 12:
        raise ValueError("hyperdag style needs unit >= 12 (first groups)")
    b = _Builder(style)
    A = b.add_block(T, W)
    B = [b.add_block(unit, W) for _ in range(k - 1)]
    C = [b.add_block((k - 2) * unit, W) for _ in range(k - 2)]
    D = b.add_block(unit, W)
    E = [b.add_block(unit, W) for _ in range(k - 3)]
    for i in range(k - 1):
        b.link(A, B[i], weight=float(m))
    for i in range(k - 2):
        b.link(B[i], C[i])
    b.link(B[k - 2], D)
    hg = b.build(f"fig9-two-step-gap-k{k}-u{unit}")
    if k % b1 != 0 or k // b1 < 2:
        raise ValueError("need b1 | k with k/b1 >= 2 (two-level tree)")
    topo = HierarchyTopology((b1, k // b1), (g1, 1.0))
    meta = {"unit": unit, "m": m, "T": T,
            "A": 0, "B": list(range(1, k)),
            "C": list(range(k, 2 * k - 2)), "D": 2 * k - 2,
            "E": list(range(2 * k - 1, 2 * k - 1 + (k - 3)))}
    return BlockStructure(hg, tuple(b.blocks), W, topo, meta)


# ---------------------------------------------------------------------------
# Lemma H.2: 3-dimensional matching → hierarchy assignment with b2 = 3
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ThreeDMInstance:
    """Tripartite 3DM: triples over X × Y × Z with |X| = |Y| = |Z| = q."""

    q: int
    triples: tuple[tuple[int, int, int], ...]  # (x, y, z), each in [0, q)

    def __post_init__(self) -> None:
        for x, y, z in self.triples:
            if not (0 <= x < self.q and 0 <= y < self.q and 0 <= z < self.q):
                raise ValueError("triple coordinates out of range")

    def node_ids(self, x: int, y: int, z: int) -> tuple[int, int, int]:
        """Global node ids: X = [0, q), Y = [q, 2q), Z = [2q, 3q)."""
        return x, self.q + y, 2 * self.q + z


def three_dm_brute_force(instance: ThreeDMInstance) -> tuple[int, ...] | None:
    """Indices of a perfect matching (q disjoint triples), or ``None``."""
    q = instance.q

    def rec(used_x: int, used_y: int, used_z: int,
            start: int, chosen: list[int]) -> tuple[int, ...] | None:
        if len(chosen) == q:
            return tuple(chosen)
        for j in range(start, len(instance.triples)):
            x, y, z = instance.triples[j]
            if (used_x >> x) & 1 or (used_y >> y) & 1 or (used_z >> z) & 1:
                continue
            out = rec(used_x | (1 << x), used_y | (1 << y),
                      used_z | (1 << z), j + 1, chosen + [j])
            if out is not None:
                return out
        return None

    return rec(0, 0, 0, 0, [])


def build_3dm_assignment_instance(
    instance: ThreeDMInstance,
    g1: float = 3.0,
    w0: float | None = None,
) -> tuple[Hypergraph, HierarchyTopology, float]:
    """Lemma H.2 construction: a contracted multi-hypergraph on ``3q``
    parts with topology ``(q, 3)``; returns ``(hypergraph, topology,
    gain_threshold)`` such that a perfect 3DM exists iff some hierarchy
    assignment achieves total *gain* ≥ ``gain_threshold``.

    The gain of an assignment is ``Σ_e w_e·(|e| − λ_e^{(1)})`` — the
    hierarchical-cost saving versus fully scattering, so maximising gain
    minimises hierarchical cost.
    """
    q = instance.q
    k = 3 * q
    if w0 is None:
        w0 = 10.0 * k * k
    edges: list[tuple[int, ...]] = []
    weights: list[float] = []
    # (i) each original triple -> three size-2 edges
    orig = set()
    for (x, y, z) in instance.triples:
        a, b_, c = instance.node_ids(x, y, z)
        orig.add(tuple(sorted((a, b_, c))))
        for u, v in combinations((a, b_, c), 2):
            edges.append((u, v))
            weights.append(1.0)
    # (ii) a size-3 edge for every node triple that is NOT an original triple
    for trip in combinations(range(k), 3):
        if trip not in orig:
            edges.append(trip)
            weights.append(1.0)
    # (iii) weight-w0 edge for every tripartite triple (forces tripartite
    # groupings)
    for x in range(q):
        for y in range(q):
            for z in range(q):
                edges.append(tuple(sorted(instance.node_ids(x, y, z))))
                weights.append(w0)
    hg = Hypergraph(k, edges, edge_weights=weights,
                    name=f"3dm-assignment-q{q}")
    topo = HierarchyTopology((q, 3), (g1, 1.0))
    # Gain of a perfect matching (paper's accounting): each chosen triplet
    # gains 3(k-3)+3 from (i)+(ii) and (k-1)·w0 from (iii).
    gain_threshold = q * (3 * (k - 3) + 3) + q * (k - 1) * w0
    return hg, topo, float(gain_threshold)


def assignment_gain(contracted: Hypergraph, topology: HierarchyTopology,
                    part_to_leaf: np.ndarray) -> float:
    """Σ w_e (|e| − λ_e^{(1)}) for an assignment (cf. Lemma H.1/H.2)."""
    from ..hierarchy.cost import hierarchical_lambdas

    lam = hierarchical_lambdas(contracted, part_to_leaf, topology)
    sizes = np.array([len(e) for e in contracted.edges], dtype=np.float64)
    return float((contracted.edge_weights * (sizes - lam[1])).sum())
