"""3-PARTITION and clique based scheduling hardness (Thm 5.5, Thm E.1).

Theorem 5.5: computing μ_p (the makespan of a *fixed* partition) is
NP-hard for ``k = 2`` even on chain graphs / out-trees / level-order
DAGs — exactly the classes where μ itself is polynomial.  The
construction encodes a 3-PARTITION instance as coloured chains: a main
path of ``2tb`` nodes in alternating colour blocks of size ``b``, plus a
small path of ``2a_i`` nodes (``a_i`` red then ``a_i`` blue) per number.
A schedule of makespan ``n/2`` exists iff the numbers can be grouped
into sets summing exactly ``b`` (triplets, under the standard
``b/4 < a_i < b/2`` promise).

The bounded-height case reduces from CLIQUE: one blue node per graph
vertex, one red node per edge, incidence arcs, plus a serial "clock"
component whose colour sequence forces the processor to execute ``L``
vertices, then ``C(L,2)`` edges, then the rest — possible iff a clique
of size ``L`` exists.

Theorem E.1: even *choosing the best layering* of a DAG is NP-hard,
via group gadgets whose first/second-level node counts must fill odd/
even layers exactly — forcing a grouping of the numbers into sets of
sum ``b``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from ..core.dag import DAG
from ..errors import ProblemTooLargeError

__all__ = [
    "find_grouping",
    "find_triplet_partition",
    "is_strict_three_partition_instance",
    "MupInstance",
    "mup_chain_instance",
    "mup_outtree_instance",
    "mup_level_order_instance",
    "find_clique",
    "mup_bounded_height_instance",
    "LayeringInstance",
    "layering_instance",
    "layering_zero_cost_exists",
]


# ---------------------------------------------------------------------------
# Number-partitioning oracles
# ---------------------------------------------------------------------------

def find_grouping(numbers: list[int] | tuple[int, ...], b: int,
                  ) -> list[list[int]] | None:
    """Partition *all* numbers into groups each summing exactly ``b``
    (indices returned).  Backtracking; ``None`` if impossible."""
    total = sum(numbers)
    if b <= 0 or total % b != 0:
        return None
    t = total // b
    order = sorted(range(len(numbers)), key=lambda i: -numbers[i])
    groups: list[list[int]] = [[] for _ in range(t)]
    sums = [0] * t

    def rec(pos: int) -> bool:
        if pos == len(order):
            return all(s == b for s in sums)
        i = order[pos]
        tried: set[int] = set()
        for gi in range(t):
            if sums[gi] in tried:  # symmetric group states
                continue
            tried.add(sums[gi])
            if sums[gi] + numbers[i] <= b:
                sums[gi] += numbers[i]
                groups[gi].append(i)
                if rec(pos + 1):
                    return True
                groups[gi].pop()
                sums[gi] -= numbers[i]
        return False

    return [g for g in groups] if rec(0) else None


def is_strict_three_partition_instance(numbers: list[int] | tuple[int, ...],
                                       b: int) -> bool:
    """The classic promise ``b/4 < a_i < b/2`` forcing all groups to be
    triplets."""
    return all(4 * a > b and 2 * a < b for a in numbers)


def find_triplet_partition(numbers: list[int] | tuple[int, ...], b: int,
                           ) -> list[tuple[int, int, int]] | None:
    """Strict 3-PARTITION: groups must be triplets of sum b."""
    grouping = find_grouping(numbers, b)
    if grouping is None:
        return None
    if any(len(g) != 3 for g in grouping):
        # generic grouping found non-triplets; retry restricted search
        n = len(numbers)
        if n % 3 != 0:
            return None
        def rec(remaining: frozenset[int]) -> list[tuple[int, int, int]] | None:
            if not remaining:
                return []
            first = min(remaining)
            rest = sorted(remaining - {first})
            for i, j in combinations(rest, 2):
                if numbers[first] + numbers[i] + numbers[j] == b:
                    sub = rec(remaining - {first, i, j})
                    if sub is not None:
                        return [(first, i, j)] + sub
            return None
        return rec(frozenset(range(n)))
    return [tuple(g) for g in grouping]  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Theorem 5.5: μ_p hardness constructions
# ---------------------------------------------------------------------------

@dataclass
class MupInstance:
    """A DAG + fixed 2-way partition + target makespan.

    ``μ_p == target`` iff the encoded combinatorial problem has a
    solution (by the respective Theorem 5.5 argument); ``target`` equals
    the flawless ``n/2`` parallelisation (plus 1 for the out-tree
    variant's extra source).
    """

    dag: DAG
    labels: np.ndarray
    target: int
    kind: str
    numbers: tuple[int, ...] = ()
    b: int = 0


def _alternating_colours(t: int, b: int) -> list[int]:
    """b blue, b red, b blue, ... for 2t blocks (blue = 1, red = 0)."""
    colours: list[int] = []
    for block_idx in range(2 * t):
        colours.extend([1 if block_idx % 2 == 0 else 0] * b)
    return colours


def mup_chain_instance(numbers: list[int] | tuple[int, ...], b: int) -> MupInstance:
    """The chain-graph construction of Theorem 5.5.

    Main path: ``2tb`` nodes in alternating blue/red blocks of ``b``;
    per number ``a_i`` a path of ``a_i`` red then ``a_i`` blue nodes.
    ``n = 4tb``; makespan ``n/2 = 2tb`` is achievable iff the numbers
    admit a grouping into sets of sum ``b``.
    """
    total = sum(numbers)
    if b <= 0 or total % b != 0:
        raise ValueError("sum of numbers must be a positive multiple of b")
    t = total // b
    edges: list[tuple[int, int]] = []
    colours: list[int] = []
    main_cols = _alternating_colours(t, b)
    main = list(range(len(main_cols)))
    edges.extend((v, v + 1) for v in main[:-1])
    colours.extend(main_cols)
    nxt = len(colours)
    for a in numbers:
        path = list(range(nxt, nxt + 2 * a))
        edges.extend((v, v + 1) for v in path[:-1])
        colours.extend([0] * a + [1] * a)
        nxt += 2 * a
    dag = DAG(nxt, edges)
    labels = np.array(colours, dtype=np.int64)
    assert dag.n == 4 * t * b
    return MupInstance(dag, labels, target=2 * t * b, kind="chain",
                       numbers=tuple(numbers), b=b)


def mup_outtree_instance(numbers: list[int] | tuple[int, ...], b: int) -> MupInstance:
    """Out-tree variant: a common source above every chain head
    (the paper's adaptation; target grows by 1)."""
    base = mup_chain_instance(numbers, b)
    n = base.dag.n
    root = n
    edges = list(base.dag.edges)
    for v in base.dag.sources():
        edges.append((root, v))
    dag = DAG(n + 1, edges)
    labels = np.concatenate([base.labels, [1]])
    return MupInstance(dag, labels, base.target + 1, "out-tree",
                       base.numbers, b)


def mup_level_order_instance(numbers: list[int] | tuple[int, ...], b: int) -> MupInstance:
    """Level-order variant: chains *are* level-order DAGs (each layer is
    a single node), so the construction is reused verbatim — the paper
    makes exactly this observation."""
    inst = mup_chain_instance(numbers, b)
    return MupInstance(inst.dag, inst.labels, inst.target, "level-order",
                       inst.numbers, b)


# ---------------------------------------------------------------------------
# Bounded-height case: reduction from CLIQUE
# ---------------------------------------------------------------------------

def find_clique(num_nodes: int, edges: tuple[tuple[int, int], ...],
                size: int) -> tuple[int, ...] | None:
    """Brute-force clique of the given size (reference oracle)."""
    eset = {(min(u, v), max(u, v)) for u, v in edges}
    for cand in combinations(range(num_nodes), size):
        if all((a, b) in eset for a, b in combinations(cand, 2)):
            return cand
    return None


def mup_bounded_height_instance(num_nodes: int,
                                edges: tuple[tuple[int, int], ...],
                                clique_size: int) -> MupInstance:
    """Bounded-height construction of Theorem 5.5 (reduction from CLIQUE).

    Graph part: blue node per vertex, red node per edge, arcs vertex →
    incident edge (height 2).  Clock component ``C``: four level-order
    layers coloured [L red], [C(L,2) blue], [|V|−L red],
    [|E|−C(L,2) blue] — at most one ``C`` node runs per step, so a
    makespan of ``|V|+|E|`` forces the other processor through L
    vertices, then the clique's edges, etc.; achievable iff a clique of
    size ``L`` exists.
    """
    L = clique_size
    E = tuple((min(u, v), max(u, v)) for u, v in edges)
    mE = len(E)
    need_edges = math.comb(L, 2)
    if L > num_nodes or need_edges > mE:
        raise ValueError("clique size too large for the graph")
    dag_edges: list[tuple[int, int]] = []
    colours: list[int] = []
    # vertices: blue (1); edge nodes: red (0)
    vert = list(range(num_nodes))
    colours.extend([1] * num_nodes)
    edge_nodes = list(range(num_nodes, num_nodes + mE))
    colours.extend([0] * mE)
    for j, (u, v) in enumerate(E):
        dag_edges.append((u, edge_nodes[j]))
        dag_edges.append((v, edge_nodes[j]))
    # clock component: level-order layers
    layers = [(L, 0), (need_edges, 1), (num_nodes - L, 0),
              (mE - need_edges, 1)]
    prev: list[int] = []
    nxt = num_nodes + mE
    for size, colour in layers:
        cur = list(range(nxt, nxt + size))
        nxt += size
        colours.extend([colour] * size)
        for p in prev:
            for c in cur:
                dag_edges.append((p, c))
        if cur:
            prev = cur
    dag = DAG(nxt, dag_edges)
    return MupInstance(dag, np.array(colours, dtype=np.int64),
                       target=num_nodes + mE, kind="bounded-height")


# ---------------------------------------------------------------------------
# Theorem E.1: hardness of choosing the best layering
# ---------------------------------------------------------------------------

@dataclass
class LayeringInstance:
    """The Theorem E.1 DAG: a red path with flexible group gadgets and a
    blue path with per-layer blocks, under ε = 0 layer-wise balance."""

    dag: DAG = field(repr=False)
    numbers: tuple[int, ...]
    b: int
    m: int
    t: int
    red_path: tuple[int, ...]
    blue_nodes_by_layer: tuple[tuple[int, ...], ...]
    first_groups: tuple[tuple[int, ...], ...]
    second_groups: tuple[tuple[int, ...], ...]

    @property
    def num_layers(self) -> int:
        return len(self.red_path)


def layering_instance(numbers: list[int] | tuple[int, ...], b: int,
                      m: int | None = None,
                      max_nodes: int = 100_000) -> LayeringInstance:
    """Build the Theorem E.1 construction (ε = 0, k = 2).

    Layers ``1..2t`` carry the encoding; the blue component has exactly
    ``b`` nodes in odd and ``m·b`` in even layers (plus its path node),
    the red path one node per layer.  The ``ε = 0`` layer-wise balance
    forces the flexible first/second-level group nodes to contribute
    exactly ``b`` red nodes to every odd and ``m·b`` to every even
    layer.  A final 2-node layer pins the two components to different
    colours.
    """
    total = sum(numbers)
    if b <= 0 or total % b != 0:
        raise ValueError("sum must be a positive multiple of b")
    t = total // b
    if m is None:
        m = t * b + 1
    if m <= t * b:
        raise ValueError("need m > t*b for the forcing argument")
    layers = 2 * t + 1  # encoding layers + final separator layer
    edges: list[tuple[int, int]] = []
    nxt = 0

    def alloc(c: int) -> list[int]:
        nonlocal nxt
        out = list(range(nxt, nxt + c))
        nxt += c
        return out

    red_path = alloc(layers)
    edges.extend((red_path[i], red_path[i + 1]) for i in range(layers - 1))
    # blue component: a path whose node in layer i is replaced by a block
    blue_layers: list[list[int]] = []
    prev_block: list[int] = []
    for layer in range(layers):
        if layer == layers - 1:
            size = 1
        elif layer % 2 == 0:        # odd layers of the paper (1-based)
            size = b + 1
        else:
            size = m * b + 1
        block = alloc(size)
        blue_layers.append(block)
        for p in prev_block:
            for c in block:
                edges.append((p, c))
        prev_block = block
    # group gadgets
    first_groups: list[list[int]] = []
    second_groups: list[list[int]] = []
    anchor = red_path[2 * t]  # layer index 2t (the final layer's red node)
    for a in numbers:
        first = alloc(a)
        second = alloc(a * m)
        for f in first:
            for s in second:
                edges.append((f, s))
        for s in second:
            edges.append((s, anchor))
        first_groups.append(first)
        second_groups.append(second)
    if nxt > max_nodes:
        raise ProblemTooLargeError(f"{nxt} nodes exceed guard {max_nodes}")
    dag = DAG(nxt, edges)
    assert dag.longest_path_length() == layers
    return LayeringInstance(dag, tuple(numbers), b, m, t, tuple(red_path),
                            tuple(tuple(blk) for blk in blue_layers),
                            tuple(tuple(g) for g in first_groups),
                            tuple(tuple(g) for g in second_groups))


def layering_zero_cost_exists(instance: LayeringInstance,
                              grouped_only: bool = False,
                              state_limit: int = 500_000) -> bool:
    """Does some valid layering admit an ε = 0 layer-wise-balanced
    partitioning of cost 0?

    Cost 0 forces both components monochromatic (and different colours
    via the final layer), so the question reduces to placing the
    flexible red group nodes: every odd layer needs exactly ``b`` and
    every even layer exactly ``m·b`` extra red nodes.  With
    ``grouped_only=True`` only placements keeping each gadget's
    first/second level in single layers are tried (the witness shape);
    otherwise a memoised exact search over fractional placements runs
    (the full Theorem E.1 statement).
    """
    nums = instance.numbers
    b, m, t = instance.b, instance.m, instance.t
    if grouped_only:
        return find_grouping(list(nums), b) is not None
    # Exact search: process layers 1..2t in order.  State: per number,
    # (first-level remaining, second-level remaining, first_done_before).
    # Second-level nodes of i are placeable only once first level of i
    # was fully placed in strictly earlier layers.
    n_i = len(nums)
    seen: set[tuple] = set()

    def rec(layer: int, f_rem: tuple[int, ...], s_rem: tuple[int, ...],
            f_done_at: tuple[int, ...]) -> bool:
        # f_done_at[i]: layer index after which first level i completed
        # (large if not yet); second level placeable at `layer` iff
        # f_done_at[i] < layer.
        if layer == 2 * t:
            # every flexible node must have found a layer
            return all(r == 0 for r in s_rem) and all(r == 0 for r in f_rem)
        key = (layer, f_rem, s_rem, f_done_at)
        if key in seen:
            return False
        if len(seen) > state_limit:
            raise ProblemTooLargeError("layering search exceeded state limit")
        seen.add(key)
        budget = b if layer % 2 == 0 else m * b
        # enumerate how many first-level and second-level nodes of each
        # number to place in this layer
        choices: list[tuple[tuple[int, ...], tuple[int, ...]]] = []

        def enum(i: int, left: int, f_acc: list[int], s_acc: list[int]):
            if i == n_i:
                if left == 0:
                    choices.append((tuple(f_acc), tuple(s_acc)))
                return
            max_f = min(f_rem[i], left)
            for df in range(max_f + 1):
                max_s = min(s_rem[i], left - df) if f_done_at[i] < layer else 0
                for ds in range(max_s + 1):
                    f_acc.append(df)
                    s_acc.append(ds)
                    enum(i + 1, left - df - ds, f_acc, s_acc)
                    f_acc.pop()
                    s_acc.pop()

        enum(0, budget, [], [])
        for df, ds in choices:
            nf = tuple(f_rem[i] - df[i] for i in range(n_i))
            ns = tuple(s_rem[i] - ds[i] for i in range(n_i))
            nfd = tuple(layer if (nf[i] == 0 and f_rem[i] > 0 and df[i] > 0
                                  and f_done_at[i] >= 2 * t)
                        else f_done_at[i] for i in range(n_i))
            # a number whose first level completed earlier keeps its mark
            if rec(layer + 1, nf, ns, nfd):
                return True
        return False

    big = 10 ** 9
    f0 = tuple(nums)
    s0 = tuple(a * m for a in nums)
    fd0 = tuple(big if a > 0 else -1 for a in nums)
    return rec(0, f0, s0, fd0)
