"""Layer-wise balanced hyperDAG partitioning hardness (Theorem 5.2).

Theorem 5.2 converts a multi-constraint instance (here: the 3-colouring
construction of Lemma 6.3) into a computational DAG whose *layer-wise*
balance constraints (Definition 5.1) encode the original ones:

* each connected component of the gadget hypergraph becomes a directed
  path spanning all layers — cost 0 forces every path monochromatic;
* the same number of *filler* paths lets any real-component colouring be
  completed to exactly ``ρ`` red paths;
* two *control* paths supply fixed colours; per-layer blocks on them
  realise the Lemma D.2 paddings (its "predetermined occurrences"
  variant, since every layer also carries the ``2ρ`` path nodes);
* a separation layer with heavy control blocks forces the two control
  paths onto different colours;
* two counting layers pin the number of red paths to exactly ``ρ``;
* one layer per original bound attaches, for every constrained node
  ``v``, an extra node to ``v``'s component path — so the layer's red
  count measures the bound's subset.

Every node lies on a maximum-length path, so the layering is unique,
and the hardness applies to both the fixed- and the flexible-layering
problem (as the paper argues).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.balance import balance_threshold
from ..core.dag import DAG
from ..errors import ProblemTooLargeError
from ..generators.gadgets import BoundMode, constraint_padding
from ._builder import BuiltInstance

__all__ = ["LayerwiseInstance", "build_layerwise_reduction",
           "layerwise_zero_cost_feasible"]


@dataclass
class LayerwiseInstance:
    """The Theorem 5.2 DAG plus the bookkeeping to check feasibility."""

    dag: DAG = field(repr=False)
    eps: float
    num_real: int                       # real component paths
    num_filler: int
    rho: int                            # required number of red paths
    layer_of: np.ndarray = field(repr=False)     # unique layering
    # per layer: (node count, red control/block nodes, blue control/block
    # nodes, extras grouped by real component)
    layer_sizes: tuple[int, ...] = ()
    layer_red_fixed: tuple[int, ...] = ()
    layer_blue_fixed: tuple[int, ...] = ()
    layer_extras: tuple[tuple[tuple[int, int], ...], ...] = ()
    component_of_core: dict[int, int] = field(default_factory=dict)

    @property
    def num_layers(self) -> int:
        return len(self.layer_sizes)

    def caps(self) -> list[int]:
        return [balance_threshold(sz, 2, self.eps)
                for sz in self.layer_sizes]


def build_layerwise_reduction(built: BuiltInstance,
                              max_nodes: int = 500_000) -> LayerwiseInstance:
    """Transform a builder-made multi-constraint instance into the
    Theorem 5.2 layer-wise DAG (``k = 2``)."""
    eps = built.eps
    hg = built.hypergraph
    core = built.core_nodes()
    core_set = set(core)
    # connected components of the gadget part
    parent = {v: v for v in core}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for e in hg.edges[: built.num_core_edges]:
        pins = [v for v in e if v in core_set]
        for v in pins[1:]:
            ra, rb = find(pins[0]), find(v)
            if ra != rb:
                parent[rb] = ra
    comp_ids: dict[int, int] = {}
    component_of_core: dict[int, int] = {}
    for v in core:
        r = find(v)
        if r not in comp_ids:
            comp_ids[r] = len(comp_ids)
        component_of_core[v] = comp_ids[r]
    C = len(comp_ids)
    P = 2 * C            # real + filler paths
    rho = C

    # ---- plan layers ---------------------------------------------------
    # Layer plan entries: ("sep",), ("count_max",), ("count_min",),
    # ("bound", subset, h, mode), ("plain",)
    plan: list[tuple] = [("plain",), ("sep",), ("count_max",), ("count_min",)]
    for subset, h, mode in built.bounds:
        plan.append(("bound", subset, h, mode))
    plan.append(("plain",))
    L = len(plan)

    # ---- per-layer fixed-colour block sizes ----------------------------
    red_fixed: list[int] = []
    blue_fixed: list[int] = []
    extras_plan: list[list[tuple[int, int]]] = []   # (component, count)
    for entry in plan:
        kind = entry[0]
        if kind == "plain":
            red_fixed.append(1)
            blue_fixed.append(1)
            extras_plan.append([])
        elif kind == "sep":
            # both controls same colour must overflow even if all paths
            # take the other colour
            x = 1
            while True:
                total = 2 * x + P
                cap = balance_threshold(total, 2, eps)
                if 2 * x > cap and x + P <= cap:
                    break
                x += 1
                if x > 10 * (P + 4) / max(1e-9, 1 - eps):
                    raise ProblemTooLargeError("no separation block size")
            red_fixed.append(x)
            blue_fixed.append(x)
            extras_plan.append([])
        elif kind in ("count_max", "count_min"):
            mode = (BoundMode.AT_MOST if kind == "count_max"
                    else BoundMode.AT_LEAST)
            pad = constraint_padding(P, rho, 2, eps, mode,
                                     min_counts=(1, 1))
            red_fixed.append(pad.fixed_counts[0])
            blue_fixed.append(pad.fixed_counts[1])
            extras_plan.append([])
        else:  # bound layer
            _, subset, h, mode_str = entry
            mode = BoundMode(mode_str)
            pad = constraint_padding(len(subset), h, 2, eps, mode,
                                     min_counts=(rho + 1, rho + 1))
            red_fixed.append(pad.fixed_counts[0] - rho)
            blue_fixed.append(pad.fixed_counts[1] - rho)
            per_comp: dict[int, int] = {}
            for v in subset:
                ci = component_of_core[v]
                per_comp[ci] = per_comp.get(ci, 0) + 1
            extras_plan.append(sorted(per_comp.items()))

    # ---- materialise the DAG ------------------------------------------
    edges: list[tuple[int, int]] = []
    layer_of: list[int] = []
    nxt = 0

    def alloc(layer: int, count: int) -> list[int]:
        nonlocal nxt
        out = list(range(nxt, nxt + count))
        nxt += count
        layer_of.extend([layer] * count)
        return out

    def make_path_with_blocks(sizes_per_layer: list[int]) -> list[list[int]]:
        groups: list[list[int]] = []
        prev: list[int] = []
        for layer, size in enumerate(sizes_per_layer):
            cur = alloc(layer, size)
            for p in prev:
                for c in cur:
                    edges.append((p, c))
            groups.append(cur)
            prev = cur
        return groups

    # real + filler paths: single node per layer
    path_groups: list[list[list[int]]] = []
    for _ in range(P):
        path_groups.append(make_path_with_blocks([1] * L))
    # control paths with per-layer blocks
    red_ctrl = make_path_with_blocks(red_fixed)
    blue_ctrl = make_path_with_blocks(blue_fixed)
    # extras: node hung between consecutive path nodes of its component
    layer_extras: list[list[tuple[int, int]]] = [list(x) for x in extras_plan]
    for layer, per_comp in enumerate(extras_plan):
        for ci, count in per_comp:
            path = path_groups[ci]
            for node in alloc(layer, count):
                if layer > 0:
                    edges.append((path[layer - 1][0], node))
                if layer + 1 < L:
                    edges.append((node, path[layer + 1][0]))

    if nxt > max_nodes:
        raise ProblemTooLargeError(f"{nxt} nodes exceed guard {max_nodes}")
    dag = DAG(nxt, edges)
    layer_arr = np.array(layer_of, dtype=np.int64)
    sizes = tuple(int((layer_arr == i).sum()) for i in range(L))
    inst = LayerwiseInstance(
        dag, eps, C, C, rho, layer_arr, sizes,
        tuple(red_fixed), tuple(blue_fixed),
        tuple(tuple(x) for x in layer_extras), component_of_core)
    # the layering must be the unique valid one
    assert dag.is_valid_layering(layer_arr)
    asap, alap = dag.asap_layers(), dag.alap_layers()
    assert np.array_equal(asap, alap), "layering is not unique"
    return inst


def layerwise_zero_cost_feasible(instance: LayerwiseInstance,
                                 max_components: int = 22) -> bool:
    """Does a cost-0, layer-wise ε-balanced partitioning exist?

    Cost 0 forces every weakly-connected DAG component monochromatic;
    we enumerate colourings of the real component paths (fillers are
    interchangeable — only their red count matters) and check every
    layer's balance constraint.  Control paths take their designated
    colours (global swap symmetry makes the other orientation
    redundant).
    """
    C = instance.num_real
    if C > max_components:
        raise ProblemTooLargeError(f"{C} components exceed guard")
    caps = instance.caps()
    L = instance.num_layers
    P = C + instance.num_filler
    for bits in range(1 << C):
        real_red = [bool((bits >> i) & 1) for i in range(C)]
        r = sum(real_red)
        # fillers are interchangeable: only their red count matters, and
        # we do NOT assume the counting layers work — every filler count
        # is tried, so the checker independently verifies them.
        for filler_red in range(instance.num_filler + 1):
            red_paths = r + filler_red
            ok = True
            for layer in range(L):
                red = instance.layer_red_fixed[layer] + red_paths
                blue = (instance.layer_blue_fixed[layer]
                        + (P - red_paths))
                for ci, count in instance.layer_extras[layer]:
                    if real_red[ci]:
                        red += count
                    else:
                        blue += count
                cap = caps[layer]
                if red > cap or blue > cap:
                    ok = False
                    break
            if ok:
                return True
    return False
