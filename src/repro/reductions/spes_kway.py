"""The k ≥ 3 generalisation of the main reduction (Appendix C.4).

Theorem 4.1 holds for every fixed ``k ≥ 2``.  For ``k ≥ 3`` the blue
side (block A, the ``b_v`` and ``|E|−p`` edge blocks) is sized to fill
one part's capacity exactly, and — when two colours cannot cover the
hypergraph, i.e. ``k₀ = ⌈k/(1+ε)⌉ > 2`` — the remaining node weight is
split into ``k₀−1`` equal components of size ``T₀``: the red component
(A′ plus the ``p`` chosen edge blocks) and ``k₀−2`` further filler
blocks, one per extra colour.  The optimum still equals ``OPT_SpES``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.balance import balance_threshold
from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..errors import ProblemTooLargeError
from .hierarchy_hard import BlockStructure
from .spes import SpESInstance

__all__ = ["KWaySpESReduction", "build_spes_reduction_kway"]


@dataclass
class KWaySpESReduction:
    """The derived k-way instance plus its unit structure."""

    instance: SpESInstance
    k: int
    eps: float
    m: int
    hypergraph: Hypergraph = field(repr=False)
    a_nodes: tuple[int, ...]
    a_prime_nodes: tuple[int, ...]
    filler_blocks: tuple[tuple[int, ...], ...]  # one per extra colour
    edge_blocks: tuple[tuple[int, ...], ...]
    bv_nodes: tuple[int, ...]

    @property
    def n_prime(self) -> int:
        return self.hypergraph.n

    def as_block_structure(self) -> BlockStructure:
        """Unit view for the exact block-respecting optimiser."""
        blocks: list[tuple[int, ...]] = [self.a_nodes, self.a_prime_nodes]
        blocks.extend(self.filler_blocks)
        blocks.extend(self.edge_blocks)
        blocks.extend((v,) for v in self.bv_nodes)
        return BlockStructure(self.hypergraph, tuple(blocks),
                              block_split_cost=float(self.m - 1))

    def partition_from_edge_subset(self, chosen) -> Partition:
        """SpES solution → balanced k-way partition of equal cost:
        blue = A side + unchosen blocks; red = A' + chosen blocks;
        colour 2+i = the i-th filler block."""
        labels = np.zeros(self.n_prime, dtype=np.int64)  # blue = 0
        for v in self.a_prime_nodes:
            labels[v] = 1
        chosen_set = set(int(j) for j in chosen)
        for j, blk in enumerate(self.edge_blocks):
            colour = 1 if j in chosen_set else 0
            for v in blk:
                labels[v] = colour
        for i, blk in enumerate(self.filler_blocks):
            for v in blk:
                labels[v] = 2 + i
        return Partition(labels, self.k)


def build_spes_reduction_kway(instance: SpESInstance, k: int,
                              eps: float = 0.0, m: int | None = None,
                              max_nodes: int = 100_000) -> KWaySpESReduction:
    """Construct the Appendix C.4 instance for any fixed ``k ≥ 2``."""
    if k < 2:
        raise ValueError("k must be >= 2")
    if not 0 <= eps < k - 1:
        raise ValueError("need 0 <= eps < k - 1")
    n = instance.num_nodes
    E = instance.edges
    p = instance.p
    if m is None:
        m = n + 1
    k0 = int(math.ceil(k / (1 + eps)))
    extra_colours = max(k0 - 2, 0)
    s_base = len(E) * m + n

    def layout(n_prime: int):
        cap = balance_threshold(n_prime, k, eps)
        size_a = cap - (len(E) - p) * m - n
        remaining = n_prime - cap
        groups = max(k0 - 1, 1)
        if size_a < 2 or remaining <= 0 or remaining % groups != 0:
            return None
        t0 = remaining // groups
        size_a_prime = t0 - p * m
        if size_a_prime < 2 or t0 > cap:
            return None
        return cap, size_a, size_a_prime, t0

    n_prime = s_base + 4
    while layout(n_prime) is None:
        n_prime += 1
        if n_prime > max_nodes:
            raise ProblemTooLargeError(
                f"no feasible n' found below {max_nodes}")
    cap, size_a, size_a_prime, t0 = layout(n_prime)

    nxt = 0

    def alloc(count: int) -> tuple[int, ...]:
        nonlocal nxt
        out = tuple(range(nxt, nxt + count))
        nxt += count
        return out

    edges: list[tuple[int, ...]] = []

    def add_block_edges(nodes: tuple[int, ...]) -> None:
        for i in range(len(nodes)):
            edges.append(tuple(x for j, x in enumerate(nodes) if j != i))

    a_nodes = alloc(size_a)
    a_prime_nodes = alloc(size_a_prime)
    fillers = tuple(alloc(t0) for _ in range(extra_colours))
    edge_blocks = tuple(alloc(m) for _ in E)
    bv_nodes = alloc(n)
    assert nxt == n_prime, (nxt, n_prime)

    add_block_edges(a_nodes)
    add_block_edges(a_prime_nodes)
    for blk in fillers:
        add_block_edges(blk)
    for blk in edge_blocks:
        add_block_edges(blk)
    for v in range(n):
        for t in range(m):
            edges.append((a_nodes[t % len(a_nodes)], bv_nodes[v]))
    incident: list[list[int]] = [[] for _ in range(n)]
    for j, (u, v) in enumerate(E):
        incident[u].append(j)
        incident[v].append(j)
    for v in range(n):
        pins = [bv_nodes[v]]
        for idx, j in enumerate(incident[v]):
            pins.append(edge_blocks[j][idx % m])
        edges.append(tuple(pins))

    hg = Hypergraph(n_prime, edges, name=f"spes-kway-k{k}-n{n}-p{p}")
    return KWaySpESReduction(instance, k, eps, m, hg, a_nodes,
                             a_prime_nodes, fillers, edge_blocks, bv_nodes)
