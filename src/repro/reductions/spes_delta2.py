"""The Δ = 2 / hyperDAG strengthening of Theorem 4.1 (Lemma C.6, App. C.3).

The block gadgets of Lemma C.1 have high degree; to push the hardness
down to hyperDAGs of maximal degree 2 the paper replaces every block by
a *grid gadget* (Definition C.2) and attaches the inter-gadget structure
through degree-1 *outsider* nodes:

* each edge block ``B_e`` becomes an ``ℓ×ℓ`` extended grid (``ℓ = 2n``)
  with two outsiders, one per endpoint of ``e``;
* ``A`` becomes an extended grid whose outsiders are the ``b_v`` (plus
  one extra outsider that makes the gadget a hyperDAG, Appendix C.3);
* ``A'`` becomes an extended grid with padding outsiders (used to hit
  the exact balance size, as in the paper's square-number discussion)
  plus one extra hyperDAG outsider;
* the *main hyperedge* of ``v`` joins ``b_v`` with the outsiders
  representing ``v`` in the incident edge grids.

Every node then has degree ≤ 2 and the hypergraph is a hyperDAG; grid
splitting is dominated by Lemma C.3 (cut ≥ √t for t minority nodes), so
cost-preservation of the solution mappings carries Theorem 4.1 over.
The construction also has the bipartite hyperedge property of the SpMV
hypergraphs of [30] (rows in one class, columns + main hyperedges in
the other), which the tests check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.balance import balance_threshold
from ..core.hypergraph import Hypergraph
from ..core.partition import BLUE, RED, Partition
from ..errors import ProblemTooLargeError
from .spes import SpESInstance

__all__ = ["Delta2Reduction", "build_delta2_reduction"]


@dataclass
class Delta2Reduction:
    """The Δ = 2 hyperDAG instance derived from a SpES instance."""

    instance: SpESInstance
    eps: float
    ell: int                                 # side of the edge grids (2n)
    hypergraph: Hypergraph = field(repr=False)
    a_grid: tuple[int, ...]                  # interior of A's grid
    a_prime_grid: tuple[int, ...]
    bv_nodes: tuple[int, ...]                # = A's outsiders 0..n-1
    a_extra: int                             # A's hyperDAG outsider
    a_prime_pad: tuple[int, ...]             # A''s padding outsiders
    a_prime_extra: int
    edge_grids: tuple[tuple[int, ...], ...]  # interiors of the B_e grids
    edge_outsiders: tuple[tuple[int, int], ...]  # per edge: (out_u, out_v)
    main_edge_ids: tuple[int, ...]

    @property
    def n_prime(self) -> int:
        return self.hypergraph.n

    def red_group(self) -> list[int]:
        """All nodes coloured red in the canonical solution shape:
        A' (grid + pads + extra)."""
        return list(self.a_prime_grid) + list(self.a_prime_pad) + [self.a_prime_extra]

    def partition_from_edge_subset(self, chosen: tuple[int, ...] | list[int]) -> Partition:
        """SpES solution (p chosen edges) → balanced Δ=2 partition of
        equal cut cost: A'-group and the chosen edge grids (with their
        outsiders) red; everything else blue."""
        labels = np.full(self.n_prime, BLUE, dtype=np.int64)
        for v in self.red_group():
            labels[v] = RED
        for j in chosen:
            for v in self.edge_grids[j]:
                labels[v] = RED
            for v in self.edge_outsiders[j]:
                labels[v] = RED
        return Partition(labels, 2)


def build_delta2_reduction(instance: SpESInstance, eps: float = 0.2,
                           max_nodes: int = 200_000) -> Delta2Reduction:
    """Build the Lemma C.6 construction, searching grid sides so that

    * the canonical p-red-grids solution is ε-balanced;
    * colouring only p−1 edge grids red violates the balance constraint
      (the "≥ p red grids" forcing);
    * A and A' cannot share a majority colour within balance even after
      up to ``t = (2n)²`` minority-coloured grid nodes.
    """
    if not 0 <= eps < 1:
        raise ValueError("requires 0 <= eps < 1 (k = 2)")
    n = instance.num_nodes
    E = instance.edges
    p = instance.p
    ell = 2 * n
    gsz = ell * ell + 2  # grid + its two outsiders
    t_slack = ell * ell

    def try_sizes(la: int, lap: int, pad: int):
        n_prime = (la * la + n + 1) + (lap * lap + pad + 1) + len(E) * gsz
        cap = balance_threshold(n_prime, 2, eps)
        blue = la * la + n + 1 + (len(E) - p) * gsz
        red = lap * lap + pad + 1 + p * gsz
        if blue + red != n_prime:
            return None
        if blue > cap or red > cap:
            return None
        if p >= 1 and blue + gsz <= cap:   # p-1 red grids must not fit
            return None
        if la * la + lap * lap - t_slack <= cap:  # A, A' forced apart
            return None
        return n_prime

    found = None
    for la in range(max(ell, n + 1), 40 * ell):
        for lap in range(ell, 40 * ell):
            lo_pad, hi_pad = 0, lap - 1
            for pad in range(lo_pad, hi_pad + 1):
                if try_sizes(la, lap, pad) is not None:
                    found = (la, lap, pad)
                    break
            if found:
                break
        if found:
            break
    if found is None:
        raise ProblemTooLargeError("no feasible grid sizes found")
    la, lap, pad = found
    n_prime = try_sizes(la, lap, pad)
    if n_prime is None or n_prime > max_nodes:
        raise ProblemTooLargeError(f"n' = {n_prime} exceeds guard {max_nodes}")

    # ---- node layout -------------------------------------------------
    edges: list[tuple[int, ...]] = []
    next_id = 0

    def alloc(count: int) -> list[int]:
        nonlocal next_id
        out = list(range(next_id, next_id + count))
        next_id += count
        return out

    def add_extended_grid(side: int, outsiders: list[int]) -> list[int]:
        """Grid of ``side``²  fresh nodes; outsider ``i`` joins row ``i``.
        Returns the interior node ids."""
        assert len(outsiders) <= side
        interior = alloc(side * side)

        def gn(r: int, c: int) -> int:
            return interior[r * side + c]

        for r in range(side):
            pins = [gn(r, c) for c in range(side)]
            if r < len(outsiders):
                pins.append(outsiders[r])
            edges.append(tuple(pins))
        for c in range(side):
            edges.append(tuple(gn(r, c) for r in range(side)))
        return interior

    bv_nodes = alloc(n)
    a_extra = alloc(1)[0]
    a_grid = add_extended_grid(la, bv_nodes + [a_extra])

    a_prime_pad = alloc(pad)
    a_prime_extra = alloc(1)[0]
    a_prime_grid = add_extended_grid(lap, a_prime_pad + [a_prime_extra])

    edge_grids: list[tuple[int, ...]] = []
    edge_outsiders: list[tuple[int, int]] = []
    for (u, v) in E:
        out_u, out_v = alloc(2)
        interior = add_extended_grid(ell, [out_u, out_v])
        edge_grids.append(tuple(interior))
        edge_outsiders.append((out_u, out_v))

    # Main hyperedges: {b_v} ∪ {outsider representing v in each incident grid}.
    incident: list[list[int]] = [[] for _ in range(n)]
    for j, (u, v) in enumerate(E):
        incident[u].append(edge_outsiders[j][0])
        incident[v].append(edge_outsiders[j][1])
    main_ids = []
    for v in range(n):
        main_ids.append(len(edges))
        edges.append(tuple([bv_nodes[v], *incident[v]]))

    assert next_id == n_prime, (next_id, n_prime)
    hg = Hypergraph(n_prime, edges, name=f"delta2-spes-n{n}-p{p}")
    return Delta2Reduction(instance, eps, ell, hg, tuple(a_grid),
                           tuple(a_prime_grid), tuple(bv_nodes), a_extra,
                           tuple(a_prime_pad), a_prime_extra,
                           tuple(edge_grids), tuple(edge_outsiders),
                           tuple(main_ids))
