"""Executable hardness constructions (paper Sections 4–7, Appendices).

Every reduction in the paper is implemented as a builder returning the
derived instance plus solution mappings in both directions, together
with reference oracles (brute-force solvers for SpES, OVP, 3-colouring,
3-PARTITION, CLIQUE, 3DM) so the claimed optimum correspondences can be
checked empirically on small instances.
"""

from ._builder import BuiltInstance, MultiConstraintBuilder
from .bisection import lift_ksection_solution, pad_count, pad_for_ksection
from .coloring import (
    ColoringReduction,
    build_coloring_reduction,
    is_three_colorable,
    three_coloring_brute_force,
)
from .hyperdag_np import HyperDAGNPReduction, build_hyperdag_np_reduction
from .hierarchy_hard import (
    BlockStructure,
    ThreeDMInstance,
    assignment_gain,
    block_respecting_bisection,
    block_respecting_hierarchical_optimum,
    block_respecting_kway_optimum,
    build_3dm_assignment_instance,
    build_recursive_gap_instance,
    build_recursive_gap_instance_general,
    build_two_step_gap_instance,
    three_dm_brute_force,
)
from .layerwise import (
    LayerwiseInstance,
    build_layerwise_reduction,
    layerwise_zero_cost_feasible,
)
from .multi_to_single import MultiToSingleReduction, build_multi_to_single
from .ovp import OVPInstance, OVPReduction, build_ovp_reduction, ovp_brute_force
from .spes import (
    MpUInstance,
    SpESInstance,
    SpESReduction,
    build_mpu_reduction,
    build_spes_reduction,
    min_p_union,
    mpu_optimum,
    spes_optimum,
)
from .spes_delta2 import Delta2Reduction, build_delta2_reduction
from .spes_kway import KWaySpESReduction, build_spes_reduction_kway
from .three_partition import (
    LayeringInstance,
    MupInstance,
    find_clique,
    find_grouping,
    find_triplet_partition,
    is_strict_three_partition_instance,
    layering_instance,
    layering_zero_cost_exists,
    mup_bounded_height_instance,
    mup_chain_instance,
    mup_level_order_instance,
    mup_outtree_instance,
)

__all__ = [
    "BlockStructure",
    "BuiltInstance",
    "ColoringReduction",
    "Delta2Reduction",
    "HyperDAGNPReduction",
    "KWaySpESReduction",
    "LayeringInstance",
    "LayerwiseInstance",
    "MpUInstance",
    "MultiConstraintBuilder",
    "MultiToSingleReduction",
    "MupInstance",
    "OVPInstance",
    "OVPReduction",
    "SpESInstance",
    "SpESReduction",
    "ThreeDMInstance",
    "assignment_gain",
    "block_respecting_bisection",
    "block_respecting_hierarchical_optimum",
    "block_respecting_kway_optimum",
    "build_3dm_assignment_instance",
    "build_coloring_reduction",
    "build_delta2_reduction",
    "build_hyperdag_np_reduction",
    "build_layerwise_reduction",
    "build_mpu_reduction",
    "build_multi_to_single",
    "build_ovp_reduction",
    "build_recursive_gap_instance",
    "build_recursive_gap_instance_general",
    "build_spes_reduction",
    "build_spes_reduction_kway",
    "build_two_step_gap_instance",
    "find_clique",
    "find_grouping",
    "find_triplet_partition",
    "is_strict_three_partition_instance",
    "is_three_colorable",
    "layering_instance",
    "layering_zero_cost_exists",
    "layerwise_zero_cost_feasible",
    "lift_ksection_solution",
    "min_p_union",
    "mpu_optimum",
    "mup_bounded_height_instance",
    "mup_chain_instance",
    "mup_level_order_instance",
    "mup_outtree_instance",
    "ovp_brute_force",
    "pad_count",
    "pad_for_ksection",
    "spes_optimum",
    "three_coloring_brute_force",
    "three_dm_brute_force",
]
