"""File formats (hMETIS-compatible hypergraphs and partition files)."""

from .hmetis import read_hgr, read_partition, write_hgr, write_partition

__all__ = ["read_hgr", "read_partition", "write_hgr", "write_partition"]
