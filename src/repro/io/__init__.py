"""File formats (hMETIS-compatible hypergraphs and partition files)."""

from .hmetis import (
    parse_hgr,
    read_hgr,
    read_partition,
    write_hgr,
    write_partition,
)

__all__ = ["parse_hgr", "read_hgr", "read_partition", "write_hgr",
           "write_partition"]
