"""hMETIS-compatible hypergraph file I/O.

The ``.hgr`` format used by hMETIS/KaHyPar/PaToH-adjacent tooling:

* header: ``<num_hyperedges> <num_nodes> [fmt]`` where ``fmt`` is
  ``1`` (hyperedge weights), ``10`` (node weights) or ``11`` (both);
* one line per hyperedge: ``[weight] pin pin ...`` with 1-based pins;
* with node weights, ``num_nodes`` further lines of one weight each;
* ``%``-prefixed lines are comments.

Partition files hold one 0-based part id per line.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..errors import InvalidHypergraphError, InvalidPartitionError

__all__ = ["write_hgr", "read_hgr", "parse_hgr", "write_partition",
           "read_partition"]


def _has_nondefault(arr: np.ndarray) -> bool:
    return bool(np.any(arr != 1.0))


def write_hgr(graph: Hypergraph, path: str | Path) -> None:
    """Write a hypergraph in hMETIS format (weights included only when
    not all 1)."""
    edge_w = _has_nondefault(graph.edge_weights)
    node_w = _has_nondefault(graph.node_weights)
    fmt = ""
    if edge_w and node_w:
        fmt = " 11"
    elif node_w:
        fmt = " 10"
    elif edge_w:
        fmt = " 1"
    out = io.StringIO()
    out.write(f"{graph.num_edges} {graph.n}{fmt}\n")
    for j, e in enumerate(graph.edges):
        pins = " ".join(str(v + 1) for v in e)
        if edge_w:
            w = graph.edge_weights[j]
            wtxt = str(int(w)) if float(w).is_integer() else str(float(w))
            out.write(f"{wtxt} {pins}\n")
        else:
            out.write(pins + "\n")
    if node_w:
        for w in graph.node_weights:
            wtxt = str(int(w)) if float(w).is_integer() else str(float(w))
            out.write(wtxt + "\n")
    Path(path).write_text(out.getvalue())


def parse_hgr(text: str, name: str = "") -> Hypergraph:
    """Parse hMETIS ``.hgr`` *text* (tolerant of real-world files).

    Accepted beyond the strict format: ``%`` comment lines (anywhere),
    CRLF line endings, a UTF-8 BOM, leading/trailing whitespace, tab
    separators, and blank lines (anywhere, including between content
    lines — some exporters emit them).  Every malformed construct
    raises :class:`InvalidHypergraphError` with the offending 1-based
    physical line number — never a bare ``ValueError`` traceback, which
    matters because the serving layer accepts ``.hgr`` uploads from
    untrusted clients.
    """
    if text.startswith("\ufeff"):
        text = text[1:]
    lines: list[tuple[int, str]] = []          # (physical line no, content)
    for no, raw in enumerate(text.splitlines(), start=1):
        ln = raw.strip()
        if ln and not ln.startswith("%"):
            lines.append((no, ln))
    if not lines:
        raise InvalidHypergraphError("empty hgr file")

    def _int(tok: str, what: str, no: int) -> int:
        try:
            return int(tok)
        except ValueError:
            raise InvalidHypergraphError(
                f"line {no}: {what} {tok!r} is not an integer") from None

    def _weight(tok: str, what: str, no: int) -> float:
        try:
            w = float(tok)
        except ValueError:
            raise InvalidHypergraphError(
                f"line {no}: {what} {tok!r} is not a number") from None
        if not w >= 0 or w != w or w == float("inf"):
            raise InvalidHypergraphError(
                f"line {no}: {what} must be finite and nonnegative, "
                f"got {tok!r}")
        return w

    hno, htxt = lines[0]
    header = htxt.split()
    if len(header) not in (2, 3):
        raise InvalidHypergraphError(f"line {hno}: bad header: {htxt!r}")
    m = _int(header[0], "hyperedge count", hno)
    n = _int(header[1], "node count", hno)
    if m < 0 or n < 0:
        raise InvalidHypergraphError(
            f"line {hno}: negative counts in header: {htxt!r}")
    fmt = header[2] if len(header) == 3 else "0"
    if fmt not in ("0", "00", "1", "01", "10", "11"):
        raise InvalidHypergraphError(
            f"line {hno}: unknown fmt code {fmt!r} (expected 1, 10 or 11)")
    edge_w = fmt in ("1", "01", "11")
    node_w = fmt in ("10", "11")
    expected = 1 + m + (n if node_w else 0)
    if len(lines) < expected:
        raise InvalidHypergraphError(
            f"truncated hgr file: header promises {m} hyperedge line(s)"
            + (f" and {n} node-weight line(s)" if node_w else "")
            + f", found {len(lines) - 1} content line(s)")
    if len(lines) > expected:
        no, extra = lines[expected]
        raise InvalidHypergraphError(
            f"line {no}: trailing content after the last expected line: "
            f"{extra!r}")
    edges = []
    weights = []
    for j in range(m):
        no, ln = lines[1 + j]
        parts = ln.split()
        if edge_w:
            weights.append(_weight(parts[0], "hyperedge weight", no))
            parts = parts[1:]
        pins = [_int(x, "pin", no) - 1 for x in parts]
        if any(not 0 <= v < n for v in pins):
            raise InvalidHypergraphError(f"line {no}: pin out of range "
                                         f"1..{n}")
        edges.append(tuple(pins))
    node_weights = None
    if node_w:
        node_weights = [_weight(lines[1 + m + i][1], "node weight",
                                lines[1 + m + i][0])
                        for i in range(n)]
    return Hypergraph(n, edges,
                      node_weights=node_weights,
                      edge_weights=weights if edge_w else None,
                      name=name)


def read_hgr(path: str | Path, name: str = "") -> Hypergraph:
    """Read an hMETIS ``.hgr`` file (see :func:`parse_hgr` for dialect)."""
    return parse_hgr(Path(path).read_text(),
                     name=name or Path(path).stem)


def write_partition(partition: Partition, path: str | Path) -> None:
    """Write one 0-based part id per line."""
    Path(path).write_text(
        "\n".join(str(int(p)) for p in partition.labels) + "\n")


def read_partition(path: str | Path, k: int | None = None) -> Partition:
    """Read a partition file; ``k`` defaults to ``max(label) + 1``."""
    labels = []
    for no, tok in enumerate(Path(path).read_text().split(), start=1):
        try:
            labels.append(int(tok))
        except ValueError:
            raise InvalidPartitionError(
                f"partition entry {no}: {tok!r} is not an integer") from None
    if any(v < 0 for v in labels):
        raise InvalidPartitionError("partition labels must be >= 0")
    arr = np.asarray(labels, dtype=np.int64)
    if k is None:
        k = int(arr.max()) + 1 if arr.size else 1
    return Partition(arr, k)
