"""hMETIS-compatible hypergraph file I/O.

The ``.hgr`` format used by hMETIS/KaHyPar/PaToH-adjacent tooling:

* header: ``<num_hyperedges> <num_nodes> [fmt]`` where ``fmt`` is
  ``1`` (hyperedge weights), ``10`` (node weights) or ``11`` (both);
* one line per hyperedge: ``[weight] pin pin ...`` with 1-based pins;
* with node weights, ``num_nodes`` further lines of one weight each;
* ``%``-prefixed lines are comments.

Partition files hold one 0-based part id per line.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..errors import InvalidHypergraphError

__all__ = ["write_hgr", "read_hgr", "write_partition", "read_partition"]


def _has_nondefault(arr: np.ndarray) -> bool:
    return bool(np.any(arr != 1.0))


def write_hgr(graph: Hypergraph, path: str | Path) -> None:
    """Write a hypergraph in hMETIS format (weights included only when
    not all 1)."""
    edge_w = _has_nondefault(graph.edge_weights)
    node_w = _has_nondefault(graph.node_weights)
    fmt = ""
    if edge_w and node_w:
        fmt = " 11"
    elif node_w:
        fmt = " 10"
    elif edge_w:
        fmt = " 1"
    out = io.StringIO()
    out.write(f"{graph.num_edges} {graph.n}{fmt}\n")
    for j, e in enumerate(graph.edges):
        pins = " ".join(str(v + 1) for v in e)
        if edge_w:
            w = graph.edge_weights[j]
            wtxt = str(int(w)) if float(w).is_integer() else str(float(w))
            out.write(f"{wtxt} {pins}\n")
        else:
            out.write(pins + "\n")
    if node_w:
        for w in graph.node_weights:
            wtxt = str(int(w)) if float(w).is_integer() else str(float(w))
            out.write(wtxt + "\n")
    Path(path).write_text(out.getvalue())


def read_hgr(path: str | Path, name: str = "") -> Hypergraph:
    """Read an hMETIS ``.hgr`` file."""
    lines = [ln.strip() for ln in Path(path).read_text().splitlines()]
    lines = [ln for ln in lines if ln and not ln.startswith("%")]
    if not lines:
        raise InvalidHypergraphError("empty hgr file")
    header = lines[0].split()
    if len(header) not in (2, 3):
        raise InvalidHypergraphError(f"bad header: {lines[0]!r}")
    m, n = int(header[0]), int(header[1])
    fmt = header[2] if len(header) == 3 else "0"
    edge_w = fmt in ("1", "11")
    node_w = fmt in ("10", "11")
    if len(lines) < 1 + m + (n if node_w else 0):
        raise InvalidHypergraphError("truncated hgr file")
    edges = []
    weights = []
    for j in range(m):
        parts = lines[1 + j].split()
        if edge_w:
            weights.append(float(parts[0]))
            parts = parts[1:]
        pins = [int(x) - 1 for x in parts]
        if any(not 0 <= v < n for v in pins):
            raise InvalidHypergraphError(f"pin out of range on line {j + 2}")
        edges.append(tuple(pins))
    node_weights = None
    if node_w:
        node_weights = [float(lines[1 + m + i]) for i in range(n)]
    return Hypergraph(n, edges,
                      node_weights=node_weights,
                      edge_weights=weights if edge_w else None,
                      name=name or Path(path).stem)


def write_partition(partition: Partition, path: str | Path) -> None:
    """Write one 0-based part id per line."""
    Path(path).write_text(
        "\n".join(str(int(p)) for p in partition.labels) + "\n")


def read_partition(path: str | Path, k: int | None = None) -> Partition:
    """Read a partition file; ``k`` defaults to ``max(label) + 1``."""
    labels = [int(ln) for ln in Path(path).read_text().split()]
    arr = np.asarray(labels, dtype=np.int64)
    if k is None:
        k = int(arr.max()) + 1 if arr.size else 1
    return Partition(arr, k)
