"""repro — balanced hypergraph partitioning, hyperDAGs and hierarchical
(NUMA) cost models.

A faithful, self-contained reproduction of *"Partitioning Hypergraphs is
Hard: Models, Inapproximability, and Applications"* (Papp, Anegg &
Yzelman, SPAA 2023).  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the per-figure/theorem experiment index.

Subpackages
-----------
core
    Hypergraphs, partitions, the cut-net/connectivity metrics, balance
    constraints, computational DAGs and hyperDAGs.
generators
    Random hypergraphs/DAGs, SpMV fine-grain hypergraphs, the paper's
    gadget zoo (blocks, grid gadgets, fixed-colour constraint sets).
partitioners
    Heuristics (greedy, FM, multilevel, recursive bisection) and exact
    solvers (branch-and-bound, the XP dynamic program of Lemma 4.3).
scheduling
    DAG scheduling (Definition 5.3): list scheduling, exact makespan μ,
    fixed-partition makespan μ_p, schedule-based balance constraints.
hierarchy
    The hierarchical partitioning problem (Section 7): tree topologies,
    the hierarchical cost function, hierarchy assignment, the two-step
    method and recursive partitioning.
reductions
    Executable versions of every hardness construction in the paper.
io
    hMETIS-compatible file formats.
"""

from .core import (
    BLUE,
    DAG,
    Hypergraph,
    Metric,
    MultiConstraint,
    Partition,
    RED,
    connectivity_cost,
    cost,
    cut_net_cost,
    hyperdag_from_dag,
    is_balanced,
    is_hyperdag,
)

__version__ = "1.0.0"

__all__ = [
    "BLUE",
    "DAG",
    "Hypergraph",
    "Metric",
    "MultiConstraint",
    "Partition",
    "RED",
    "__version__",
    "connectivity_cost",
    "cost",
    "cut_net_cost",
    "hyperdag_from_dag",
    "is_balanced",
    "is_hyperdag",
]
