"""File-local rules for ``repro analyze``.

Each rule guards an invariant the reproduction depends on:

========================  ====================================================
rule id                   invariant
========================  ====================================================
``seed-discipline``       library code never draws from implicit global RNG
                          state; randomness flows through an explicit
                          ``np.random.Generator`` (or seed) parameter, so
                          every experiment is replayable.
``silent-except``         no ``except Exception:``/bare ``except:`` swallows
                          an error without re-raising, logging, or a written
                          pragma justifying the suppression.
``float-cost-eq``         cost/gain/load values are never compared with raw
                          ``==``/``!=``; comparisons go through
                          :mod:`repro.core.tolerance`.
``serve-timeout``         every ``await`` in the serving layer goes through
                          the ``with_deadline`` wrapper or is an allowlisted
                          pure-I/O primitive — no handler can block forever
                          on a solver future.
========================  ====================================================

The former ``shm-lifecycle`` rule is superseded by the path-sensitive
``resource-safety`` pass (:mod:`repro.analyze.passes.resource_safety`),
which tracks shm handles — plus pools, files, and sockets — through an
acquired→released lattice over the function's CFG instead of pattern
matching for a ``finally``.

Since analyze v2 these rules are *fact consumers*: they read the
collections gathered by the single AST walk in
:class:`repro.analyze.index.Extractor` (resolved call records, except
handlers, comparisons, awaits) instead of re-walking the tree
themselves — one walk serves every rule.  Their findings are embedded
in the module summary, so the incremental engine replays them from
cache without re-parsing.

The *structural* repo-wide rules (``kernel-oracle``,
``runner-signature``, ``error-hierarchy``) and the interprocedural
passes (``determinism``, ``fork-safety``, ``rng-provenance``) live in
:mod:`repro.analyze.passes`.

Scoping: ``seed-discipline`` and ``float-cost-eq`` apply to library
code (files under ``src/``) — tests may intentionally seed globals or
compare exact integer-valued costs.  ``silent-except`` applies
everywhere.  ``serve-timeout`` applies to files under
``src/repro/serve/`` and ``src/repro/mesh/`` (the router is held to
the same no-unbounded-await bar as the shards).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from .engine import Finding, SourceFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .index import Extractor

__all__ = ["run_local_rules"]


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``np.random.shuffle``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# ---------------------------------------------------------------------------
# seed-discipline (R1)
# ---------------------------------------------------------------------------

#: Constructors for explicit, caller-seeded randomness are allowed.
_ALLOWED_NP_RANDOM = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}


def seed_discipline(sf: SourceFile, ex: "Extractor") -> Iterable[Finding]:
    if not sf.in_src:
        return
    for _qual, line, resolved, written in ex.call_records:
        head, _, attr = resolved.rpartition(".")
        if head in ("numpy.random", "np.random"):
            if attr not in _ALLOWED_NP_RANDOM:
                yield Finding(
                    path=sf.posix, line=line, rule="seed-discipline",
                    message=f"call to global-state RNG '{written}'; pass an "
                            "explicit np.random.Generator (default_rng) "
                            "instead")
        elif head == "random":
            yield Finding(
                path=sf.posix, line=line, rule="seed-discipline",
                message=f"call to stdlib global RNG '{written}'; use an "
                        "explicit np.random.Generator parameter")


# ---------------------------------------------------------------------------
# silent-except (R2)
# ---------------------------------------------------------------------------

_LOGGING_ROOTS = {"logging", "logger", "log", "warnings", "traceback"}
_LOGGING_ATTRS = {"warn", "warning", "error", "exception", "debug",
                  "info", "critical", "print_exc", "format_exc",
                  "log"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if t is None:
        return True
    names = [n for n in (t.elts if isinstance(t, ast.Tuple) else [t])]
    return any(isinstance(n, ast.Name)
               and n.id in ("Exception", "BaseException") for n in names)


def _handles(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            root, _, attr = name.partition(".")
            if root in _LOGGING_ROOTS:
                return True
            if name.rpartition(".")[2] in _LOGGING_ATTRS:
                return True
    return False


def silent_except(sf: SourceFile, ex: "Extractor") -> Iterable[Finding]:
    for handler in ex.handlers:
        if _is_broad(handler) and not _handles(handler):
            caught = (_dotted(handler.type) if handler.type is not None
                      else "all")
            yield Finding(
                path=sf.posix, line=handler.lineno, rule="silent-except",
                message=f"broad handler ({caught}) neither re-raises nor "
                        "logs; narrow the exception type or add an "
                        "allow(silent-except) pragma with a reason")


# ---------------------------------------------------------------------------
# float-cost-eq (R5)
# ---------------------------------------------------------------------------

_COSTY = ("cost", "gain", "makespan", "slack")


def _mentions_cost(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and any(c in name.lower() for c in _COSTY):
            return True
    return False


def float_cost_eq(sf: SourceFile, ex: "Extractor") -> Iterable[Finding]:
    if not sf.in_src:
        return
    for _ctx, node in ex.compares:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        if any(_mentions_cost(o) for o in operands):
            yield Finding(
                path=sf.posix, line=node.lineno, rule="float-cost-eq",
                message="raw ==/!= on a cost/gain value; use "
                        "repro.core.tolerance (close/leq/geq/lt/gt)")


# ---------------------------------------------------------------------------
# serve-timeout (R7)
# ---------------------------------------------------------------------------

#: Pure-I/O awaits and lifecycle transitions that cannot block on solver
#: work.  Everything else — solver futures, ``wait_for``, ``gather``,
#: ``to_thread`` — must flow through ``with_deadline`` so a request can
#: never outlive its budget.
_SERVE_AWAIT_OK = {
    "sleep", "drain", "wait_closed", "read", "readline", "readexactly",
    "readuntil", "serve_forever", "start_serving", "get", "put", "join",
    "acquire", "accept", "start", "stop",
    # repro.serve.http framing helpers: every await inside them is
    # already with_deadline-bounded, so awaiting them is as safe as
    # awaiting with_deadline itself
    "read_head", "read_body", "read_response", "write_response",
    # repro.serve.stream ingest: internally deadline-bounded per read
    "ingest_stream",
}


def serve_timeout(sf: SourceFile, ex: "Extractor") -> Iterable[Finding]:
    parts = sf.path.parts
    if not ("src" in parts and ("serve" in parts or "mesh" in parts)):
        return
    # Awaiting an async def *from this file* is transitively safe: its
    # own awaits are subject to this very rule.
    for line, callee, written, is_call in ex.awaits:
        if is_call:
            if (callee == "with_deadline" or callee in _SERVE_AWAIT_OK
                    or callee in ex.local_async):
                continue
            what = f"await of '{written or callee or '?'}()'"
        else:
            what = "bare await of a non-call expression"
        yield Finding(
            path=sf.posix, line=line, rule="serve-timeout",
            message=f"{what} in the serving layer; route it through "
                    "with_deadline(...) so the request budget applies, "
                    "or add an allow(serve-timeout) pragma with a reason")


_LOCAL_RULES = (seed_discipline, silent_except, float_cost_eq,
                serve_timeout)


def run_local_rules(sf: SourceFile, ex: "Extractor") -> list[Finding]:
    """All file-local findings for one module, in deterministic order."""
    out: list[Finding] = []
    for rule in _LOCAL_RULES:
        out.extend(rule(sf, ex))
    return out
