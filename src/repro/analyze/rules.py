"""Built-in rules for ``repro analyze``.

Each rule guards an invariant the reproduction depends on:

========================  ====================================================
rule id                   invariant
========================  ====================================================
``seed-discipline``       library code never draws from implicit global RNG
                          state; randomness flows through an explicit
                          ``np.random.Generator`` (or seed) parameter, so
                          every experiment is replayable.
``silent-except``         no ``except Exception:``/bare ``except:`` swallows
                          an error without re-raising, logging, or a written
                          pragma justifying the suppression.
``kernel-oracle``         every public CSR kernel has a ``_reference_*``
                          pure-Python oracle twin and is exercised by the
                          test suite (the PR-1 parity contract).
``runner-signature``      every registered ExperimentSpec runner is declared
                          ``run(*, seed, **params)`` and its ``check``
                          callable exists, so the lab executor can always
                          invoke it as ``fn(seed=..., **params)``.
``float-cost-eq``         cost/gain/load values are never compared with raw
                          ``==``/``!=``; comparisons go through
                          :mod:`repro.core.tolerance`.
``error-hierarchy``       every ``*Error`` class in :mod:`repro` derives from
                          :class:`repro.errors.ReproError`, so callers can
                          catch one base class.
``serve-timeout``         every ``await`` in the serving layer goes through
                          the ``with_deadline`` wrapper or is an allowlisted
                          pure-I/O primitive — no handler can block forever
                          on a solver future.
========================  ====================================================

Scoping: ``seed-discipline``, ``float-cost-eq`` and ``error-hierarchy``
apply to library code (files under ``src/``) — tests may intentionally
seed globals or compare exact integer-valued costs.  ``silent-except``
applies everywhere.  ``serve-timeout`` applies only to files under
``src/repro/serve/``.  The repo rules anchor on their subject file
(``core/kernels.py`` / ``lab/experiments.py``) and only run when it is
part of the analyzed set.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Sequence

from .engine import Finding, SourceFile

__all__ = ["FILE_RULES", "REPO_RULES"]


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``np.random.shuffle``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# ---------------------------------------------------------------------------
# seed-discipline (R1)
# ---------------------------------------------------------------------------

#: Constructors for explicit, caller-seeded randomness are allowed.
_ALLOWED_NP_RANDOM = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}


def rule_seed_discipline(sf: SourceFile) -> Iterable[Finding]:
    if not sf.in_src:
        return
    imported = {a.asname or a.name
                for node in ast.walk(sf.tree)
                if isinstance(node, ast.Import) for a in node.names}
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        head, _, attr = name.rpartition(".")
        if head in ("np.random", "numpy.random"):
            if attr not in _ALLOWED_NP_RANDOM:
                yield Finding(
                    path=sf.posix, line=node.lineno, rule="seed-discipline",
                    message=f"call to global-state RNG '{name}'; pass an "
                            "explicit np.random.Generator (default_rng) "
                            "instead")
        elif head == "random" and "random" in imported:
            yield Finding(
                path=sf.posix, line=node.lineno, rule="seed-discipline",
                message=f"call to stdlib global RNG '{name}'; use an "
                        "explicit np.random.Generator parameter")


# ---------------------------------------------------------------------------
# silent-except (R2)
# ---------------------------------------------------------------------------

_LOGGING_ROOTS = {"logging", "logger", "log", "warnings", "traceback"}
_LOGGING_ATTRS = {"warn", "warning", "error", "exception", "debug",
                  "info", "critical", "print_exc", "format_exc",
                  "log"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if t is None:
        return True
    names = [n for n in (t.elts if isinstance(t, ast.Tuple) else [t])]
    return any(isinstance(n, ast.Name)
               and n.id in ("Exception", "BaseException") for n in names)


def _handles(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            root, _, attr = name.partition(".")
            if root in _LOGGING_ROOTS:
                return True
            if name.rpartition(".")[2] in _LOGGING_ATTRS:
                return True
    return False


def rule_silent_except(sf: SourceFile) -> Iterable[Finding]:
    for node in ast.walk(sf.tree):
        if (isinstance(node, ast.ExceptHandler) and _is_broad(node)
                and not _handles(node)):
            caught = _dotted(node.type) if node.type is not None else "all"
            yield Finding(
                path=sf.posix, line=node.lineno, rule="silent-except",
                message=f"broad handler ({caught}) neither re-raises nor "
                        "logs; narrow the exception type or add an "
                        "allow(silent-except) pragma with a reason")


# ---------------------------------------------------------------------------
# float-cost-eq (R5)
# ---------------------------------------------------------------------------

_COSTY = ("cost", "gain", "makespan", "slack")


def _mentions_cost(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and any(c in name.lower() for c in _COSTY):
            return True
    return False


def rule_float_cost_eq(sf: SourceFile) -> Iterable[Finding]:
    if not sf.in_src:
        return
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        if any(_mentions_cost(o) for o in operands):
            yield Finding(
                path=sf.posix, line=node.lineno, rule="float-cost-eq",
                message="raw ==/!= on a cost/gain value; use "
                        "repro.core.tolerance (close/leq/geq/lt/gt)")


# ---------------------------------------------------------------------------
# serve-timeout (R7)
# ---------------------------------------------------------------------------

#: Pure-I/O awaits and lifecycle transitions that cannot block on solver
#: work.  Everything else — solver futures, ``wait_for``, ``gather``,
#: ``to_thread`` — must flow through ``with_deadline`` so a request can
#: never outlive its budget.
_SERVE_AWAIT_OK = {
    "sleep", "drain", "wait_closed", "read", "readline", "readexactly",
    "readuntil", "serve_forever", "start_serving", "get", "put", "join",
    "acquire", "accept", "start", "stop",
}


def _callee_name(func: ast.AST) -> str:
    """Terminal name of a call target (handles ``X(...).method``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def rule_serve_timeout(sf: SourceFile) -> Iterable[Finding]:
    parts = sf.path.parts
    if not ("src" in parts and "serve" in parts):
        return
    # Awaiting an async def *from this file* is transitively safe: its
    # own awaits are subject to this very rule.
    local_async = {n.name for n in ast.walk(sf.tree)
                   if isinstance(n, ast.AsyncFunctionDef)}
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Await):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            name = _callee_name(value.func)
            if (name == "with_deadline" or name in _SERVE_AWAIT_OK
                    or name in local_async):
                continue
            what = f"await of '{_dotted(value.func) or name or '?'}()'"
        else:
            what = "bare await of a non-call expression"
        yield Finding(
            path=sf.posix, line=node.lineno, rule="serve-timeout",
            message=f"{what} in the serving layer; route it through "
                    "with_deadline(...) so the request budget applies, "
                    "or add an allow(serve-timeout) pragma with a reason")


# ---------------------------------------------------------------------------
# kernel-oracle (R3, repo rule)
# ---------------------------------------------------------------------------

#: Historical oracle names that don't follow ``_reference_<kernel>``.
_ORACLE_ALIASES = {
    "normalize_edges": "_reference_normalize",
    "incidence_from_csr": "_reference_incidence",
    "contract_csr": "_reference_contract",
    "merge_parallel_csr": "_reference_merge_parallel",
    "lambda_counts": "_reference_lambdas",
    "pin_count_matrix": "_reference_pin_counts",
    "adjacency_csr": "_reference_adjacency",
    "degrees_from_pins": "_reference_degrees",
    "edge_ids_from_ptr": "_reference_edge_ids",
}


def rule_kernel_oracle(files: Sequence[SourceFile]) -> Iterable[Finding]:
    kernels = next((f for f in files
                    if f.posix.endswith("src/repro/core/kernels.py")), None)
    if kernels is None:
        return
    defs = {n.name: n for n in kernels.tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))}
    oracles = {name for name in defs if name.startswith("_reference_")}
    test_text = "\n".join(f.text for f in files if f.in_tests)
    for name, node in defs.items():
        if name.startswith("_"):
            continue
        twin = _ORACLE_ALIASES.get(name, f"_reference_{name}")
        if twin not in oracles:
            yield Finding(
                path=kernels.posix, line=node.lineno, rule="kernel-oracle",
                message=f"public kernel '{name}' has no '{twin}' oracle "
                        "twin for property-based parity testing")
        if test_text and not re.search(rf"\b{re.escape(name)}\b",
                                       test_text):
            yield Finding(
                path=kernels.posix, line=node.lineno, rule="kernel-oracle",
                message=f"public kernel '{name}' is not exercised "
                        "anywhere under tests/")


# ---------------------------------------------------------------------------
# runner-signature (R4, repo rule)
# ---------------------------------------------------------------------------

def _spec_registrations(tree: ast.Module):
    """Yield ``(module, func, check, lineno)`` from experiments.py.

    Understands the two registration idioms: the ``_bench(name,
    artifact, title, module, func, check, header, ...)`` helper and
    direct ``register(ExperimentSpec(module=..., func=..., check=...))``.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _dotted(node.func)
        if callee == "_bench" and len(node.args) >= 6:
            vals = [a.value if isinstance(a, ast.Constant) else None
                    for a in node.args[:6]]
            yield vals[3], vals[4], vals[5], node.lineno
        elif callee == "register" and node.args:
            spec = node.args[0]
            if (isinstance(spec, ast.Call)
                    and _dotted(spec.func) == "ExperimentSpec"):
                kw = {k.arg: (k.value.value
                              if isinstance(k.value, ast.Constant)
                              else None)
                      for k in spec.keywords if k.arg}
                yield (kw.get("module"), kw.get("func"), kw.get("check"),
                       node.lineno)


def _runner_module_path(root: Path, module: str) -> Path:
    if "." in module:
        return root / "src" / Path(*module.split(".")).with_suffix(".py")
    return root / "benchmarks" / f"{module}.py"


def rule_runner_signature(files: Sequence[SourceFile]) -> Iterable[Finding]:
    exp = next((f for f in files
                if f.posix.endswith("src/repro/lab/experiments.py")), None)
    if exp is None:
        return
    root = exp.path.resolve().parents[3]
    trees: dict[str, dict[str, ast.FunctionDef] | None] = {}

    def module_defs(module: str):
        if module not in trees:
            path = _runner_module_path(root, module)
            try:
                tree = ast.parse(path.read_text(), filename=str(path))
            except (OSError, SyntaxError):
                trees[module] = None
            else:
                trees[module] = {
                    n.name: n for n in tree.body
                    if isinstance(n, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))}
        return trees[module]

    for module, func, check, lineno in _spec_registrations(exp.tree):
        if not isinstance(module, str) or not isinstance(func, str):
            continue
        defs = module_defs(module)
        if defs is None:
            yield Finding(
                path=exp.posix, line=lineno, rule="runner-signature",
                message=f"runner module '{module}' cannot be resolved "
                        "to a source file")
            continue
        node = defs.get(func)
        if node is None:
            yield Finding(
                path=exp.posix, line=lineno, rule="runner-signature",
                message=f"runner '{module}.{func}' is not defined")
        else:
            a = node.args
            positional = list(getattr(a, "posonlyargs", [])) + list(a.args)
            kwonly = {arg.arg for arg in a.kwonlyargs}
            if positional or "seed" not in kwonly:
                yield Finding(
                    path=exp.posix, line=lineno, rule="runner-signature",
                    message=f"runner '{module}.{func}' must be declared "
                            "keyword-only with a 'seed' parameter: "
                            "def run(*, seed=..., **params)")
        if isinstance(check, str) and check not in defs:
            yield Finding(
                path=exp.posix, line=lineno, rule="runner-signature",
                message=f"check '{module}.{check}' is not defined")


# ---------------------------------------------------------------------------
# error-hierarchy (R6, repo rule)
# ---------------------------------------------------------------------------

def rule_error_hierarchy(files: Sequence[SourceFile]) -> Iterable[Finding]:
    errors = next((f for f in files
                   if f.posix.endswith("src/repro/errors.py")), None)
    if errors is None:
        return
    allowed = {"ReproError"}
    changed = True
    while changed:  # transitive closure over the hierarchy in errors.py
        changed = False
        for node in errors.tree.body:
            if (isinstance(node, ast.ClassDef)
                    and node.name not in allowed
                    and any(_dotted(b) in allowed for b in node.bases)):
                allowed.add(node.name)
                changed = True
    for sf in files:
        if "src" not in sf.path.parts or "repro" not in sf.path.parts:
            continue
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Error") or node.name == "ReproError":
                continue
            bases = {_dotted(b).rpartition(".")[2] for b in node.bases}
            if not bases & allowed:
                yield Finding(
                    path=sf.posix, line=node.lineno, rule="error-hierarchy",
                    message=f"'{node.name}' must derive from "
                            "repro.errors.ReproError (directly or via an "
                            "existing subclass)")


FILE_RULES = [
    ("seed-discipline", rule_seed_discipline),
    ("silent-except", rule_silent_except),
    ("float-cost-eq", rule_float_cost_eq),
    ("serve-timeout", rule_serve_timeout),
]

REPO_RULES = [
    rule_kernel_oracle,
    rule_runner_signature,
    rule_error_hierarchy,
]
