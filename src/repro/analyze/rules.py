"""File-local rules for ``repro analyze``.

Each rule guards an invariant the reproduction depends on:

========================  ====================================================
rule id                   invariant
========================  ====================================================
``seed-discipline``       library code never draws from implicit global RNG
                          state; randomness flows through an explicit
                          ``np.random.Generator`` (or seed) parameter, so
                          every experiment is replayable.
``silent-except``         no ``except Exception:``/bare ``except:`` swallows
                          an error without re-raising, logging, or a written
                          pragma justifying the suppression.
``float-cost-eq``         cost/gain/load values are never compared with raw
                          ``==``/``!=``; comparisons go through
                          :mod:`repro.core.tolerance`.
``serve-timeout``         every ``await`` in the serving layer goes through
                          the ``with_deadline`` wrapper or is an allowlisted
                          pure-I/O primitive — no handler can block forever
                          on a solver future.
``shm-lifecycle``         every *owned* shared-memory creation
                          (``SharedMemory(create=True)``,
                          ``SharedArrays.create``,
                          ``SharedCSR.from_hypergraph``) is released on all
                          paths: ``with``, a ``finally`` cleanup, or an
                          explicit ownership hand-off.
========================  ====================================================

Since analyze v2 these rules are *fact consumers*: they read the
collections gathered by the single AST walk in
:class:`repro.analyze.index.Extractor` (resolved call records, except
handlers, comparisons, awaits) instead of re-walking the tree
themselves — one walk serves every rule.  Their findings are embedded
in the module summary, so the incremental engine replays them from
cache without re-parsing.

The *structural* repo-wide rules (``kernel-oracle``,
``runner-signature``, ``error-hierarchy``) and the interprocedural
passes (``determinism``, ``fork-safety``, ``rng-provenance``) live in
:mod:`repro.analyze.passes`.

Scoping: ``seed-discipline`` and ``float-cost-eq`` apply to library
code (files under ``src/``) — tests may intentionally seed globals or
compare exact integer-valued costs.  ``silent-except`` applies
everywhere.  ``serve-timeout`` applies only to files under
``src/repro/serve/``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from .engine import Finding, SourceFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .index import Extractor

__all__ = ["run_local_rules"]


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``np.random.shuffle``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# ---------------------------------------------------------------------------
# seed-discipline (R1)
# ---------------------------------------------------------------------------

#: Constructors for explicit, caller-seeded randomness are allowed.
_ALLOWED_NP_RANDOM = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}


def seed_discipline(sf: SourceFile, ex: "Extractor") -> Iterable[Finding]:
    if not sf.in_src:
        return
    for _qual, line, resolved, written in ex.call_records:
        head, _, attr = resolved.rpartition(".")
        if head in ("numpy.random", "np.random"):
            if attr not in _ALLOWED_NP_RANDOM:
                yield Finding(
                    path=sf.posix, line=line, rule="seed-discipline",
                    message=f"call to global-state RNG '{written}'; pass an "
                            "explicit np.random.Generator (default_rng) "
                            "instead")
        elif head == "random":
            yield Finding(
                path=sf.posix, line=line, rule="seed-discipline",
                message=f"call to stdlib global RNG '{written}'; use an "
                        "explicit np.random.Generator parameter")


# ---------------------------------------------------------------------------
# silent-except (R2)
# ---------------------------------------------------------------------------

_LOGGING_ROOTS = {"logging", "logger", "log", "warnings", "traceback"}
_LOGGING_ATTRS = {"warn", "warning", "error", "exception", "debug",
                  "info", "critical", "print_exc", "format_exc",
                  "log"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if t is None:
        return True
    names = [n for n in (t.elts if isinstance(t, ast.Tuple) else [t])]
    return any(isinstance(n, ast.Name)
               and n.id in ("Exception", "BaseException") for n in names)


def _handles(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            root, _, attr = name.partition(".")
            if root in _LOGGING_ROOTS:
                return True
            if name.rpartition(".")[2] in _LOGGING_ATTRS:
                return True
    return False


def silent_except(sf: SourceFile, ex: "Extractor") -> Iterable[Finding]:
    for handler in ex.handlers:
        if _is_broad(handler) and not _handles(handler):
            caught = (_dotted(handler.type) if handler.type is not None
                      else "all")
            yield Finding(
                path=sf.posix, line=handler.lineno, rule="silent-except",
                message=f"broad handler ({caught}) neither re-raises nor "
                        "logs; narrow the exception type or add an "
                        "allow(silent-except) pragma with a reason")


# ---------------------------------------------------------------------------
# float-cost-eq (R5)
# ---------------------------------------------------------------------------

_COSTY = ("cost", "gain", "makespan", "slack")


def _mentions_cost(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and any(c in name.lower() for c in _COSTY):
            return True
    return False


def float_cost_eq(sf: SourceFile, ex: "Extractor") -> Iterable[Finding]:
    if not sf.in_src:
        return
    for _ctx, node in ex.compares:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        if any(_mentions_cost(o) for o in operands):
            yield Finding(
                path=sf.posix, line=node.lineno, rule="float-cost-eq",
                message="raw ==/!= on a cost/gain value; use "
                        "repro.core.tolerance (close/leq/geq/lt/gt)")


# ---------------------------------------------------------------------------
# shm-lifecycle (R8)
# ---------------------------------------------------------------------------

#: Calls that create an *owned* shared-memory segment.  Attaching
#: (``SharedArrays.attach`` / ``SharedMemory(name=...)`` without
#: ``create=True``) is deliberately out of scope: attachers only close,
#: and a leaked close costs a mapping, not the segment.
_SHM_CREATE_TAILS = {"SharedArrays.create", "SharedCSR.from_hypergraph"}
_SHM_CLEANUP_ATTRS = {"close", "unlink", "__exit__"}


def _is_shm_creation(call: ast.Call) -> bool:
    dotted = _dotted(call.func)
    if ".".join(dotted.split(".")[-2:]) in _SHM_CREATE_TAILS:
        return True
    if dotted.split(".")[-1] == "SharedMemory":
        return any(kw.arg == "create"
                   and isinstance(kw.value, ast.Constant) and kw.value.value
                   for kw in call.keywords)
    return False


def _scope_walk(scope: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _shm_scopes(tree: ast.Module) -> Iterable[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def shm_lifecycle(sf: SourceFile, ex: "Extractor") -> Iterable[Finding]:
    """Owned shared-memory handles must be released on *all* paths.

    A creation passes when it is (a) used as a context manager, (b) a
    locally-bound handle that is ``close()``d / ``unlink()``ed inside a
    ``finally`` body, or (c) handed off — returned, yielded, stored on
    an object/container, or passed to another call — so a different
    scope owns the lifecycle.  Everything else is the Python >= 3.8
    footgun: an exception (or plain fall-through) before the cleanup
    leaks the segment until the resource tracker fires at process exit,
    which for a long-lived server is a /dev/shm leak.
    """
    if not sf.in_src:
        return
    for scope in _shm_scopes(sf.tree):
        parents: dict[ast.AST, ast.AST] = {}
        finally_nodes: set[ast.AST] = set()
        for node in _scope_walk(scope):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
            if isinstance(node, (ast.Try,)):
                for stmt in node.finalbody:
                    finally_nodes.update(ast.walk(stmt))

        def role(node: ast.AST) -> tuple[str, str]:
            """Classify a creation/name use by its nearest consumer."""
            child, parent = node, parents.get(node)
            while parent is not None:
                if isinstance(parent, ast.withitem):
                    return "with", ""
                if isinstance(parent, ast.Call) and child is not parent.func:
                    return "escape", "call argument"
                if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom,
                                       ast.List, ast.Tuple, ast.Dict,
                                       ast.Set)):
                    return "escape", type(parent).__name__.lower()
                if isinstance(parent, ast.Assign):
                    targets = parent.targets
                    if (len(targets) == 1 and isinstance(targets[0], ast.Name)
                            and child is parent.value):
                        return "bind", targets[0].id
                    return "escape", "stored"
                # Starred/conditional/walrus/await wrap the handle itself,
                # so the consumer above them decides; an Attribute or
                # Subscript *derives a value from* the handle and stops
                # the climb — `return seg.name` does not escape `seg`.
                if isinstance(parent, (ast.Starred, ast.IfExp,
                                       ast.NamedExpr, ast.Await)):
                    child, parent = parent, parents.get(parent)
                    continue
                break
            return "bare", ""

        for node in _scope_walk(scope):
            if not (isinstance(node, ast.Call) and _is_shm_creation(node)):
                continue
            kind, detail = role(node)
            if kind in ("with", "escape"):
                continue
            if kind == "bind":
                name = detail
                released = escaped = False
                for use in _scope_walk(scope):
                    if not (isinstance(use, ast.Name) and use.id == name
                            and isinstance(use.ctx, ast.Load)):
                        continue
                    up = parents.get(use)
                    if (isinstance(up, ast.Attribute)
                            and up.attr in _SHM_CLEANUP_ATTRS
                            and use in finally_nodes):
                        released = True
                        continue
                    ukind, _ = role(use)
                    if ukind == "with":
                        released = True
                    elif ukind == "escape":
                        escaped = True
                if released or escaped:
                    continue
                what = (f"shared-memory handle '{name}' is never released "
                        "on the exception path")
            else:
                what = "shared-memory segment is created and discarded"
            yield Finding(
                path=sf.posix, line=node.lineno, rule="shm-lifecycle",
                message=f"{what}; wrap the creation in `with`, release it "
                        "in a `finally`, or hand ownership to another "
                        "scope — a leaked owner segment survives in "
                        "/dev/shm until process exit (bpo-38119)")


# ---------------------------------------------------------------------------
# serve-timeout (R7)
# ---------------------------------------------------------------------------

#: Pure-I/O awaits and lifecycle transitions that cannot block on solver
#: work.  Everything else — solver futures, ``wait_for``, ``gather``,
#: ``to_thread`` — must flow through ``with_deadline`` so a request can
#: never outlive its budget.
_SERVE_AWAIT_OK = {
    "sleep", "drain", "wait_closed", "read", "readline", "readexactly",
    "readuntil", "serve_forever", "start_serving", "get", "put", "join",
    "acquire", "accept", "start", "stop",
}


def serve_timeout(sf: SourceFile, ex: "Extractor") -> Iterable[Finding]:
    parts = sf.path.parts
    if not ("src" in parts and "serve" in parts):
        return
    # Awaiting an async def *from this file* is transitively safe: its
    # own awaits are subject to this very rule.
    for line, callee, written, is_call in ex.awaits:
        if is_call:
            if (callee == "with_deadline" or callee in _SERVE_AWAIT_OK
                    or callee in ex.local_async):
                continue
            what = f"await of '{written or callee or '?'}()'"
        else:
            what = "bare await of a non-call expression"
        yield Finding(
            path=sf.posix, line=line, rule="serve-timeout",
            message=f"{what} in the serving layer; route it through "
                    "with_deadline(...) so the request budget applies, "
                    "or add an allow(serve-timeout) pragma with a reason")


_LOCAL_RULES = (seed_discipline, silent_except, float_cost_eq,
                serve_timeout, shm_lifecycle)


def run_local_rules(sf: SourceFile, ex: "Extractor") -> list[Finding]:
    """All file-local findings for one module, in deterministic order."""
    out: list[Finding] = []
    for rule in _LOCAL_RULES:
        out.extend(rule(sf, ex))
    return out
