"""SARIF 2.1.0 export for ``repro analyze --format sarif``.

Emits the minimal static-analysis interchange document that code
hosts and IDE SARIF viewers ingest: one run, one tool driver
(``repro-analyze``), a rule table derived from
:data:`repro.analyze.passes.RULE_META`, and one result per finding
with severity mapped onto SARIF's ``error``/``warning``/``note``
levels.  Output is deterministic (sorted rules, findings already
sorted by the engine) so the document bytes are stable run-to-run.

Findings carrying a CFG witness path (``Finding.flow``) additionally
emit a SARIF ``codeFlow``: one thread flow whose locations replay the
witness step by step — acquisition site, the exception edge that
escapes with the resource live, the exit it reaches — so SARIF
viewers can walk the exact path the abstract interpreter proved.
"""

from __future__ import annotations

from typing import Sequence

from .engine import Finding

__all__ = ["to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def to_sarif(findings: Sequence[Finding], *,
             tool_version: str = "2.0") -> dict:
    from .passes import RULE_META

    used = sorted({f.rule for f in findings})
    rules = []
    for rule in used:
        severity, description = RULE_META.get(rule, ("error", rule))
        rules.append({
            "id": rule,
            "shortDescription": {"text": description},
            "defaultConfiguration": {
                "level": _LEVELS.get(severity, "error")},
        })
    rule_index = {rule: i for i, rule in enumerate(used)}
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": _LEVELS.get(f.severity, "error"),
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": max(1, f.line)},
                },
            }],
        }
        if f.flow:
            result["codeFlows"] = [{
                "threadFlows": [{
                    "locations": [{
                        "location": {
                            "physicalLocation": {
                                "artifactLocation": {"uri": p},
                                "region": {"startLine": max(1, int(ln))},
                            },
                            "message": {"text": note},
                        },
                    } for (p, ln, note) in f.flow],
                }],
            }]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "repro-analyze",
                "version": tool_version,
                "rules": rules,
            }},
            "results": results,
        }],
    }
