"""Opt-in runtime sanitizer for the CSR/partition core.

Enabled by setting ``REPRO_SANITIZE=1`` (or ``true``/``yes``/``on``) in
the environment, or by passing ``--sanitize`` to ``repro lab run``.
When disabled — the default — every check degrades to a single module
attribute test at the call site (``if sanitize.ENABLED: ...``), so the
hot kernels pay effectively nothing.

When enabled, the partitioner/kernel boundaries re-validate the
structures they hand across:

* :func:`check_csr` — CSR well-formedness (monotone ``ptr`` starting at
  0, in-range strictly-increasing pins) via the canonical
  :func:`repro.core.kernels.check_csr` validator;
* :func:`check_partition` — label vector shape/dtype/range;
* :func:`check_balance` — per-part weights within the caps (up to the
  shared :data:`repro.core.tolerance.ATOL`);
* :func:`check_hyperdag_certificate` — a recognition certificate really
  certifies acyclicity (re-checked via ``verify_generators``).

Failures raise :class:`repro.errors.SanitizerError`, chained to the
underlying validation error where one exists.  Worker processes spawned
by the lab executor inherit the environment variable, so ``--sanitize``
covers process-parallel runs too.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import SanitizerError

__all__ = [
    "ENABLED",
    "refresh",
    "check_csr",
    "check_partition",
    "check_balance",
    "check_hyperdag_certificate",
]

_TRUTHY = {"1", "true", "yes", "on"}


def _read_env() -> bool:
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


#: Whether the sanitizer is active.  Read once at import; call
#: :func:`refresh` after changing ``REPRO_SANITIZE`` at runtime.
ENABLED = _read_env()


def refresh() -> bool:
    """Re-read ``REPRO_SANITIZE`` and return the new state."""
    global ENABLED
    ENABLED = _read_env()
    return ENABLED


def check_csr(edge_ptr, edge_pins, n: int, *, where: str = "") -> None:
    """Validate a CSR pair against hypergraph ``n`` (well-formedness)."""
    if not ENABLED:
        return
    from ..core import kernels
    from ..errors import InvalidHypergraphError
    try:
        kernels.check_csr(edge_ptr, edge_pins, n)
    except InvalidHypergraphError as exc:
        raise SanitizerError(
            f"corrupted CSR{' in ' + where if where else ''}: {exc}"
        ) from exc


def check_partition(graph, labels, k: int, *, where: str = "") -> None:
    """Validate a label vector: length ``graph.n``, integers in [0, k)."""
    if not ENABLED:
        return
    at = f" in {where}" if where else ""
    arr = np.asarray(labels)
    if arr.shape != (graph.n,):
        raise SanitizerError(
            f"partition{at}: {arr.shape} labels for n={graph.n} nodes")
    if not np.issubdtype(arr.dtype, np.integer):
        raise SanitizerError(
            f"partition{at}: non-integer label dtype {arr.dtype}")
    if arr.size and (arr.min() < 0 or arr.max() >= k):
        raise SanitizerError(
            f"partition{at}: labels outside [0, {k}) "
            f"(min={arr.min()}, max={arr.max()})")


def check_balance(graph, labels, caps, *, where: str = "") -> None:
    """Validate that per-part node weights stay within ``caps``."""
    if not ENABLED:
        return
    from ..core.tolerance import leq
    caps = np.asarray(caps, dtype=np.float64)
    weights = np.bincount(np.asarray(labels),
                          weights=graph.node_weights,
                          minlength=caps.size)
    bad = ~leq(weights, caps)
    if bad.any():
        p = int(np.argmax(bad))
        at = f" in {where}" if where else ""
        raise SanitizerError(
            f"balance violation{at}: part {p} carries {weights[p]:g} "
            f"> cap {caps[p]:g}")


def check_hyperdag_certificate(graph, generators, *,
                               where: str = "") -> None:
    """Validate that a claimed generator assignment certifies a
    hyperDAG (distinct in-edge generators inducing an acyclic graph)."""
    if not ENABLED:
        return
    from ..core.hyperdag import verify_generators
    if not verify_generators(graph, tuple(generators)):
        at = f" in {where}" if where else ""
        raise SanitizerError(
            f"invalid hyperDAG certificate{at}: generator assignment "
            "does not induce an acyclic orientation")
