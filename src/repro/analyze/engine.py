"""Core of the ``repro analyze`` whole-program analysis platform.

The engine orchestrates a three-stage pipeline:

1. **extract** — each ``.py`` file is parsed once (stdlib :mod:`ast`,
   no third-party dependency) and boiled down to a
   :class:`~repro.analyze.index.ModuleSummary`: symbols, import
   aliases, resolved call targets, global-mutation / RNG facts, pragma
   table, and the findings of the *file-local* rules
   (:mod:`repro.analyze.rules`), which all ride the same single AST
   walk.
2. **link** — summaries are joined into a
   :class:`~repro.analyze.index.ModuleIndex` and a
   :class:`~repro.analyze.callgraph.CallGraph`; ``repro.*`` imports,
   ``from x import y as z`` aliases, ``__init__``-re-exports and
   registry dispatch (lab spec registrations, ``Process(target=...)``
   worker entrypoints) all resolve here.
3. **check** — the structural repo rules (kernel-oracle parity, runner
   signatures, error hierarchy) and the interprocedural dataflow
   passes (determinism, fork-safety, rng-provenance) run over the
   linked program and emit :class:`Finding` objects.

Both cold and ``--incremental`` runs execute *exactly* this pipeline —
incrementality only changes where stage 1 summaries come from (the
content-addressed ``.analyze-cache/`` instead of a fresh parse), which
is why the two modes report byte-identical findings.

Findings can be suppressed per line with a *pragma comment* that must
carry a written reason; both historical spellings are recognised::

    except Exception:  # analyze: allow(silent-except) — why this is OK
    except Exception:  # repro: allow[silent-except] — why this is OK

A pragma without a reason is itself a finding
(``pragma-missing-reason``), and a pragma that suppresses nothing is
flagged as ``unused-pragma`` so stale exemptions cannot accumulate —
including pragmas left behind when a refactor moves the code a
dataflow pass used to flag.  A pragma on a comment-only line applies
to the next source line.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Sequence

__all__ = [
    "Finding",
    "SourceFile",
    "PragmaTable",
    "AnalysisReport",
    "analyze_paths",
    "collect_files",
    "run_analysis",
    "severity_at_least",
]

#: Matches ``analyze: allow(<id>)`` / ``repro: allow[<id>]`` after a
#: hash; the separator before the reason may be an em/en dash, ``--``,
#: ``-`` or ``:``.
PRAGMA_RES = (
    re.compile(r"#\s*analyze:\s*allow\(([a-z0-9-]+)\)"
               r"(?:\s*(?:—|–|--|-|:)\s*(?P<reason>.*))?\s*$"),
    re.compile(r"#\s*repro:\s*allow\[([a-z0-9-]+)\]"
               r"(?:\s*(?:—|–|--|-|:)\s*(?P<reason>.*))?\s*$"),
)

#: Severity ranking used by ``--fail-on`` (higher = more severe).
_SEVERITY_RANK = {"note": 0, "warning": 1, "error": 2}


def severity_at_least(severity: str, threshold: str) -> bool:
    """True when ``severity`` is at or above the ``--fail-on`` bar."""
    return _SEVERITY_RANK.get(severity, 2) >= _SEVERITY_RANK.get(threshold, 2)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Path-sensitive findings additionally carry ``flow`` — the CFG
    witness path as ``(path, line, note)`` steps from the fact that
    introduces the bad state to the point where it becomes an error.
    The text rendering stays one line (the message embeds a compact
    witness); SARIF output expands ``flow`` into a ``codeFlow``.
    """

    path: str
    line: int
    rule: str
    message: str
    severity: str = "error"
    flow: tuple = ()

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.severity}: "
                f"{self.rule}: {self.message}")

    def to_json(self) -> dict:
        out = {"path": self.path, "line": self.line, "rule": self.rule,
               "severity": self.severity, "message": self.message}
        if self.flow:
            out["flow"] = [[p, ln, note] for (p, ln, note) in self.flow]
        return out


@dataclass
class _Pragma:
    line: int              # line the pragma comment sits on
    rule: str
    reason: str            # "" when the author forgot the reason
    targets: tuple[int, ...]  # source lines this pragma covers
    used: bool = False


class PragmaTable:
    """Per-file table of ``allow(...)`` / ``allow[...]`` suppressions.

    Pragmas are read from real comment tokens (via :mod:`tokenize`), so
    pragma-shaped text inside string literals or docstrings is ignored.
    """

    def __init__(self, text: str | None) -> None:
        self.pragmas: list[_Pragma] = []
        if text is None:        # deserialised table: rows added manually
            return
        lines = text.splitlines()
        try:
            tokens = list(tokenize.generate_tokens(
                iter(text.splitlines(keepends=True)).__next__))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = None
            for rx in PRAGMA_RES:
                m = rx.search(tok.string)
                if m is not None:
                    break
            if m is None:
                continue
            row, col = tok.start
            targets = [row]
            if lines[row - 1][:col].strip() == "":
                # A comment-only pragma covers the first source line
                # after its comment block (a multi-line reason is one
                # pragma, not one per line).
                nxt = row + 1
                while (nxt <= len(lines)
                       and lines[nxt - 1].strip().startswith("#")):
                    nxt += 1
                targets.append(nxt)
            self.pragmas.append(
                _Pragma(line=row, rule=m.group(1),
                        reason=(m.group("reason") or "").strip(),
                        targets=tuple(targets)))

    def suppresses(self, rule: str, line: int) -> bool:
        hit = False
        for p in self.pragmas:
            if p.rule == rule and line in p.targets:
                p.used = True
                hit = True
        return hit

    def engine_findings(self, path: str) -> list[Finding]:
        out = []
        for p in self.pragmas:
            if not p.reason:
                out.append(Finding(
                    path=path, line=p.line, rule="pragma-missing-reason",
                    message=f"allow({p.rule}) pragma must carry a written "
                            "reason after a dash"))
            elif not p.used:
                out.append(Finding(
                    path=path, line=p.line, rule="unused-pragma",
                    message=f"allow({p.rule}) pragma suppresses nothing "
                            "on this line; remove it"))
        return out

    def to_json(self) -> list:
        return [[p.line, p.rule, p.reason, list(p.targets)]
                for p in self.pragmas]

    @classmethod
    def from_json(cls, rows: list) -> "PragmaTable":
        table = cls(None)
        for line, rule, reason, targets in rows:
            table.pragmas.append(_Pragma(
                line=int(line), rule=rule, reason=reason,
                targets=tuple(int(t) for t in targets)))
        return table


@dataclass
class SourceFile:
    """A parsed module plus the metadata rules key off."""

    path: Path
    text: str
    tree: ast.Module
    pragmas: PragmaTable

    @property
    def posix(self) -> str:
        return self.path.as_posix()

    @property
    def in_src(self) -> bool:
        return "src" in self.path.parts

    @property
    def in_tests(self) -> bool:
        return "tests" in self.path.parts


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.update(f for f in p.rglob("*.py")
                       if "__pycache__" not in f.parts)
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


@dataclass
class AnalysisReport:
    """Findings plus the run metadata the CLI and benchmarks report."""

    findings: list[Finding]
    files: int = 0
    reused: int = 0            # summaries served from .analyze-cache/
    extracted: int = 0         # summaries rebuilt by parsing
    scope_note: str = ""       # human note for --changed filtering


def run_analysis(
    paths: Sequence[str | Path],
    *,
    incremental: bool = False,
    cache_dir: str | Path | None = None,
    changed_only: bool = False,
    root: str | Path | None = None,
    jobs: int = 1,
) -> AnalysisReport:
    """Run the full pipeline over ``paths``.

    ``incremental`` reuses per-module summaries from ``cache_dir``
    (default ``.analyze-cache/``) keyed by content hash, re-extracting
    only modules whose bytes changed; the link and check stages always
    run whole-program over the summaries, so a change in module B is
    re-judged against *every* module that imports it — the reverse
    dependency closure — without re-parsing those importers.

    ``changed_only`` restricts the *reported* findings to modules
    changed per git plus their reverse-dependency closure (a fast
    pre-commit view; CI gates on the unfiltered run).

    ``jobs > 1`` fans stage-1 extraction out over a process pool.
    Parallelism only changes who parses: cache-miss modules are
    summarised in workers and merged back in file order, and the link
    and check stages run in the parent over the ordered summaries, so
    findings are byte-identical to a serial run for any ``jobs``.
    """
    from . import passes as _passes
    from .cache import SummaryCache
    from .index import ModuleIndex

    files = collect_files(paths)
    cache = (SummaryCache(cache_dir) if incremental else None)

    slots: list = []
    pending: list[tuple[int, Path, bytes]] = []
    reused = 0
    for path in files:
        raw = _read_bytes(path)
        if raw is None:
            continue
        summary = None
        if cache is not None:
            summary = cache.get(path.as_posix(), raw)
        if summary is not None:
            reused += 1
        else:
            pending.append((len(slots), path, raw))
        slots.append(summary)
    extracted = 0
    if pending:
        fresh = _extract_many([(p, raw) for (_i, p, raw) in pending], jobs)
        for (idx, path, raw), summary in zip(pending, fresh):
            if summary is None:
                continue
            extracted += 1
            if cache is not None:
                cache.put(path.as_posix(), raw, summary)
            slots[idx] = summary
    summaries = [s for s in slots if s is not None]

    index = ModuleIndex(summaries)
    raw_findings = list(_passes.run_all(index))

    # Pragma suppression — one table per path, then engine findings
    # (missing reason / unused) from the same tables.
    tables = {s.path: s.pragma_table() for s in summaries}
    findings = []
    for f in raw_findings:
        table = tables.get(f.path)
        if table is not None and table.suppresses(f.rule, f.line):
            continue
        findings.append(f)
    for s in summaries:
        findings.extend(tables[s.path].engine_findings(s.path))

    meta = _passes.RULE_META
    findings = sorted(
        replace(f, severity=meta.get(f.rule, ("error",))[0])
        for f in findings)

    report = AnalysisReport(findings=findings, files=len(summaries),
                            reused=reused, extracted=extracted)
    if changed_only:
        _filter_changed(report, index, root, cache)
    return report


def _read_bytes(path: Path) -> bytes | None:
    try:
        return path.read_bytes()
    except OSError:
        return None


def _extract_worker(item: tuple[str, bytes]) -> dict | None:
    """Process-pool stage-1 worker: bytes in, summary JSON dict out.

    Module-level (picklable) on purpose; returns the serialised form so
    the parent deserialises through the exact round-trip the cache
    uses, keeping parallel output structurally identical to serial.
    """
    from .index import extract_summary, load_source

    path_str, raw = item
    sf = load_source(Path(path_str), raw)
    if sf is None:
        return None
    return extract_summary(sf).to_json()


def _extract_many(items: list[tuple[Path, bytes]], jobs: int) -> list:
    """Summaries for ``items`` in order; workers when ``jobs > 1``."""
    from .index import ModuleSummary, extract_summary, load_source

    payload = [(p.as_posix(), raw) for (p, raw) in items]
    if jobs > 1 and len(payload) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            chunk = max(1, len(payload) // (4 * jobs))
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                dicts = list(pool.map(_extract_worker, payload,
                                      chunksize=chunk))
            return [None if d is None else ModuleSummary.from_json(d)
                    for d in dicts]
        except (OSError, RuntimeError, ImportError):
            # Pool could not start (sandboxed fork, missing sem support,
            # BrokenProcessPool): degrade to the serial path below —
            # same summaries, just slower.
            pass
    out = []
    for path_str, raw in payload:
        sf = load_source(Path(path_str), raw)
        out.append(None if sf is None else extract_summary(sf))
    return out


def _filter_changed(report: AnalysisReport, index, root,
                    cache=None) -> None:
    """Keep findings in git-changed modules + reverse-dep closure.

    Paths git reports that no longer exist on disk (deleted, or the
    old name of a rename) are dropped from scope — they still *root*
    the reverse-dependency closure, since their importers' verdicts
    may have changed — and their stale cache summaries are evicted.
    """
    from .index import changed_scope

    scope = changed_scope(index, root)
    if scope is None:
        report.scope_note = ("--changed: not a git checkout; "
                             "reporting everything")
        return
    paths, n_changed, missing = scope
    report.findings = [f for f in report.findings if f.path in paths]
    report.scope_note = (f"--changed: {n_changed} changed module(s), "
                         f"{len(paths)} in reverse-dependency scope")
    if missing:
        report.scope_note += (f"; dropped {len(missing)} deleted/renamed "
                              "path(s)")
        if cache is not None:
            for posix in missing:
                cache.evict_path(posix)


def analyze_paths(paths: Sequence[str | Path]) -> list[Finding]:
    """Run all rules and passes over ``paths``; unsuppressed findings.

    Compatibility entry point: one cold, whole-program run of
    :func:`run_analysis`.
    """
    return run_analysis(paths).findings
