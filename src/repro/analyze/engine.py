"""Core of the ``repro analyze`` static-analysis pass.

The engine is deliberately small: it walks a set of ``.py`` files,
parses each one with the stdlib :mod:`ast` module (no third-party
dependency), and hands the parse trees to two kinds of rules:

* **file rules** look at one module at a time (seed discipline, silent
  ``except``, float equality on cost values, ...);
* **repo rules** need cross-file information (does every public kernel
  have a ``_reference_*`` oracle twin? does every registered experiment
  runner follow the ``run(*, seed, **params)`` convention?).

Findings can be suppressed per line with a *pragma comment* that must
carry a written reason::

    except Exception:  # analyze: allow(silent-except) — why this is OK

A pragma without a reason is itself a finding
(``pragma-missing-reason``), and a pragma that suppresses nothing is
flagged as ``unused-pragma`` so stale exemptions cannot accumulate.
A pragma on a comment-only line applies to the next source line.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

__all__ = [
    "Finding",
    "SourceFile",
    "PragmaTable",
    "analyze_paths",
    "collect_files",
]

#: Matches ``analyze: allow(<id>) <sep> <reason>`` after a hash; the
#: separator before the reason may be an em/en dash, ``--``, ``-`` or
#: ``:``.
PRAGMA_RE = re.compile(
    r"#\s*analyze:\s*allow\(([a-z0-9-]+)\)"
    r"(?:\s*(?:—|–|--|-|:)\s*(?P<reason>.*))?\s*$"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass
class _Pragma:
    line: int              # line the pragma comment sits on
    rule: str
    reason: str            # "" when the author forgot the reason
    targets: tuple[int, ...]  # source lines this pragma covers
    used: bool = False


class PragmaTable:
    """Per-file table of ``# analyze: allow(...)`` suppressions.

    Pragmas are read from real comment tokens (via :mod:`tokenize`), so
    pragma-shaped text inside string literals or docstrings is ignored.
    """

    def __init__(self, text: str) -> None:
        self.pragmas: list[_Pragma] = []
        lines = text.splitlines()
        try:
            tokens = list(tokenize.generate_tokens(
                iter(text.splitlines(keepends=True)).__next__))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = PRAGMA_RE.search(tok.string)
            if m is None:
                continue
            row, col = tok.start
            targets = [row]
            if lines[row - 1][:col].strip() == "":
                targets.append(row + 1)  # comment-only line: covers next
            self.pragmas.append(
                _Pragma(line=row, rule=m.group(1),
                        reason=(m.group("reason") or "").strip(),
                        targets=tuple(targets)))

    def suppresses(self, rule: str, line: int) -> bool:
        hit = False
        for p in self.pragmas:
            if p.rule == rule and line in p.targets:
                p.used = True
                hit = True
        return hit

    def engine_findings(self, path: str) -> list[Finding]:
        out = []
        for p in self.pragmas:
            if not p.reason:
                out.append(Finding(
                    path=path, line=p.line, rule="pragma-missing-reason",
                    message=f"allow({p.rule}) pragma must carry a written "
                            "reason after a dash"))
            elif not p.used:
                out.append(Finding(
                    path=path, line=p.line, rule="unused-pragma",
                    message=f"allow({p.rule}) pragma suppresses nothing "
                            "on this line; remove it"))
        return out


@dataclass
class SourceFile:
    """A parsed module plus the metadata rules key off."""

    path: Path
    text: str
    tree: ast.Module
    pragmas: PragmaTable

    @property
    def posix(self) -> str:
        return self.path.as_posix()

    @property
    def in_src(self) -> bool:
        return "src" in self.path.parts

    @property
    def in_tests(self) -> bool:
        return "tests" in self.path.parts


#: A file rule maps one SourceFile to findings.
FileRule = Callable[[SourceFile], Iterable[Finding]]
#: A repo rule sees every collected file at once.
RepoRule = Callable[[Sequence[SourceFile]], Iterable[Finding]]


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.update(f for f in p.rglob("*.py")
                       if "__pycache__" not in f.parts)
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def _load(path: Path) -> SourceFile | None:
    try:
        with tokenize.open(path) as fh:
            text = fh.read()
        tree = ast.parse(text, filename=str(path))
    except (OSError, SyntaxError, UnicodeDecodeError):
        return None
    return SourceFile(path=path, text=text, tree=tree,
                      pragmas=PragmaTable(text))


def analyze_paths(
    paths: Sequence[str | Path],
    *,
    file_rules: Sequence[tuple[str, FileRule]] | None = None,
    repo_rules: Sequence[RepoRule] | None = None,
) -> list[Finding]:
    """Run all rules over ``paths`` and return unsuppressed findings.

    Rules default to the full built-in set from
    :mod:`repro.analyze.rules`.
    """
    if file_rules is None or repo_rules is None:
        from . import rules as _rules
        if file_rules is None:
            file_rules = _rules.FILE_RULES
        if repo_rules is None:
            repo_rules = _rules.REPO_RULES

    files = [sf for sf in (_load(p) for p in collect_files(paths))
             if sf is not None]
    raw: list[Finding] = []
    for sf in files:
        for _name, rule in file_rules:
            raw.extend(rule(sf))
    for rule in repo_rules:
        raw.extend(rule(files))

    by_path = {sf.posix: sf for sf in files}
    findings = []
    for f in raw:
        sf = by_path.get(f.path)
        if sf is not None and sf.pragmas.suppresses(f.rule, f.line):
            continue
        findings.append(f)
    for sf in files:
        findings.extend(sf.pragmas.engine_findings(sf.posix))
    return sorted(findings)
