"""Concurrency fact layer — extract-time facts for the v4 passes.

:func:`collect_concurrency` walks one parsed module and distils the
facts the check-stage concurrency passes (:mod:`.passes.lock_discipline`,
:mod:`.passes.fork_hygiene`) consume.  Everything here is derived from
the module's bytes alone and is JSON-serialisable, so the facts ride
inside :class:`~repro.analyze.index.ModuleSummary` and the incremental
cache replays them without re-parsing.

Collected facts (one dict, see ``collect_concurrency``):

``locks``
    lock/semaphore constructions — ``self.X = threading.Lock()`` in a
    method keys as ``Class.X``; a module-level ``X = asyncio.Lock()``
    keys as ``X``.  ``kind`` records the *flavour* of the primitive:
    ``sync`` (``threading``/``multiprocessing``) or ``async``
    (``asyncio``);
``executors``
    ``ThreadPoolExecutor``/``ProcessPoolExecutor`` constructions,
    keyed the same way;
``acquires``
    every lock acquisition — ``with lock:``, ``async with lock:`` or a
    ``lock.acquire()`` call — with the syntactic *held set*: the locks
    whose ``with`` blocks enclose this acquisition.  The held set is
    what the lock-order graph is built from;
``guarded_writes``
    ``self.Y = ...`` stores lexically inside a ``with lock:`` block,
    with the innermost guarding lock and its flavour — the mixed
    sync/async guard check joins these across methods;
``submits``
    executor submissions (``loop.run_in_executor(self._io, ...)``,
    ``self._io.submit(...)``) whose executor operand is *directly* a
    known executor attribute or name.  A conditionally selected
    executor (``a if p else b``) records nothing — the pass stays
    silent rather than guessing;
``spawns``
    ``Process(target=...)`` call sites with the dotted roots of every
    argument expression, so the fork-hygiene pass can see a live lock
    or executor crossing the fork boundary;
``resets``
    lines where :func:`repro.lab.executor.reset_inherited_signals` is
    called, per function;
``ipc_unguarded``
    per function, IPC touches (pipe/queue method calls) *not
    dominated* by a ``reset_inherited_signals`` call — a must-reach
    boolean analysis over the function's CFG, solved with the same
    worklist engine as the path-sensitive passes.

Known approximations, documented once: the held set is lexical
(``acquire()``/``release()`` pairs spanning statements do not extend
it); locks are keyed by attribute name within one class, so two
instances of one class share a key (sound for ordering: both follow
the same code paths); facts inside nested functions are attributed to
the enclosing top-level function, with an *empty* held set (the nested
body runs at call time, not under the enclosing ``with``).
"""

from __future__ import annotations

import ast

from .absint import solve
from .cfg import build_cfg
from .engine import SourceFile

__all__ = ["collect_concurrency"]

#: Resolved constructors of synchronous (thread-blocking) primitives.
SYNC_LOCKS = {
    "threading.Lock", "threading.RLock", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Condition",
    "multiprocessing.Lock", "multiprocessing.RLock",
}

#: Resolved constructors of asyncio (coroutine-suspending) primitives.
ASYNC_LOCKS = {
    "asyncio.Lock", "asyncio.Semaphore", "asyncio.BoundedSemaphore",
    "asyncio.Condition",
}

_EXECUTOR_TAILS = ("ThreadPoolExecutor", "ProcessPoolExecutor")

#: Pipe/queue methods a fork worker must not touch before resetting
#: inherited signal state (the fact is latent for ordinary functions;
#: the fork-hygiene pass consults it only for worker entrypoints).
IPC_METHODS = {
    "recv", "recv_bytes", "send", "send_bytes", "poll",
    "get_nowait", "put_nowait",
}

_NO_DESCEND = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
               ast.ClassDef)


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _expr_walk(roots):
    """Walk expressions without entering nested def/class bodies."""
    stack = list(roots)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _NO_DESCEND):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _Collector:
    def __init__(self, sf: SourceFile, ex) -> None:
        self.sf = sf
        self.ex = ex                     # the Extractor (name resolution)
        self.facts: dict = {
            "locks": [], "executors": [], "acquires": [],
            "guarded_writes": [], "submits": [], "spawns": [],
            "resets": {}, "ipc_unguarded": {},
        }
        self.lock_kind: dict[str, str] = {}    # key -> sync|async
        self.exec_keys: set[str] = set()

    # -- phase 1: definitions -------------------------------------------

    def _classify_ctor(self, value) -> tuple[str, str] | None:
        if not isinstance(value, ast.Call):
            return None
        resolved = self.ex.resolve(_dotted(value.func))
        if resolved is None:
            return None
        if resolved in SYNC_LOCKS:
            return "lock", "sync"
        if resolved in ASYNC_LOCKS:
            return "lock", "async"
        if resolved.rpartition(".")[2] in _EXECUTOR_TAILS:
            return "executor", ""
        return None

    def _def_key(self, target, cls: str | None) -> str | None:
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self" and cls):
            return f"{cls}.{target.attr}"
        if isinstance(target, ast.Name) and cls is None:
            return target.id
        return None

    def _scan_defs(self) -> None:
        def scan(body, cls):
            for stmt in body:
                if isinstance(stmt, ast.ClassDef) and cls is None:
                    scan(stmt.body, stmt.name)
                elif isinstance(stmt, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    for sub in ast.walk(stmt):
                        if isinstance(sub, ast.Assign):
                            self._note_def(sub, cls)
                elif isinstance(stmt, ast.Assign):
                    self._note_def(stmt, cls)
        scan(self.sf.tree.body, None)

    def _note_def(self, stmt: ast.Assign, cls: str | None) -> None:
        got = self._classify_ctor(stmt.value)
        if got is None:
            return
        what, kind = got
        for target in stmt.targets:
            key = self._def_key(target, cls)
            if key is None:
                continue
            if what == "lock":
                self.lock_kind[key] = kind
                self.facts["locks"].append([stmt.lineno, key, kind])
            else:
                self.exec_keys.add(key)
                self.facts["executors"].append([stmt.lineno, key])

    # -- phase 2: per-function events -----------------------------------

    def _ref_key(self, expr, cls: str | None,
                 table) -> str | None:
        """Key of a ``self.X`` / bare-name reference into ``table``."""
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and cls):
            key = f"{cls}.{expr.attr}"
            return key if key in table else None
        if isinstance(expr, ast.Name) and expr.id in table:
            return expr.id
        return None

    def run(self) -> dict:
        self._scan_defs()
        for stmt in self.sf.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt, stmt.name, None)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        self._function(sub, f"{stmt.name}.{sub.name}",
                                       stmt.name)
        return self.facts

    def _function(self, node, qual: str, cls: str | None) -> None:
        self._stmts(node.body, qual, cls, [])
        self._ipc_dominance(node, qual, cls)

    def _stmts(self, body, qual, cls, held) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                mode = ("async" if isinstance(stmt, ast.AsyncWith)
                        else "sync")
                pushed = 0
                for item in stmt.items:
                    key = self._ref_key(item.context_expr, cls,
                                        self.lock_kind)
                    if key is not None:
                        self.facts["acquires"].append(
                            [qual, stmt.lineno, key, mode, list(held)])
                        held.append(key)
                        pushed += 1
                    else:
                        self._exprs([item.context_expr], stmt, qual,
                                    cls, held)
                self._stmts(stmt.body, qual, cls, held)
                del held[len(held) - pushed:]
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # nested def: events attributed to the enclosing
                # function, but the body runs at call time — held set
                # does not apply.
                self._stmts(stmt.body, qual, cls, [])
                continue
            if isinstance(stmt, ast.ClassDef):
                continue
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if sub:
                    self._stmts(sub, qual, cls, held)
            for handler in getattr(stmt, "handlers", []):
                self._stmts(handler.body, qual, cls, held)
            self._stmt_events(stmt, qual, cls, held)

    def _stmt_events(self, stmt, qual, cls, held) -> None:
        if isinstance(stmt, ast.Assign) and held:
            for target in stmt.targets:
                for sub in ast.walk(target):
                    if (isinstance(sub, ast.Attribute)
                            and isinstance(sub.value, ast.Name)
                            and sub.value.id == "self" and cls):
                        key = held[-1]
                        self.facts["guarded_writes"].append(
                            [qual, stmt.lineno, f"{cls}.{sub.attr}",
                             key, self.lock_kind.get(key, "sync")])
        roots = [v for v in ast.iter_child_nodes(stmt)
                 if isinstance(v, ast.expr)]
        if isinstance(stmt, (ast.If, ast.While)):
            roots = [stmt.test]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            roots = [stmt.iter]
        self._exprs(roots, stmt, qual, cls, held)

    def _exprs(self, roots, stmt, qual, cls, held) -> None:
        awaited: set[int] = set()
        for sub in _expr_walk(roots):
            if isinstance(sub, ast.Await):
                for inner in _expr_walk([sub.value]):
                    awaited.add(id(inner))
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Attribute):
                if func.attr == "acquire":
                    key = self._ref_key(func.value, cls, self.lock_kind)
                    if key is not None:
                        mode = ("async" if id(sub) in awaited else "sync")
                        self.facts["acquires"].append(
                            [qual, sub.lineno, key, mode, list(held)])
                elif func.attr == "run_in_executor" and sub.args:
                    key = self._ref_key(sub.args[0], cls, self.exec_keys)
                    if key is not None:
                        self.facts["submits"].append(
                            [qual, sub.lineno, key])
                elif func.attr == "submit":
                    key = self._ref_key(func.value, cls, self.exec_keys)
                    if key is not None:
                        self.facts["submits"].append(
                            [qual, sub.lineno, key])
            if _dotted(func).rpartition(".")[2] == "Process":
                target = ""
                argroots: list[str] = []
                for kw in sub.keywords:
                    if kw.arg == "target":
                        target = (self.ex.resolve(_dotted(kw.value))
                                  or _dotted(kw.value))
                operands = list(sub.args) + [kw.value for kw in sub.keywords
                                             if kw.arg != "target"]
                for arg in operands:
                    for n in _expr_walk([arg]):
                        d = _dotted(n)
                        if d:
                            argroots.append(d)
                # _expr_walk yields sub-chains too ("self" under
                # "self._lock"): keep only maximal dotted names, first
                # seen (source) order, for stable messages
                maximal = [d for d in argroots
                           if not any(o != d and o.startswith(d + ".")
                                      for o in argroots)]
                seen: set[str] = set()
                argroots = [d for d in maximal
                            if not (d in seen or seen.add(d))]
                self.facts["spawns"].append(
                    [qual, sub.lineno, target, argroots])

    # -- phase 3: reset-dominates-IPC (CFG must-analysis) ---------------

    def _is_reset_call(self, call: ast.Call) -> bool:
        dotted = _dotted(call.func)
        if dotted.rpartition(".")[2] != "reset_inherited_signals":
            return False
        resolved = self.ex.resolve(dotted)
        return resolved is None or resolved.endswith(
            ".reset_inherited_signals")

    def _ipc_calls(self, roots) -> list[tuple[int, str]]:
        out = []
        for sub in _expr_walk(roots):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in IPC_METHODS):
                out.append((sub.lineno, _dotted(sub.func)
                            or sub.func.attr))
        return out

    def _ipc_dominance(self, node, qual: str, cls) -> None:
        body_exprs = [s for s in ast.walk(node)]
        has_ipc = any(
            isinstance(s, ast.Call) and isinstance(s.func, ast.Attribute)
            and s.func.attr in IPC_METHODS for s in body_exprs)
        resets = sorted({s.lineno for s in body_exprs
                         if isinstance(s, ast.Call)
                         and self._is_reset_call(s)})
        if resets:
            self.facts["resets"][qual] = resets
        if not has_ipc:
            return
        cfg = build_cfg(node)
        collector = self

        class _MustReset:
            def initial(self, _cfg):
                return False

            def join(self, a, b):
                return a and b

            def widen(self, old, new):
                return new

            def refine(self, edge, state):
                return state

            def transfer(self, cfg_node, state):
                roots = self._roots(cfg_node)
                if any(isinstance(s, ast.Call)
                       and collector._is_reset_call(s)
                       for r in roots for s in _expr_walk([r])):
                    # the reset may not have happened if the statement
                    # itself raised mid-way: exceptional keeps pre-state
                    return True, state
                return state, state

            @staticmethod
            def _roots(cfg_node):
                stmt = cfg_node.stmt
                if stmt is None or isinstance(stmt, _NO_DESCEND):
                    return []
                if cfg_node.kind == "loop":
                    return [stmt.iter, stmt.target]
                if cfg_node.kind == "with":
                    return [i.context_expr for i in stmt.items]
                if cfg_node.kind in ("dispatch", "handler",
                                     "with-cleanup"):
                    return []
                return [stmt]

        lattice = _MustReset()
        sol = solve(cfg, lattice)
        undominated: list[list] = []
        for cfg_node in cfg.nodes.values():
            roots = _MustReset._roots(cfg_node)
            if not roots:
                continue
            touches = self._ipc_calls(roots)
            if not touches:
                continue
            if sol.inputs.get(cfg_node.id) is not True:
                undominated.extend([line, api] for line, api in touches)
        if undominated:
            undominated.sort()
            self.facts["ipc_unguarded"][qual] = undominated


def collect_concurrency(sf: SourceFile, ex) -> dict:
    """All concurrency facts of one module (see module docstring)."""
    return _Collector(sf, ex).run()
