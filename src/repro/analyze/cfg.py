"""Per-function control-flow graphs for the path-sensitive passes.

:func:`build_cfg` lowers one function body (or a module's top-level
statements) into a statement-level CFG: every simple statement is one
node, compound statements contribute a header node (``if``/``while``
tests, ``for`` iterators, ``with`` enters, ``try`` dispatch) plus the
nodes of their bodies, and two synthetic sinks terminate the graph —
``exit`` (normal return / fall-through) and ``raise_exit`` (an
exception escapes the function).

The edges are what the abstract interpreter in
:mod:`repro.analyze.absint` walks:

``next``
    ordinary sequential flow (including loop back edges);
``true`` / ``false``
    the two outcomes of a branch test — they carry the test
    expression so a lattice can *refine* the state per branch
    (``if pool is not None: pool.close()``, budget guards);
``exc``
    an **exception edge**: the statement contains a call, ``raise``
    or ``assert`` and may abandon the normal path mid-way.  Exception
    edges propagate the *pre*-state of the statement (the lattice may
    override per effect — a ``close()`` whose own call raises is still
    treated as released);
``loop``
    ``for`` iterator to loop body (one more item) — the paired
    ``next`` edge out of the iterator is loop exhaustion.

Exception routing follows the language: statements inside ``try``
raise into the handler dispatch node, unmatched exceptions and
abnormal exits (``return`` / ``break`` / ``continue``) route *through*
``finally`` regions before leaving, and every ``with`` body owns a
synthetic ``with-cleanup`` node modelling ``__exit__`` running on both
the normal and the exceptional path.  One deliberate approximation is
documented here once: a ``finally`` region is built a single time and
re-merged, so states from different abnormal routes join inside it
(sound for the may-analyses built on top, cheaper than duplication).

Nested ``def``/``class``/``lambda`` bodies are *not* part of the
enclosing CFG — they execute at call time, not here — but the defining
statement itself is a node (its decorators and defaults do run).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CFG", "Edge", "Node", "build_cfg"]

#: Statement types whose sub-statements become their own CFG nodes;
#: the can-raise scan must not descend into them.
_COMPOUND = (ast.If, ast.While, ast.For, ast.AsyncFor, ast.Try,
             ast.With, ast.AsyncWith)
_NO_DESCEND = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
               ast.ClassDef)


@dataclass
class Node:
    """One program point: a statement, a test, or a synthetic marker."""

    id: int
    line: int
    kind: str                  # entry/exit/raise-exit/stmt/test/loop/
    #                            dispatch/with-cleanup/finally/join
    stmt: ast.AST | None = None
    label: str = ""


@dataclass(frozen=True)
class Edge:
    src: int
    dst: int
    kind: str                  # next/true/false/exc/loop/return/break/continue
    test: ast.expr | None = field(default=None, compare=False)


@dataclass(frozen=True)
class _Target:
    """An abnormal-flow destination plus the finally regions crossed."""

    node: int
    cross: tuple = ()          # innermost _Frame first


class _Frame:
    """One active ``finally`` (or ``with``-cleanup) region."""

    def __init__(self, entry: int) -> None:
        self.entry = entry
        self.conts: set[tuple[str, _Target]] = set()


@dataclass
class _Ctx:
    exc: _Target
    ret: _Target
    brk: _Target | None = None
    cont: _Target | None = None

    def through(self, frame: _Frame) -> "_Ctx":
        """The same continuations, now crossing ``frame`` first."""
        def wrap(t: _Target | None) -> _Target | None:
            if t is None:
                return None
            return _Target(t.node, (frame,) + t.cross)
        return _Ctx(exc=wrap(self.exc), ret=wrap(self.ret),
                    brk=wrap(self.brk), cont=wrap(self.cont))


def _can_raise(stmt: ast.stmt) -> bool:
    """Statement-local raise potential: calls, ``raise``, ``assert``."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    roots: list[ast.AST]
    if isinstance(stmt, ast.If):
        roots = [stmt.test]
    elif isinstance(stmt, ast.While):
        roots = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.iter, stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = [i.context_expr for i in stmt.items]
    elif isinstance(stmt, ast.Try):
        return False            # the body statements carry their own
    elif isinstance(stmt, _NO_DESCEND):
        roots = list(getattr(stmt, "decorator_list", []))
        args = getattr(stmt, "args", None)
        if args is not None:
            roots += list(args.defaults) + [d for d in args.kw_defaults
                                            if d is not None]
    else:
        roots = [stmt]
    stack: list[ast.AST] = list(roots)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Call, ast.Await)):
            return True
        if isinstance(node, _NO_DESCEND):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


class CFG:
    """Nodes + adjacency for one scope; built by :func:`build_cfg`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: dict[int, Node] = {}
        self.succs: dict[int, list[Edge]] = {}
        self.preds: dict[int, list[Edge]] = {}
        self.entry = self._new(0, "entry")
        self.exit = self._new(0, "exit")
        self.raise_exit = self._new(0, "raise-exit")

    def _new(self, line: int, kind: str, stmt: ast.AST | None = None,
             label: str = "") -> int:
        nid = len(self.nodes)
        self.nodes[nid] = Node(id=nid, line=line, kind=kind, stmt=stmt,
                               label=label)
        self.succs[nid] = []
        self.preds[nid] = []
        return nid

    def _edge(self, src: int, dst: int, kind: str = "next",
              test: ast.expr | None = None) -> None:
        e = Edge(src=src, dst=dst, kind=kind, test=test)
        if e in self.succs[src]:
            return
        self.succs[src].append(e)
        self.preds[dst].append(e)

    # -- queries used by passes and tests --------------------------------

    def edges(self):
        for edges in self.succs.values():
            yield from edges

    def exc_edges(self) -> list[Edge]:
        return [e for e in self.edges() if e.kind == "exc"]

    def stmt_nodes(self) -> list[Node]:
        return [n for n in self.nodes.values() if n.stmt is not None]

    def nodes_at_line(self, line: int) -> list[Node]:
        return [n for n in self.nodes.values() if n.line == line]


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg

    # A *frontier* is a list of (node, kind, test) dangling out-edges
    # awaiting their destination.

    def seal(self, frontier, dst: int) -> None:
        for src, kind, test in frontier:
            self.cfg._edge(src, dst, kind, test)

    def route(self, src: int, kind: str, target: _Target) -> None:
        """Connect an abnormal jump, crossing pending finally regions."""
        if target.cross:
            frame = target.cross[0]
            rest = _Target(target.node, target.cross[1:])
            self.cfg._edge(src, frame.entry, kind)
            frame.conts.add((kind, rest))
        else:
            self.cfg._edge(src, target.node, kind)

    def drain(self, frame: _Frame, exits: list[int]) -> None:
        """Wire a finally region's recorded continuations out of it."""
        for kind, rest in sorted(frame.conts,
                                 key=lambda c: (c[0], c[1].node)):
            for src in exits:
                self.route(src, kind, rest)

    # -- statement lowering ----------------------------------------------

    def body(self, stmts, frontier, ctx: _Ctx):
        for stmt in stmts:
            if not frontier:
                break           # unreachable code after return/raise
            frontier = self.stmt(stmt, frontier, ctx)
        return frontier

    def stmt(self, stmt: ast.stmt, frontier, ctx: _Ctx):
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier, ctx)
        if isinstance(stmt, ast.While):
            return self._while(stmt, frontier, ctx)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier, ctx)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier, ctx)

        node = self.cfg._new(stmt.lineno, "stmt", stmt)
        self.seal(frontier, node)
        if isinstance(stmt, ast.Return):
            if _can_raise(stmt):
                self.route(node, "exc", ctx.exc)
            self.route(node, "return", ctx.ret)
            return []
        if isinstance(stmt, ast.Raise):
            self.route(node, "exc", ctx.exc)
            return []
        if isinstance(stmt, ast.Break) and ctx.brk is not None:
            self.route(node, "break", ctx.brk)
            return []
        if isinstance(stmt, ast.Continue) and ctx.cont is not None:
            self.route(node, "continue", ctx.cont)
            return []
        if _can_raise(stmt):
            self.route(node, "exc", ctx.exc)
        return [(node, "next", None)]

    def _if(self, stmt: ast.If, frontier, ctx: _Ctx):
        test = self.cfg._new(stmt.lineno, "test", stmt.test)
        self.seal(frontier, test)
        if _can_raise(stmt):
            self.route(test, "exc", ctx.exc)
        out = self.body(stmt.body, [(test, "true", stmt.test)], ctx)
        if stmt.orelse:
            out += self.body(stmt.orelse, [(test, "false", stmt.test)], ctx)
        else:
            out += [(test, "false", stmt.test)]
        return out

    def _while(self, stmt: ast.While, frontier, ctx: _Ctx):
        test = self.cfg._new(stmt.lineno, "test", stmt.test)
        after = self.cfg._new(stmt.lineno, "join")
        self.seal(frontier, test)
        if _can_raise(stmt):
            self.route(test, "exc", ctx.exc)
        loop_ctx = _Ctx(exc=ctx.exc, ret=ctx.ret,
                        brk=_Target(after), cont=_Target(test))
        out = self.body(stmt.body, [(test, "true", stmt.test)], loop_ctx)
        self.seal(out, test)    # back edge
        tail = self.body(stmt.orelse, [(test, "false", stmt.test)], ctx)
        self.seal(tail, after)
        return [(after, "next", None)]

    def _for(self, stmt, frontier, ctx: _Ctx):
        head = self.cfg._new(stmt.lineno, "loop", stmt)
        after = self.cfg._new(stmt.lineno, "join")
        self.seal(frontier, head)
        if _can_raise(stmt):
            self.route(head, "exc", ctx.exc)
        loop_ctx = _Ctx(exc=ctx.exc, ret=ctx.ret,
                        brk=_Target(after), cont=_Target(head))
        out = self.body(stmt.body, [(head, "loop", None)], loop_ctx)
        self.seal(out, head)    # back edge: next iteration
        tail = self.body(stmt.orelse, [(head, "next", None)], ctx)
        self.seal(tail, after)
        return [(after, "next", None)]

    def _with(self, stmt, frontier, ctx: _Ctx):
        enter = self.cfg._new(stmt.lineno, "with", stmt)
        self.seal(frontier, enter)
        if _can_raise(stmt):
            # the context expression itself raising: __exit__ never runs
            self.route(enter, "exc", ctx.exc)
        cleanup = self.cfg._new(stmt.lineno, "with-cleanup", stmt)
        frame = _Frame(cleanup)
        out = self.body(stmt.body, [(enter, "next", None)],
                        ctx.through(frame))
        self.seal(out, cleanup)
        self.drain(frame, [cleanup])
        return [(cleanup, "next", None)]

    def _try(self, stmt: ast.Try, frontier, ctx: _Ctx):
        frame: _Frame | None = None
        inner = ctx
        if stmt.finalbody:
            fin = self.cfg._new(stmt.finalbody[0].lineno, "finally")
            frame = _Frame(fin)
            inner = ctx.through(frame)

        body_ctx = inner
        dispatch: int | None = None
        if stmt.handlers:
            dispatch = self.cfg._new(stmt.lineno, "dispatch", stmt)
            body_ctx = _Ctx(exc=_Target(dispatch), ret=inner.ret,
                            brk=inner.brk, cont=inner.cont)

        out = self.body(stmt.body, frontier, body_ctx)
        out = self.body(stmt.orelse, out, inner)

        if dispatch is not None:
            for handler in stmt.handlers:
                h_entry = self.cfg._new(handler.lineno, "handler", handler)
                self.cfg._edge(dispatch, h_entry, "exc")
                out += self.body(handler.body, [(h_entry, "next", None)],
                                 inner)
            # no handler matched: the exception keeps propagating
            self.route(dispatch, "exc", inner.exc)

        if frame is not None:
            self.seal(out, frame.entry)
            fin_out = self.body(stmt.finalbody,
                                [(frame.entry, "next", None)], ctx)
            # Seal the finally body into one join first so branch edges
            # inside it keep their true/false tests (and therefore
            # their refinements — `if pool is not None: pool.close()`),
            # then fan the recorded continuations out of the join.
            finexit = self.cfg._new(stmt.finalbody[0].lineno, "join")
            self.seal(fin_out, finexit)
            self.drain(frame, [finexit])
            return [(finexit, "next", None)]
        return out


def build_cfg(scope: ast.AST, name: str = "") -> CFG:
    """CFG of a function def's (or module's) statement list."""
    label = name or getattr(scope, "name", "<module>")
    cfg = CFG(label)
    b = _Builder(cfg)
    ctx = _Ctx(exc=_Target(cfg.raise_exit), ret=_Target(cfg.exit))
    out = b.body(list(scope.body), [(cfg.entry, "next", None)], ctx)
    b.seal(out, cfg.exit)
    return cfg
