"""Structural repo-wide rules, re-homed onto module summaries.

These are the PR-2 ``REPO_RULES`` (kernel-oracle, runner-signature,
error-hierarchy) rebuilt to read :class:`~repro.analyze.index
.ModuleSummary` facts instead of re-walking ASTs, so the incremental
engine can re-check them from cache.  ``kernel-oracle`` additionally
anchors on CSR-consuming kernels under ``hierarchy/`` and
``scheduling/`` (the PR-1 parity contract, now repo-wide).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from ..engine import Finding
from ..index import ModuleIndex, ModuleSummary

__all__ = ["error_hierarchy", "kernel_oracle", "runner_signature"]


# ---------------------------------------------------------------------------
# kernel-oracle (R3)
# ---------------------------------------------------------------------------

#: Historical oracle names that don't follow ``_reference_<kernel>``.
_ORACLE_ALIASES = {
    "normalize_edges": "_reference_normalize",
    "incidence_from_csr": "_reference_incidence",
    "contract_csr": "_reference_contract",
    "merge_parallel_csr": "_reference_merge_parallel",
    "lambda_counts": "_reference_lambdas",
    "pin_count_matrix": "_reference_pin_counts",
    "adjacency_csr": "_reference_adjacency",
    "degrees_from_pins": "_reference_degrees",
    "edge_ids_from_ptr": "_reference_edge_ids",
}

#: Extended anchors: packages whose CSR-consuming public functions must
#: also carry a ``_reference_*`` twin (the repo-wide parity contract).
_CSR_ANCHOR_PACKAGES = ("repro.hierarchy.", "repro.scheduling.")


def _top_level_functions(s: ModuleSummary) -> dict[str, dict]:
    return {name: info for name, info in s.functions.items()
            if "." not in name}


def _referenced_in_tests(index: ModuleIndex) -> set[str]:
    out: set[str] = set()
    for s in index.summaries:
        if s.in_tests:
            out.update(s.referenced_names)
    return out


def _check_kernel(s: ModuleSummary, name: str, info: dict,
                  oracles: set[str], referenced: set[str],
                  kind: str) -> Iterable[Finding]:
    twin = _ORACLE_ALIASES.get(name, f"_reference_{name}")
    if twin not in oracles:
        yield Finding(
            path=s.path, line=info["line"], rule="kernel-oracle",
            message=f"public {kind} '{name}' has no '{twin}' oracle "
                    "twin for property-based parity testing")
    if referenced and name not in referenced:
        yield Finding(
            path=s.path, line=info["line"], rule="kernel-oracle",
            message=f"public {kind} '{name}' is not exercised "
                    "anywhere under tests/")


def kernel_oracle(index: ModuleIndex) -> Iterable[Finding]:
    referenced = _referenced_in_tests(index)
    for s in index.summaries:
        if s.path.endswith("src/repro/core/kernels.py"):
            defs = _top_level_functions(s)
            oracles = {n for n in defs if n.startswith("_reference_")}
            for name, info in defs.items():
                if name.startswith("_"):
                    continue
                yield from _check_kernel(s, name, info, oracles,
                                         referenced, "kernel")
        elif (s.in_src
              and (s.module + ".").startswith(_CSR_ANCHOR_PACKAGES)):
            defs = _top_level_functions(s)
            oracles = {n for n in defs if n.startswith("_reference_")}
            for name, info in defs.items():
                if name.startswith("_") or not info.get("consumes_csr"):
                    continue
                yield from _check_kernel(s, name, info, oracles,
                                         referenced, "CSR kernel")


# ---------------------------------------------------------------------------
# runner-signature (R4)
# ---------------------------------------------------------------------------

#: Modules whose spec registrations bind runners the lab/serve
#: executors will actually invoke as ``fn(seed=..., **params)``.
_REGISTRATION_ANCHORS = (
    "src/repro/lab/experiments.py",
    "src/repro/serve/runner.py",
)


def _runner_module_path(root: Path, module: str) -> Path:
    if "." in module:
        return root / "src" / Path(*module.split(".")).with_suffix(".py")
    return root / "benchmarks" / f"{module}.py"


def _disk_defs(root: Path, module: str) -> dict[str, dict] | None:
    """Parse a runner module that is outside the analyzed set.

    The lab registry points at ``benchmarks/*.py`` by bare stem, and
    callers routinely analyze only ``src/`` — fall back to reading the
    runner file straight off disk, exactly like the v1 rule did.
    """
    path = _runner_module_path(root, module)
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except (OSError, SyntaxError):
        return None
    defs: dict[str, dict] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            a = node.args
            defs[node.name] = {
                "line": node.lineno,
                "posargs": [x.arg for x in
                            (list(getattr(a, "posonlyargs", []))
                             + list(a.args))],
                "kwonly": [x.arg for x in a.kwonlyargs],
            }
    return defs


def runner_signature(index: ModuleIndex) -> Iterable[Finding]:
    for s in index.summaries:
        if not s.path.endswith(_REGISTRATION_ANCHORS):
            continue
        root = Path(s.path).resolve().parents[3]
        cache: dict[str, dict | None] = {}

        def module_defs(module: str) -> dict[str, dict] | None:
            if module not in cache:
                target = index.module(module)
                if target is not None:
                    cache[module] = _top_level_functions(target)
                else:
                    cache[module] = _disk_defs(root, module)
            return cache[module]

        for reg in s.registrations:
            module, func = reg.get("module"), reg.get("func")
            check, lineno = reg.get("check"), reg.get("line", 1)
            if not isinstance(module, str) or not isinstance(func, str):
                continue
            defs = module_defs(module)
            if defs is None:
                yield Finding(
                    path=s.path, line=lineno, rule="runner-signature",
                    message=f"runner module '{module}' cannot be resolved "
                            "to a source file")
                continue
            info = defs.get(func)
            if info is None:
                yield Finding(
                    path=s.path, line=lineno, rule="runner-signature",
                    message=f"runner '{module}.{func}' is not defined")
            elif info["posargs"] or "seed" not in info["kwonly"]:
                yield Finding(
                    path=s.path, line=lineno, rule="runner-signature",
                    message=f"runner '{module}.{func}' must be declared "
                            "keyword-only with a 'seed' parameter: "
                            "def run(*, seed=..., **params)")
            if isinstance(check, str) and check not in defs:
                yield Finding(
                    path=s.path, line=lineno, rule="runner-signature",
                    message=f"check '{module}.{check}' is not defined")


# ---------------------------------------------------------------------------
# error-hierarchy (R6)
# ---------------------------------------------------------------------------

def error_hierarchy(index: ModuleIndex) -> Iterable[Finding]:
    errors = next((s for s in index.summaries
                   if s.path.endswith("src/repro/errors.py")), None)
    if errors is None:
        return
    allowed = {"ReproError"}
    changed = True
    while changed:  # transitive closure over the hierarchy in errors.py
        changed = False
        for name, info in errors.classes.items():
            if (name not in allowed
                    and any(b in allowed for b in info["bases"])):
                allowed.add(name)
                changed = True
    for s in index.summaries:
        parts = Path(s.path).parts
        if "src" not in parts or "repro" not in parts:
            continue
        for name, info in s.classes.items():
            leaf = name.rpartition(".")[2]
            if not leaf.endswith("Error") or leaf == "ReproError":
                continue
            bases = {b.rpartition(".")[2] for b in info["bases"]}
            if not bases & allowed:
                yield Finding(
                    path=s.path, line=info["line"], rule="error-hierarchy",
                    message=f"'{leaf}' must derive from "
                            "repro.errors.ReproError (directly or via an "
                            "existing subclass)")
