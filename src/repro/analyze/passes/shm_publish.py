"""shm-publish — no writes to shared memory after publishing it.

A ``SharedArrays`` / ``SharedCSR`` segment is single-writer only until
its *descriptor* (the name + layout another process needs to attach)
leaves the creating process, or until a ready flag is raised in the
segment itself.  After that point a peer may be mapping and reading the
buffers concurrently, so any further store from the creator is a
cross-process data race — the exact bug class the streaming-ingest
protocol (``serve/stream.py``) is designed around: *fill, then flip
``ready``, then never touch again*.

This pass is a typestate extension of the resource-safety ownership
lattice: per function (and module body) it tracks locally-created
segment handles through the CFG, marks the program points where a
handle becomes **published** —

* a ``.descriptor()`` call on the handle (the descriptor is presumed
  to be shipped to a peer; calls like ``_validate(shared)`` that merely
  pass the *handle* around inside the process do **not** publish), or
* a store through the handle's ``"ready"`` field
  (``shared["ready"][0] = 1`` — the flag store itself is the publish
  and is not flagged)

— and then flags every store through the handle (or through a view
aliased from it, ``w = shared["weights"]; w[...] = ...``) that is
reachable *after* a publish point.  Rebinding the name drops tracking;
handles received from helpers or attached from a descriptor are out of
scope (the attaching side is the reader, not the single writer).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..absint import solve
from ..cfg import CFG, build_cfg
from ..engine import Finding, SourceFile

__all__ = ["RULE", "analyze"]

RULE = "shm-publish"

#: last-two-components of a dotted creation call -> tracked handle.
_CREATE_TAILS = {
    "SharedArrays.create",
    "SharedArrays.create_empty",
    "SharedCSR.from_hypergraph",
    "SharedCSR.allocate",
}

_NO_DESCEND = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
               ast.ClassDef)


def _dotted(expr) -> str:
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return ".".join(reversed(parts))
    return ""


def _is_creation(value) -> bool:
    if not isinstance(value, ast.Call):
        return False
    dotted = _dotted(value.func)
    return ".".join(dotted.split(".")[-2:]) in _CREATE_TAILS


def _sub_root(expr) -> tuple[str, bool]:
    """Root Name of a subscript chain + whether a ``"ready"`` key occurs."""
    ready = False
    while isinstance(expr, ast.Subscript):
        sl = expr.slice
        if isinstance(sl, ast.Constant) and sl.value == "ready":
            ready = True
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id, ready
    return "", ready


@dataclass
class _Handle:
    index: int
    line: int
    name: str
    kind: str


@dataclass
class _Publish:
    index: int
    line: int
    handle: int
    how: str


def _scopes(tree: ast.Module):
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _scope_walk(roots):
    stack = list(roots)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _NO_DESCEND):
            stack.extend(getattr(node, "decorator_list", []))
            continue
        stack.extend(ast.iter_child_nodes(node))


def _effect_roots(node) -> list[ast.AST]:
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind == "loop":
        return [stmt.iter, stmt.target]
    if node.kind == "with":
        return [item.context_expr for item in stmt.items]
    if node.kind in ("dispatch", "handler", "with-cleanup"):
        return []
    if isinstance(stmt, _NO_DESCEND):
        return list(getattr(stmt, "decorator_list", []))
    return [stmt]


class _Facts:
    """Per-node publish/rebind ops and write sites, precomputed."""

    def __init__(self, cfg: CFG, scope) -> None:
        self.handles: list[_Handle] = []
        self.publishes: list[_Publish] = []
        #: node id -> [( "publish", pub_index ) | ( "rebind", name )]
        self.ops: dict[int, list[tuple[str, object]]] = {}
        #: node id -> [(line, handle_name, what)]
        self.writes: dict[int, list[tuple[int, str, str]]] = {}

        by_name: dict[str, int] = {}
        aliases: dict[str, str] = {}     # view name -> handle name

        # pass 1 (lexical): discover tracked handles, then view
        # aliases, so pass 2 can classify stores anywhere in the
        # scope.  Two sweeps because the walk order is not source
        # order: the alias sweep needs the full handle table.
        binds = [sub for sub in _scope_walk(scope.body)
                 if isinstance(sub, ast.Assign)
                 and len(sub.targets) == 1
                 and isinstance(sub.targets[0], ast.Name)]
        binds.sort(key=lambda a: (a.lineno, a.col_offset))
        for sub in binds:
            if _is_creation(sub.value):
                name = sub.targets[0].id
                h = _Handle(index=len(self.handles), line=sub.lineno,
                            name=name,
                            kind=_dotted(sub.value.func).split(".")[-2])
                self.handles.append(h)
                by_name[name] = h.index
        for sub in binds:
            if isinstance(sub.value, ast.Subscript):
                root, _ = _sub_root(sub.value)
                if root in by_name:
                    aliases[sub.targets[0].id] = root

        self.by_name = by_name
        if not self.handles:
            return

        # pass 2: per-CFG-node effects.
        for node in sorted(cfg.nodes.values(), key=lambda n: n.id):
            roots = _effect_roots(node)
            if not roots:
                continue
            ops: list[tuple[str, object]] = []
            writes: list[tuple[int, str, str]] = []
            for sub in _scope_walk(roots):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "descriptor"
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id in by_name):
                    pub = _Publish(index=len(self.publishes),
                                   line=sub.lineno,
                                   handle=by_name[sub.func.value.id],
                                   how="descriptor() call")
                    self.publishes.append(pub)
                    ops.append(("publish", pub.index))
                elif isinstance(sub, (ast.Assign, ast.AugAssign)):
                    targets = (sub.targets
                               if isinstance(sub, ast.Assign)
                               else [sub.target])
                    for t in targets:
                        if isinstance(t, ast.Name):
                            if t.id in by_name:
                                ops.append(("rebind", t.id))
                            continue
                        if not isinstance(t, ast.Subscript):
                            continue
                        root, ready = _sub_root(t)
                        owner = (root if root in by_name
                                 else aliases.get(root, ""))
                        if not owner:
                            continue
                        if ready and root == owner:
                            pub = _Publish(index=len(self.publishes),
                                           line=sub.lineno,
                                           handle=by_name[owner],
                                           how="ready-flag store")
                            self.publishes.append(pub)
                            ops.append(("publish", pub.index))
                        else:
                            what = (f"store through view '{root}'"
                                    if root != owner else "store")
                            writes.append((sub.lineno, owner, what))
            if ops:
                self.ops[node.id] = ops
            if writes:
                self.writes[node.id] = writes


class _PublishLattice:
    """State: frozenset of publish-site indices already executed."""

    def __init__(self, facts: _Facts) -> None:
        self.facts = facts

    def initial(self, cfg: CFG) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def widen(self, old: frozenset, new: frozenset) -> frozenset:
        return new

    def transfer(self, node, state: frozenset):
        ops = self.facts.ops.get(node.id)
        if not ops:
            return state, state
        out = state
        for op, arg in ops:
            if op == "rebind":
                keep = {p.index for p in self.facts.publishes
                        if self.facts.handles[p.handle].name != arg}
                out = out & frozenset(keep)
            elif op == "publish":
                out = out | {arg}
        # a publish is committed even if the same statement raises:
        # the descriptor may already have escaped.
        return out, out

    def refine(self, edge, state: frozenset) -> frozenset:
        return state


def analyze(sf: SourceFile, ex) -> list[Finding]:
    """All shm-publish findings of one module (src-only scope)."""
    if not sf.in_src:
        return []
    findings: list[Finding] = []
    for scope in _scopes(sf.tree):
        cfg = build_cfg(scope)
        facts = _Facts(cfg, scope)
        if not facts.handles or not facts.publishes:
            continue
        sol = solve(cfg, _PublishLattice(facts))
        for node_id, writes in sorted(facts.writes.items()):
            live = sol.inputs.get(node_id, frozenset())
            if not live:
                continue
            for line, owner, what in writes:
                pubs = [p for p in facts.publishes
                        if p.index in live
                        and facts.handles[p.handle].name == owner]
                if not pubs:
                    continue
                pub = min(pubs, key=lambda p: p.index)
                handle = facts.handles[facts.by_name[owner]]
                findings.append(Finding(
                    path=sf.posix, line=line, rule=RULE,
                    message=f"shared segment '{owner}' is written "
                            f"after being published at line {pub.line} "
                            f"({pub.how}): a peer process may already "
                            "be attached, so this store is a "
                            "cross-process race (witness: "
                            f"create@{handle.line} -> "
                            f"publish@{pub.line} -> write@{line}); "
                            "finish all stores before publishing",
                    flow=(
                        (sf.posix, handle.line,
                         f"segment '{owner}' created here "
                         f"({handle.kind})"),
                        (sf.posix, pub.line,
                         f"published here ({pub.how}) — peers may "
                         "attach from this point on"),
                        (sf.posix, line,
                         f"{what} after publish — cross-process "
                         "race"),
                    )))
    findings.sort(key=lambda f: (f.line, f.message))
    return findings
