"""fork-hygiene — fork workers reset signal state and inherit nothing live.

The worst chaos-run bug of the mesh era: a forked sub-round worker
inherited the parent's signal handlers, and the first stray ``SIGCHLD``
wrote into the *parent's* wakeup fd through the still-open inherited
descriptor — poisoning the parent event loop from a child process.
The fix is mechanical (``lab.executor.reset_inherited_signals`` first
thing in every worker entrypoint) but was applied ad hoc; this pass
generalises it:

1. **reset-before-IPC** — every ``Process(target=...)`` entrypoint in
   the call graph must call ``reset_inherited_signals`` *before* any
   pipe/queue touch, on every path.  The extractor already solved the
   per-function must-dominate analysis over the CFG
   (:mod:`repro.analyze.concurrency`, ``ipc_unguarded``); here those
   latent facts are consulted only for functions that actually are
   fork entrypoints, so a module may contain ordinary helpers using
   pipes freely.
2. **no live inheritance** — a ``Process(...)`` call whose arguments
   carry a known lock or executor hands the child a copy of live
   synchronisation state: a ``threading.Lock`` held at fork time stays
   locked *forever* in the child, and an executor's worker threads
   simply do not exist there.  Loops and module-global mutation are
   ``fork-safety``'s business already and are not re-flagged here.

Both checks consume extract-time facts only, so they replay byte-
identically from the incremental cache.
"""

from __future__ import annotations

from typing import Iterable

from ..callgraph import CallGraph
from ..engine import Finding
from ..index import ModuleIndex

__all__ = ["RULE", "run"]

RULE = "fork-hygiene"


def run(index: ModuleIndex, graph: CallGraph) -> Iterable[Finding]:
    # -- 1: worker entrypoints must reset signals before IPC ------------
    for node, label in sorted(graph.worker_entrypoints()):
        owner = graph.owner.get(node)
        if owner is None or not owner.in_src or not owner.concurrency:
            continue
        qual = node.partition(":")[2]
        touches = owner.concurrency.get("ipc_unguarded", {}).get(qual)
        if not touches:
            continue
        resets = owner.concurrency.get("resets", {}).get(qual, [])
        meta = owner.functions.get(qual)
        def_line = int(meta["line"]) if meta else 1
        if resets:
            why = (f"on some path before the reset at line "
                   f"{int(resets[0])}")
        else:
            why = "and never calls reset_inherited_signals at all"
        for line, api in touches:
            yield Finding(
                path=owner.path, line=int(line), rule=RULE,
                message=f"fork worker entrypoint '{label}' touches "
                        f"IPC ('{api}') {why}: inherited signal "
                        "handlers can fire during the touch and write "
                        "into the parent's wakeup fd; call "
                        "lab.executor.reset_inherited_signals first "
                        "on every path",
                flow=(
                    (owner.path, def_line,
                     f"fork worker entrypoint '{label}' starts here"),
                    (owner.path, int(line),
                     f"IPC touch '{api}' with inherited signal state"),
                ))

    # -- 2: Process(...) arguments must not carry live locks/executors --
    for s in index.summaries:
        if not s.in_src or not s.concurrency:
            continue
        lock_keys = {key for _, key, _ in s.concurrency.get("locks", ())}
        exec_keys = {key for _, key in s.concurrency.get("executors", ())}
        for qual, line, target, argroots in s.concurrency.get(
                "spawns", ()):
            cls = qual.partition(".")[0] if "." in qual else ""
            for root in argroots:
                if root.startswith("self."):
                    key = f"{cls}.{root.split('.')[1]}" if cls else ""
                else:
                    key = root.split(".")[0]
                if key in lock_keys:
                    kind = "lock"
                elif key in exec_keys:
                    kind = "executor"
                else:
                    continue
                yield Finding(
                    path=s.path, line=int(line), rule=RULE,
                    message=f"Process(...) in {qual} passes live "
                            f"{kind} '{s.module}.{key}' (as '{root}') "
                            "across the fork boundary: the child "
                            f"inherits a copy of the {kind}'s state "
                            "(a lock held at fork time never unlocks; "
                            "an executor's threads do not exist in "
                            "the child); pass plain data instead",
                    flow=(
                        (s.path, int(line),
                         f"'{root}' crosses the fork boundary here"),
                    ))
