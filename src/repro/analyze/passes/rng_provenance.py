"""RNG-provenance pass: Generators flow by argument from the seed.

Replayability (DESIGN.md §1) requires that every random draw inside a
registered runner's call tree comes from an ``np.random.Generator``
*born from the runner's seed parameter and threaded through function
arguments*.  Two ways to break that contract survive the file-local
``seed-discipline`` rule (which only bans ``np.random.*`` module-level
draws):

* drawing from a **module-global Generator** (``_RNG =
  default_rng(...)`` at import time) — the global's state is shared
  and order-dependent across runners, so results depend on what ran
  before;
* drawing from an **unseeded Generator** (``default_rng()`` with no
  arguments) — fresh OS entropy on every call.

The extractor types RNG values per function: parameters named
``rng``/``gen``/``generator``/``random_state`` (or annotated
``Generator``), locals assigned from ``default_rng(...)`` (classified
by whether a parameter feeds the constructor), and module-level
Generator bindings.  This pass walks the call graph from every
registered runner (timing benches included — a hidden global draw is
never acceptable) and flags draws whose provenance is ``global``,
``global-arg`` (a module-global Generator passed as an argument), or
``unseeded``.
"""

from __future__ import annotations

from typing import Iterable

from ..callgraph import CallGraph
from ..dataflow import Reachability
from ..engine import Finding
from ..index import ModuleIndex

__all__ = ["run"]

_BAD_KINDS = {
    "global": ("draw on module-global Generator '{name}'",
               "thread a Generator born from the seed parameter through "
               "function arguments instead of sharing import-time state"),
    "global-arg": ("module-global Generator '{name}' passed as an "
                   "argument",
                   "construct the Generator from the seed parameter at "
                   "the entrypoint and pass it down"),
    "unseeded": ("draw on Generator '{name}' built by default_rng() "
                 "without a seed",
                 "derive it from the runner's seed parameter so results "
                 "are replayable"),
}


def run(index: ModuleIndex, graph: CallGraph) -> Iterable[Finding]:
    roots = {node: f"runner '{name}'"
             for node, name, _tags in graph.runner_entrypoints()}
    if not roots:
        return
    reach = Reachability(graph.edges, roots)
    seen: set[tuple] = set()
    for node in reach:
        owner = graph.owner[node]
        qual = node.partition(":")[2]
        for line, kind, name in owner.rng_draws.get(qual, ()):
            if kind not in _BAD_KINDS:
                continue
            key = (owner.path, int(line), kind, name)
            if key in seen:
                continue
            seen.add(key)
            what, fix = _BAD_KINDS[kind]
            yield Finding(
                path=owner.path, line=int(line), rule="rng-provenance",
                message=f"{what.format(name=name)} is reachable from "
                        f"{reach.label(node)}; {fix} (chain: "
                        f"{reach.chain_text(node)})")
