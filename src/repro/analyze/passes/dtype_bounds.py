"""dtype-bounds — int32 casts and accumulations proven overflow-free.

The ROADMAP's scale target is 10^6–10^7 pins, and the kernels keep
dense buffers in ``int32`` to halve their footprint — correct only
while every value written into one stays below 2**31 - 1.  This pass
turns that hope into a proof obligation: a function opts in with a
bounds annotation ::

    # repro: bounds(k <= 4096, len(codes) <= 1e7)

and the pass runs an abstract interpretation of its numpy expressions
over the function's CFG in a *(elem, size)* magnitude domain — ``elem``
bounds the largest absolute value an expression can hold, ``size``
bounds its length.  Terms: ``name <= N`` bounds ``elem`` (seeding the
parameter's initial state, or re-applied at every assignment to a
local), ``len(name) <= N`` bounds ``size``.  Transfer functions cover
the kernel vocabulary (``bincount`` output is bounded by its input's
*length*; ``cumsum`` by ``elem * size``; arithmetic composes bounds;
unknown calls go to unbounded, repairable by an annotation term on the
result name), branches refine (``if n > c: raise`` proves ``n <= c``
afterwards), and loops widen — a bound still growing after a few
iterations jumps to unbounded instead of counting up forever.

After the fixpoint, two checks run at each program point:

* every ``.astype(np.int32)`` / ``np.int32(...)`` cast site must have
  the castee's ``elem`` bound ≤ 2147483647;
* every ``+=``/``-=``/``*=`` into an int32-allocated array must keep
  the result bounded — loop accumulation that widens to unbounded is
  exactly the silent-wraparound bug this catches.

Unannotated functions are skipped (the annotation is the declared
scale contract; without one there is nothing to prove against), and a
malformed or unattached annotation is itself a finding.
"""

from __future__ import annotations

import ast
import math
import re
import tokenize
from dataclasses import dataclass, field

from ..absint import solve
from ..cfg import CFG, build_cfg
from ..engine import Finding, SourceFile

__all__ = ["RULE", "INT32_MAX", "analyze"]

RULE = "dtype-bounds"
INT32_MAX = 2147483647

_ANN_RE = re.compile(r"#\s*repro:\s*bounds\((?P<terms>.*)\)")
_TERM_RE = re.compile(
    r"^\s*(?:len\(\s*(?P<lenname>\w+)\s*\)|(?P<name>\w+))"
    r"\s*<=\s*(?P<bound>[0-9][0-9_.eE+]*)\s*$")

_INF = math.inf

_NO_DESCEND = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
               ast.ClassDef)


def _fmt(bound: float) -> str:
    return "unbounded" if bound == _INF else f"{bound:.10g}"


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@dataclass
class _Annotation:
    line: int
    raw: str
    elems: dict = field(default_factory=dict)   # name -> elem bound
    sizes: dict = field(default_factory=dict)   # name -> size bound

    def merge(self, other: "_Annotation") -> None:
        for name, b in other.elems.items():
            self.elems[name] = min(self.elems.get(name, _INF), b)
        for name, b in other.sizes.items():
            self.sizes[name] = min(self.sizes.get(name, _INF), b)

    def meet(self, name: str, val: tuple) -> tuple:
        return (min(val[0], self.elems.get(name, _INF)),
                min(val[1], self.sizes.get(name, _INF)))


def _parse_annotations(sf: SourceFile) -> tuple[list, list]:
    """(annotations, malformed-findings) from comment tokens."""
    anns: list[_Annotation] = []
    bad: list[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(
            iter(sf.text.splitlines(keepends=True)).__next__))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return [], []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _ANN_RE.search(tok.string)
        if m is None:
            continue
        line = tok.start[0]
        raw = m.group("terms").strip()
        ann = _Annotation(line=line, raw=raw)
        ok = bool(raw)
        for term in raw.split(","):
            tm = _TERM_RE.match(term)
            if tm is None:
                ok = False
                break
            bound = float(tm.group("bound").replace("_", ""))
            if tm.group("lenname"):
                ann.sizes[tm.group("lenname")] = bound
            else:
                ann.elems[tm.group("name")] = bound
        if ok:
            anns.append(ann)
        else:
            bad.append(Finding(
                path=sf.posix, line=line, rule=RULE,
                message=f"malformed bounds annotation '({raw})': terms "
                        "must be 'name <= NUMBER' or 'len(name) <= "
                        "NUMBER', comma-separated"))
    return anns, bad


def _walk_headers(roots):
    """Walk expression trees without entering nested def/class bodies."""
    stack = list(roots)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _NO_DESCEND):
            stack.extend(getattr(node, "decorator_list", []))
            continue
        stack.extend(ast.iter_child_nodes(node))


def _roots(node) -> list[ast.AST]:
    """AST material executed *at* this CFG node (headers only)."""
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind == "loop":
        return [stmt.iter]
    if node.kind == "with":
        return [item.context_expr for item in stmt.items]
    if node.kind in ("dispatch", "handler", "with-cleanup"):
        return []
    if isinstance(stmt, _NO_DESCEND):
        return list(getattr(stmt, "decorator_list", []))
    return [stmt]


def _is_int32(expr: ast.AST) -> bool:
    if isinstance(expr, ast.Constant):
        return expr.value == "int32"
    return _dotted(expr).split(".")[-1:] == ["int32"]


def _int32_arrays(fn) -> set[str]:
    """Names allocated as int32 arrays inside ``fn`` (syntactic)."""
    names: set[str] = set()
    for node in _walk_headers(fn.body):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            continue
        call = node.value
        tail = _dotted(call.func).split(".")[-1]
        if tail in ("zeros", "empty", "full", "ones"):
            if any(kw.arg == "dtype" and _is_int32(kw.value)
                   for kw in call.keywords):
                names.add(node.targets[0].id)
        elif (isinstance(call.func, ast.Attribute)
                and call.func.attr == "astype"
                and any(_is_int32(a) for a in call.args)):
            names.add(node.targets[0].id)
        elif tail == "int32":
            names.add(node.targets[0].id)
    return names


# ---------------------------------------------------------------------------
# Abstract evaluation: expr -> (elem bound, size bound)
# ---------------------------------------------------------------------------

_PASS_THROUGH = {"reshape", "astype", "sort", "unique", "copy", "ravel",
                 "flatten", "ascontiguousarray", "asarray", "abs"}
_FILL = {"zeros": 0.0, "ones": 1.0, "empty": _INF}


def _size_of_shape(shape: ast.AST) -> float:
    if isinstance(shape, ast.Constant) and isinstance(shape.value,
                                                      (int, float)):
        return float(shape.value)
    if isinstance(shape, ast.Tuple):
        total = 1.0
        for elt in shape.elts:
            d = _size_of_shape(elt)
            if d == _INF:
                return _INF
            total *= d
        return total
    return _INF


def _eval(expr, state: dict, ann: _Annotation) -> tuple:
    top = (_INF, _INF)
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, bool) or not isinstance(
                expr.value, (int, float)):
            return (_INF, 1.0)
        return (abs(float(expr.value)), 1.0)
    if isinstance(expr, ast.Name):
        return ann.meet(expr.id, state.get(expr.id, top))
    if isinstance(expr, ast.UnaryOp):
        return _eval(expr.operand, state, ann)
    if isinstance(expr, ast.BinOp):
        return _eval_binop(expr.op, _eval(expr.left, state, ann),
                           _eval(expr.right, state, ann))
    if isinstance(expr, ast.IfExp):
        a = _eval(expr.body, state, ann)
        b = _eval(expr.orelse, state, ann)
        return (max(a[0], b[0]), max(a[1], b[1]))
    if isinstance(expr, (ast.Tuple, ast.List)):
        vals = [_eval(e, state, ann) for e in expr.elts]
        return (max((v[0] for v in vals), default=0.0),
                float(len(expr.elts)))
    if isinstance(expr, ast.Subscript):
        return _eval_subscript(expr, state, ann)
    if isinstance(expr, ast.Attribute):
        if expr.attr == "size":
            return (_eval(expr.value, state, ann)[1], 1.0)
        if expr.attr == "itemsize":
            return (8.0, 1.0)
        return top
    if isinstance(expr, ast.Call):
        return _eval_call(expr, state, ann)
    return top


def _eval_binop(op, a: tuple, b: tuple) -> tuple:
    size = max(a[1], b[1])                       # broadcast
    if isinstance(op, (ast.Add, ast.Sub)):
        return (a[0] + b[0], size)
    if isinstance(op, ast.Mult):
        if 0.0 in (a[0], b[0]):
            return (0.0, size)
        return (a[0] * b[0], size)
    if isinstance(op, (ast.Div, ast.FloorDiv)):
        return (a[0], size)
    if isinstance(op, ast.Mod):
        return (min(a[0], b[0]), size)
    if isinstance(op, ast.Pow):
        if a[0] == _INF or b[0] == _INF or b[0] > 64:
            return (_INF, size)
        return (a[0] ** b[0], size)
    return (_INF, size)


def _eval_subscript(expr: ast.Subscript, state, ann) -> tuple:
    base = _eval(expr.value, state, ann)
    idx = expr.slice
    # x.shape[i] is a dimension of x: bounded by x's total size.
    if (isinstance(expr.value, ast.Attribute)
            and expr.value.attr == "shape"):
        return (_eval(expr.value.value, state, ann)[1], 1.0)
    if isinstance(idx, ast.Slice):
        return base                              # x[1:] keeps bounds
    if isinstance(idx, ast.Constant):
        return (base[0], 1.0)                    # scalar element
    return (base[0], _eval(idx, state, ann)[1])  # fancy: labels[pins]


def _eval_call(call: ast.Call, state, ann) -> tuple:
    top = (_INF, _INF)
    dotted = _dotted(call.func)
    # ``_dotted`` can't name a chain rooted at a call expression
    # (np.bincount(...).reshape); the method name is still the attr.
    tail = (call.func.attr if isinstance(call.func, ast.Attribute)
            else dotted.split(".")[-1])
    recv = None
    if isinstance(call.func, ast.Attribute):
        head = call.func.value
        if isinstance(head, ast.Name):
            # A bare name not in the state is a module alias (np.sort);
            # a tracked name is a value receiver (codes.cumsum).
            if head.id in state:
                recv = _eval(head, state, ann)
        else:
            # chained expression receiver: np.bincount(...).reshape(...)
            recv = _eval(head, state, ann)
    args = [_eval(a, state, ann) for a in call.args]
    first = args[0] if args else (recv or top)

    if tail == "len" and dotted == "len" and args:
        return (first[1], 1.0)
    if tail == "bincount":
        # counts are bounded by how many items were counted (the
        # input's *length*); output length by max value + 1 / minlength.
        minlength = 0.0
        for kw in call.keywords:
            if kw.arg == "minlength":
                minlength = _eval(kw.value, state, ann)[0]
        return (first[1], max(minlength, first[0] + 1.0))
    if tail in _PASS_THROUGH:
        src = recv if recv is not None else (args[0] if args else top)
        return src
    if tail == "arange" and args:
        return (first[0], first[0])
    if tail == "cumsum":
        src = recv if recv is not None else first
        return (src[0] * src[1] if src[0] != 0.0 else 0.0, src[1])
    if tail == "sum":
        src = recv if recv is not None else first
        return (src[0] * src[1] if src[0] != 0.0 else 0.0, 1.0)
    if tail in ("max", "min"):
        src = recv if recv is not None else first
        return (src[0], 1.0)
    if tail == "diff":
        src = recv if recv is not None else first
        return (src[0], src[1])
    if tail in _FILL or tail == "full":
        size = _size_of_shape(call.args[0]) if call.args else _INF
        if tail == "full":
            elem = args[1][0] if len(args) > 1 else _INF
        else:
            elem = _FILL[tail]
        return (elem, size)
    return top


# ---------------------------------------------------------------------------
# Lattice over variable environments
# ---------------------------------------------------------------------------

class _BoundsLattice:
    def __init__(self, fn, ann: _Annotation) -> None:
        self.fn = fn
        self.ann = ann

    def initial(self, cfg: CFG) -> dict:
        state = {}
        a = self.fn.args
        for arg in (list(getattr(a, "posonlyargs", [])) + list(a.args)
                    + list(a.kwonlyargs)):
            state[arg.arg] = self.ann.meet(arg.arg, (_INF, _INF))
        return state

    def join(self, a: dict, b: dict) -> dict:
        out = dict(a)
        for name, val in b.items():
            cur = out.get(name)
            out[name] = (val if cur is None
                         else (max(cur[0], val[0]), max(cur[1], val[1])))
        return out

    def widen(self, old: dict, new: dict) -> dict:
        out = {}
        for name, val in new.items():
            cur = old.get(name)
            if cur is None:
                out[name] = val
            else:
                out[name] = (val[0] if val[0] <= cur[0] else _INF,
                             val[1] if val[1] <= cur[1] else _INF)
        return out

    def transfer(self, node, state: dict):
        stmt = node.stmt
        new = state
        if node.kind == "loop" and isinstance(stmt.target, ast.Name):
            src = _eval(stmt.iter, state, self.ann)
            new = dict(state)
            new[stmt.target.id] = self.ann.meet(stmt.target.id,
                                                (src[0], 1.0))
        elif isinstance(stmt, ast.Assign):
            if (len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                name = stmt.targets[0].id
                new = dict(state)
                new[name] = self.ann.meet(
                    name, _eval(stmt.value, state, self.ann))
            else:
                new = dict(state)
                for t in stmt.targets:
                    for n in ast.walk(t):
                        if isinstance(n, ast.Name):
                            new[n.id] = self.ann.meet(n.id, (_INF, _INF))
        elif (isinstance(stmt, ast.AnnAssign) and stmt.value is not None
                and isinstance(stmt.target, ast.Name)):
            new = dict(state)
            new[stmt.target.id] = self.ann.meet(
                stmt.target.id, _eval(stmt.value, state, self.ann))
        elif (isinstance(stmt, ast.AugAssign)
                and isinstance(stmt.target, ast.Name)):
            name = stmt.target.id
            cur = self.ann.meet(name, state.get(name, (_INF, _INF)))
            new = dict(state)
            new[name] = self.ann.meet(name, _eval_binop(
                stmt.op, cur, _eval(stmt.value, state, self.ann)))
        return new, state

    def refine(self, edge, state: dict) -> dict:
        """``if n > c: raise`` proves ``n <= c`` on the false edge."""
        test = edge.test
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.left, ast.Name)
                and isinstance(test.comparators[0], ast.Constant)
                and isinstance(test.comparators[0].value, (int, float))
                and not isinstance(test.comparators[0].value, bool)):
            return state
        op = test.ops[0]
        bound = abs(float(test.comparators[0].value))
        upper_on = ("false" if isinstance(op, (ast.Gt, ast.GtE))
                    else "true" if isinstance(op, (ast.Lt, ast.LtE))
                    else None)
        if upper_on != edge.kind:
            return state
        name = test.left.id
        cur = state.get(name, (_INF, _INF))
        if cur[0] <= bound:
            return state
        new = dict(state)
        new[name] = (bound, cur[1])
        return new


# ---------------------------------------------------------------------------
# Post-fixpoint checks
# ---------------------------------------------------------------------------

def _cast_sites(node):
    """(line, expr-being-cast) for each int32 cast at this CFG node."""
    for sub in _walk_headers(_roots(node)):
        if not isinstance(sub, ast.Call):
            continue
        if (isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "astype"
                and any(_is_int32(a) for a in sub.args)):
            yield sub.lineno, sub.func.value
        elif _dotted(sub.func).split(".")[-1] == "int32" and sub.args:
            if _dotted(sub.func) != "int32":     # np.int32(x), not a var
                yield sub.lineno, sub.args[0]


def _check_function(sf: SourceFile, fn, ann: _Annotation) -> list:
    cfg = build_cfg(fn)
    sol = solve(cfg, _BoundsLattice(fn, ann))
    int32_names = _int32_arrays(fn)
    findings: list[Finding] = []

    def emit(line: int, what: str, bound: float) -> None:
        findings.append(Finding(
            path=sf.posix, line=line, rule=RULE,
            message=f"{what} may overflow: value bound {_fmt(bound)} "
                    f"exceeds {INT32_MAX} (int32 max) under declared "
                    f"bounds ({ann.raw}); widen the dtype, tighten the "
                    "bounds, or gate the input",
            flow=((sf.posix, ann.line, f"declared bounds: {ann.raw}"),
                  (sf.posix, line,
                   f"value bound here is {_fmt(bound)}"))))

    for nid in sorted(cfg.nodes):
        state = sol.inputs.get(nid)
        if state is None:
            continue                             # unreachable
        node = cfg.nodes[nid]
        for line, castee in _cast_sites(node):
            bound = _eval(castee, state, ann)[0]
            if bound > INT32_MAX:
                emit(line, "int32 cast", bound)
        stmt = node.stmt
        if (isinstance(stmt, ast.AugAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id in int32_names
                and isinstance(stmt.op, (ast.Add, ast.Sub, ast.Mult))):
            name = stmt.target.id
            cur = ann.meet(name, state.get(name, (_INF, _INF)))
            bound = _eval_binop(stmt.op, cur,
                                _eval(stmt.value, state, ann))[0]
            if bound > INT32_MAX:
                emit(stmt.lineno,
                     f"int32 accumulation into '{name}'", bound)
    return findings


def analyze(sf: SourceFile, ex) -> list[Finding]:
    """All dtype-bounds findings of one module (annotated fns only)."""
    anns, findings = _parse_annotations(sf)
    if not anns:
        return findings
    functions = [n for n in ast.walk(sf.tree)
                 if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
    per_fn: dict[int, tuple] = {}
    for ann in anns:
        best = None
        for fn in functions:
            if fn.lineno - 2 <= ann.line <= fn.end_lineno:
                span = fn.end_lineno - fn.lineno
                if best is None or span < best[1]:
                    best = (fn, span)
        if best is None:
            findings.append(Finding(
                path=sf.posix, line=ann.line, rule=RULE,
                message=f"bounds annotation '({ann.raw})' is not "
                        "attached to any function; place it inside the "
                        "function it constrains (or just above the "
                        "def)"))
            continue
        fn = best[0]
        if id(fn) in per_fn:
            per_fn[id(fn)][1].merge(ann)
        else:
            per_fn[id(fn)] = (fn, ann)
    for fn, ann in sorted(per_fn.values(), key=lambda t: t[0].lineno):
        findings.extend(_check_function(sf, fn, ann))
    findings.sort(key=lambda f: (f.line, f.message))
    return findings
