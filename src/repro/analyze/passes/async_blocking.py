"""async-blocking — coroutines must not reach blocking calls.

The serve subsystem runs a single asyncio event loop; the sim engine
exposes async entrypoints of its own.  One synchronous blocking call
anywhere in the transitive call tree of a coroutine — ``time.sleep``,
a ``subprocess`` wait, sync file I/O, a blocking ``queue.Queue``
operation, or an inline CPU-heavy kernel — stalls *every* in-flight
request, which is precisely the failure mode the serve deadline
machinery cannot see (the loop itself is wedged).

Roots are all ``async def`` functions in ``src`` modules under
``serve``/``sim`` path components.  The pass composes with the
project call graph (:class:`~repro.analyze.callgraph.CallGraph`):
reachability is interprocedural, so a *sync* helper three calls deep
still gets flagged — at the blocking call site, with the coroutine
and witness chain in the message and an interprocedural ``flow`` for
SARIF.

``asyncio.to_thread(fn, ...)`` and ``loop.run_in_executor(None, fn)``
offloads are exempt by construction: ``fn`` is passed as an argument,
not called, so no call edge exists — exactly the remediation the
finding suggests.
"""

from __future__ import annotations

from typing import Iterable

from ..callgraph import CallGraph, pretty_node
from ..dataflow import Reachability
from ..engine import Finding
from ..index import ModuleIndex

__all__ = ["RULE", "classify_blocking", "run"]

RULE = "async-blocking"

_EXACT = {
    "time.sleep": "sleep",
    "builtins.open": "synchronous file I/O",
    "queue.Queue.get": "blocking queue get",
    "queue.Queue.put": "blocking queue put",
}

_SUBPROCESS_PREFIX = "subprocess."
_KERNEL_PREFIX = "repro.core.kernels."


def classify_blocking(resolved: str) -> str | None:
    """Blocking category of a resolved call target, or None."""
    if resolved in _EXACT:
        return _EXACT[resolved]
    if resolved.startswith(_SUBPROCESS_PREFIX):
        return "subprocess"
    if resolved.startswith(_KERNEL_PREFIX):
        return "CPU-heavy kernel"
    return None


def _coroutine_roots(index: ModuleIndex) -> dict[str, str]:
    """node -> label for every async def under src serve/sim/mesh paths."""
    roots: dict[str, str] = {}
    for s in index.summaries:
        if not s.in_src:
            continue
        parts = s.path.split("/")
        if "serve" not in parts and "sim" not in parts \
                and "mesh" not in parts:
            continue
        for qual, meta in s.functions.items():
            if meta.get("is_async"):
                node = f"{s.module}:{qual}"
                roots[node] = f"coroutine '{pretty_node(node)}'"
    return roots


def _flow(graph: CallGraph, reach: Reachability, node: str,
          line: int, written: str) -> tuple:
    steps = []
    for hop in reach.chain(node):
        owner = graph.owner.get(hop)
        if owner is None:
            continue
        qual = hop.partition(":")[2]
        meta = owner.functions.get(qual)
        hop_line = int(meta["line"]) if meta else 1
        steps.append((owner.path, hop_line, f"enters {pretty_node(hop)}"))
    owner = graph.owner[node]
    steps.append((owner.path, line, f"blocking call to '{written}'"))
    return tuple(steps)


def run(index: ModuleIndex, graph: CallGraph) -> Iterable[Finding]:
    roots = _coroutine_roots(index)
    if not roots:
        return
    reach = Reachability(graph.edges, roots)
    seen: set[tuple] = set()
    for node in reach:
        owner = graph.owner.get(node)
        if owner is None:
            continue
        qual = node.partition(":")[2]
        for record in owner.calls.get(qual, ()):
            line, resolved, written = int(record[0]), record[1], record[2]
            category = classify_blocking(resolved)
            if category is None:
                continue
            if (resolved.startswith(_KERNEL_PREFIX)
                    and owner.module.startswith("repro.core")):
                # kernel-internal calls are the kernel, not a coroutine
                # holding the loop; the *entry* into core is the event.
                continue
            key = (owner.path, line, resolved)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                path=owner.path, line=line, rule=RULE,
                message=f"blocking call to '{written}' ({category}) is "
                        f"reachable from {reach.label(node)} and would "
                        "stall the event loop (chain: "
                        f"{reach.chain_text(node)}); offload it via "
                        "asyncio.to_thread / run_in_executor or use the "
                        "async equivalent",
                flow=_flow(graph, reach, node, line, written))
