"""resource-safety — acquired resources are released on *every* path.

Supersedes the syntactic ``shm-lifecycle`` rule with a real dataflow
analysis: each function (and the module body) is lowered to a CFG
(:mod:`repro.analyze.cfg`) and an acquired→released lattice is solved
over it (:mod:`repro.analyze.absint`).  A resource that may reach the
function's normal exit — or, the headline case, its *exception* exit —
still acquired is an error, anchored at the acquisition site and
carrying a replayable witness path (rendered into the message and, via
``Finding.flow``, into a SARIF ``codeFlow``).

Tracked acquisitions (owned resources only; attaching to an existing
segment is out of scope exactly as before):

* ``SharedArrays.create`` / ``SharedCSR.from_hypergraph`` /
  ``SharedMemory(create=True)`` — POSIX shared memory;
* ``RoundPool(...)`` — forked sub-round worker pools;
* builtin ``open(...)`` — file handles;
* ``socket.socket(...)`` — sockets.

What counts as the resource leaving the function's responsibility:

* a ``close()`` / ``unlink()`` / ``release()`` / ``shutdown()`` /
  ``terminate()`` method call on the handle (committed on the
  exception edge too — if ``close()`` itself raises there is nothing
  more this function could have done);
* use as a context manager (``with`` at the creation, or a later
  ``with handle:``);
* an ownership hand-off: returned, yielded, stored on an object or in
  a container, passed to another call, or aliased to another name —
  a different scope owns the lifecycle now.

The lattice is branch-refined on ``x is None`` / ``x is not None``
tests, so the canonical ``pool = None ... finally: if pool is not
None: pool.close()`` shape proves clean instead of false-positiving
on the ``None`` arm.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from ..absint import solve, witness_path
from ..cfg import CFG, build_cfg
from ..engine import Finding, SourceFile

__all__ = ["RULE", "analyze"]

RULE = "resource-safety"

_RELEASE_ATTRS = {"close", "unlink", "release", "shutdown", "terminate"}

#: last-two-components of a dotted creation call -> resource kind.
_CREATE_TAILS = {
    "SharedArrays.create": "shared-memory handle",
    "SharedCSR.from_hypergraph": "shared-memory handle",
    "socket.socket": "socket",
}

_LEAK_NOTE = {
    "shared-memory handle": ("a leaked owner segment survives in /dev/shm "
                             "until process exit (bpo-38119)"),
    "shared-memory segment": ("a leaked owner segment survives in /dev/shm "
                              "until process exit (bpo-38119)"),
    "worker pool": "forked workers and their pipes outlive the call",
    "file handle": "the descriptor stays open until GC happens to run",
    "socket": "the socket stays open until GC happens to run",
}

_NO_DESCEND = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
               ast.ClassDef)


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _acquisition(call: ast.Call) -> tuple[str, str] | None:
    """``(kind, api)`` when ``call`` creates an owned resource."""
    dotted = _dotted(call.func)
    if not dotted:
        return None
    tail2 = ".".join(dotted.split(".")[-2:])
    if tail2 in _CREATE_TAILS:
        return _CREATE_TAILS[tail2], dotted
    last = dotted.split(".")[-1]
    if last == "SharedMemory":
        if any(kw.arg == "create"
               and isinstance(kw.value, ast.Constant) and kw.value.value
               for kw in call.keywords):
            return "shared-memory segment", dotted
        return None
    if last == "RoundPool":
        return "worker pool", dotted
    if dotted == "open":
        return "file handle", dotted
    return None


def _scope_walk(roots: Iterable[ast.AST]) -> Iterable[ast.AST]:
    """Walk expression trees without entering nested def/class bodies."""
    stack = list(roots)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _NO_DESCEND):
            stack.extend(getattr(node, "decorator_list", []))
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class _Site:
    index: int
    line: int
    name: str          # bound variable ("" for discarded creations)
    kind: str          # human resource kind
    api: str           # dotted creation call as written
    call: ast.Call
    node_id: int = -1  # CFG node performing the acquisition


def _effect_roots(node) -> list[ast.AST]:
    """AST material executed *at* this CFG node (headers only)."""
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind == "loop":                      # for: iter + target
        return [stmt.iter, stmt.target]
    if node.kind == "with":
        return [item.context_expr for item in stmt.items]
    if node.kind in ("dispatch", "handler", "with-cleanup"):
        return []
    if isinstance(stmt, _NO_DESCEND):
        return list(getattr(stmt, "decorator_list", []))
    return [stmt]                                # simple stmt or test expr


def _name_escapes(name_node: ast.Name, parents: dict) -> bool:
    """Does this Load of a tracked name hand ownership elsewhere?"""
    child, parent = name_node, parents.get(name_node)
    while parent is not None:
        if isinstance(parent, (ast.Attribute, ast.Subscript)) \
                and child is getattr(parent, "value", None):
            return False                     # derives a value, no hand-off
        if isinstance(parent, ast.Call) and child is not parent.func:
            return True
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom,
                               ast.List, ast.Tuple, ast.Dict, ast.Set)):
            return True
        if isinstance(parent, ast.Assign):
            return True                      # aliased or stored: hand-off
        if isinstance(parent, (ast.Starred, ast.IfExp, ast.NamedExpr,
                               ast.Await, ast.keyword)):
            child, parent = parent, parents.get(parent)
            continue
        return False
    return False


class _Effects:
    """Per-CFG-node resource effects, precomputed once."""

    def __init__(self, cfg: CFG, sites: list[_Site]) -> None:
        self.by_node: dict[int, list[tuple[str, object]]] = {}
        tracked = {s.name for s in sites if s.name}
        by_call = {id(s.call): s for s in sites}
        for node in cfg.nodes.values():
            roots = _effect_roots(node)
            if not roots:
                continue
            ops: list[tuple[str, object]] = []
            parents: dict[ast.AST, ast.AST] = {}
            for sub in _scope_walk(roots):
                for child in ast.iter_child_nodes(sub):
                    parents.setdefault(child, sub)
            for sub in _scope_walk(roots):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id in tracked
                        and sub.func.attr in _RELEASE_ATTRS):
                    ops.append(("release", sub.func.value.id))
                elif (isinstance(sub, ast.Name) and sub.id in tracked
                        and isinstance(sub.ctx, ast.Load)
                        and _name_escapes(sub, parents)):
                    ops.append(("handoff", sub.id))
            if node.kind == "with":
                for item in node.stmt.items:
                    if (isinstance(item.context_expr, ast.Name)
                            and item.context_expr.id in tracked):
                        ops.append(("release", item.context_expr.id))
            stmt = node.stmt
            if isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    for n in ast.walk(t):
                        if isinstance(n, ast.Name) and n.id in tracked:
                            ops.append(("rebind", n.id))
            site = (by_call.get(id(stmt.value))
                    if isinstance(stmt, ast.Assign) else None)
            if site is not None:
                site.node_id = node.id
                ops.append(("acquire", site.index))
            if ops:
                # releases/hand-offs first, rebinds next, acquire last:
                # `x = make(x)` releases the old handle before the new
                # binding exists.
                order = {"release": 0, "handoff": 0, "rebind": 1,
                         "acquire": 2}
                ops.sort(key=lambda op: order[op[0]])
                self.by_node[node.id] = ops


class _ResourceLattice:
    """State: frozenset of acquired site indices."""

    def __init__(self, sites: list[_Site], effects: _Effects) -> None:
        self.sites = sites
        self.effects = effects

    def initial(self, cfg: CFG) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def widen(self, old: frozenset, new: frozenset) -> frozenset:
        return new

    def _drop_name(self, state: frozenset, name: str) -> frozenset:
        return frozenset(i for i in state
                         if self.sites[i].name != name)

    def transfer(self, node, state: frozenset):
        ops = self.effects.by_node.get(node.id)
        if not ops:
            return state, state
        normal = exceptional = state
        for op, arg in ops:
            if op in ("release", "handoff", "rebind"):
                normal = self._drop_name(normal, arg)
                # committed on the exception edge too: once the close/
                # hand-off statement runs, this scope did its part.
                exceptional = self._drop_name(exceptional, arg)
            elif op == "acquire":
                # the acquisition's own exception edge keeps the
                # pre-state: a failed constructor acquired nothing.
                normal = normal | {arg}
        return normal, exceptional

    def refine(self, edge, state: frozenset) -> frozenset:
        """``x is None`` / ``x is not None`` branch narrowing."""
        test = edge.test
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.left, ast.Name)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None):
            return state
        is_none = isinstance(test.ops[0], ast.Is)
        none_branch = (edge.kind == "true") == is_none
        if none_branch:
            return self._drop_name(state, test.left.id)
        return state


def _role(call: ast.Call, parents: dict) -> tuple[str, str]:
    """with / escape / bind / bare classification of a creation call."""
    child, parent = call, parents.get(call)
    while parent is not None:
        if isinstance(parent, ast.withitem):
            return "with", ""
        if isinstance(parent, ast.Call) and child is not parent.func:
            return "escape", ""
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom,
                               ast.List, ast.Tuple, ast.Dict, ast.Set)):
            return "escape", ""
        if isinstance(parent, ast.Assign):
            targets = parent.targets
            if (len(targets) == 1 and isinstance(targets[0], ast.Name)
                    and child is parent.value):
                return "bind", targets[0].id
            return "escape", ""
        if isinstance(parent, (ast.Starred, ast.IfExp, ast.NamedExpr,
                               ast.Await, ast.keyword)):
            child, parent = parent, parents.get(parent)
            continue
        break
    return "bare", ""


def _scopes(tree: ast.Module):
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _witness(cfg: CFG, sol, site: _Site, goal: int, path: str,
             ) -> tuple[str, tuple]:
    edges = witness_path(
        cfg, site.node_id, [goal],
        lambda e: site.index in (sol.edge_state(e) or frozenset()))
    exc_desc = ("the exception exit" if goal == cfg.raise_exit
                else "function exit")
    steps = [(path, site.line,
              f"'{site.name}' acquired here ({site.api})")]
    parts = [f"acquire@{site.line}"]
    last_line = site.line
    for e in edges or []:
        line = cfg.nodes[e.src].line or last_line
        last_line = line
        if e.kind == "exc":
            steps.append((path, line,
                          f"exception raised here escapes with "
                          f"'{site.name}' still unreleased"))
            parts.append(f"raise@{line}")
    steps.append((path, last_line,
                  f"reaches {exc_desc} with '{site.name}' unreleased"))
    parts.append("raise-exit" if goal == cfg.raise_exit else "exit")
    return " -> ".join(parts), tuple(steps)


def analyze(sf: SourceFile, ex) -> list[Finding]:
    """All resource-safety findings of one module (src-only scope)."""
    if not sf.in_src:
        return []
    findings: list[Finding] = []
    for scope in _scopes(sf.tree):
        # creation sites and their syntactic roles, old-rule style
        parents: dict[ast.AST, ast.AST] = {}
        calls: list[tuple[ast.Call, str, str]] = []
        for node in _scope_walk(scope.body):
            for child in ast.iter_child_nodes(node):
                parents.setdefault(child, node)
            if isinstance(node, ast.Call):
                acq = _acquisition(node)
                if acq is not None:
                    calls.append((node, *acq))
        sites: list[_Site] = []
        for call, kind, api in sorted(calls,
                                      key=lambda c: (c[0].lineno,
                                                     c[0].col_offset)):
            role, name = _role(call, parents)
            if role in ("with", "escape"):
                continue
            if role == "bare":
                findings.append(Finding(
                    path=sf.posix, line=call.lineno, rule=RULE,
                    message=f"{kind} ({api}) is created and discarded; "
                            "bind it and release it, wrap it in `with`, "
                            "or hand ownership off — "
                            f"{_LEAK_NOTE[kind]}"))
                continue
            sites.append(_Site(index=len(sites), line=call.lineno,
                               name=name, kind=kind, api=api, call=call))
        if not sites:
            continue

        cfg = build_cfg(scope)
        effects = _Effects(cfg, sites)
        sol = solve(cfg, _ResourceLattice(sites, effects))
        for site in sites:
            if site.node_id < 0:
                continue        # acquisition unreachable / not lowered
            goal = None
            for candidate in (cfg.raise_exit, cfg.exit):
                if site.index in sol.inputs.get(candidate, frozenset()):
                    goal = candidate
                    break
            if goal is None:
                continue
            witness, flow = _witness(cfg, sol, site, goal, sf.posix)
            exit_desc = ("the exception exit" if goal == cfg.raise_exit
                         else "function exit")
            findings.append(Finding(
                path=sf.posix, line=site.line, rule=RULE,
                message=f"{site.kind} '{site.name}' ({site.api}) may "
                        f"reach {exit_desc} unreleased (witness: "
                        f"{witness}); release it in a `finally`, wrap "
                        "it in `with`, or hand ownership off — "
                        f"{_LEAK_NOTE[site.kind]}",
                flow=flow))
    findings.sort(key=lambda f: (f.line, f.message))
    return findings
