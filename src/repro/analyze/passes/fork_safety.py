"""Fork-safety pass: worker-reachable code must not touch shared state.

``serve.pool`` and ``lab.executor`` hand work to forked child
processes via ``Process(target=...)``.  After the fork the child owns
a copy-on-write snapshot of the parent: mutating module-level state is
at best silently lost, acquiring an inherited lock can deadlock on a
holder that no longer runs, and an inherited asyncio event loop is
attached to file descriptors the child must not drive.

The pass discovers worker entrypoints generically (every
``Process(target=X)`` keyword in the analyzed set), walks the call
graph from them, and flags

* writes to module-level bindings (``global`` + assign, subscript or
  attribute stores, and mutating method calls such as ``.clear()`` /
  ``sys.path.insert``) recorded as facts by the extractor, and
* calls to ``asyncio.get_event_loop`` / ``get_running_loop`` (an
  inherited loop).

Findings anchor at the mutation site with a witness chain, so one
pragma at a deliberately process-local counter (e.g.
``repro.instrument``) silences every entrypoint that reaches it.
"""

from __future__ import annotations

from typing import Iterable

from ..callgraph import CallGraph
from ..dataflow import Reachability
from ..engine import Finding
from ..index import ModuleIndex

__all__ = ["run"]

_LOOP_SINKS = {"asyncio.get_event_loop", "asyncio.get_running_loop"}


def run(index: ModuleIndex, graph: CallGraph) -> Iterable[Finding]:
    roots = {node: f"worker entrypoint '{label}'"
             for node, label in graph.worker_entrypoints()}
    if not roots:
        return
    reach = Reachability(graph.edges, roots)
    seen: set[tuple] = set()
    for node in reach:
        owner = graph.owner[node]
        qual = node.partition(":")[2]
        for line, name in owner.global_writes.get(qual, ()):
            key = (owner.path, int(line), name)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                path=owner.path, line=int(line), rule="fork-safety",
                message=f"mutation of module-level state '{name}' is "
                        f"reachable from {reach.label(node)}; forked "
                        "workers must not touch state shared with the "
                        f"parent (chain: {reach.chain_text(node)})")
        for line, resolved, written in graph.external.get(node, ()):
            if resolved not in _LOOP_SINKS:
                continue
            key = (owner.path, line, resolved)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                path=owner.path, line=line, rule="fork-safety",
                message=f"call to '{written}' inherits the parent's "
                        f"event loop in code reachable from "
                        f"{reach.label(node)}; create a fresh loop in "
                        f"the child (chain: {reach.chain_text(node)})")
