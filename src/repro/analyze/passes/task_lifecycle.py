"""task-lifecycle — every spawned asyncio task is supervised.

``asyncio.create_task`` / ``asyncio.ensure_future`` return a task the
event loop holds only *weakly*: a task nobody stores can be garbage
collected mid-flight, a task nobody awaits swallows its exception
until interpreter exit, and a task nobody cancels outlives shutdown.
The mesh chaos runs (PR 9) surfaced exactly this class — a
fire-and-forget probe task silently dying and never marking shards
back up.

The pass runs per function over the CFG (same engine as
:mod:`.resource_safety`) and distinguishes the creation site's role:

* **bare** — the task object is discarded on the spot
  (``create_task(fn())`` as a statement): flagged unconditionally;
* **bound to a local** — tracked through the CFG; the binding is
  discharged by ``await``-ing it, ``.cancel()`` /
  ``.add_done_callback()`` on it, or handing it off (stored in a
  container or supervised set, passed to ``asyncio.wait`` /
  ``shield`` / any call, returned).  A path on which the task can
  reach function exit undischarged is an error with a replayable
  witness;
* **stored on ``self``** — a class-level obligation: *some* method of
  the same class must cancel, await, or hand off that attribute
  (``stop()`` cancelling ``self._probe_task``).  A task attribute no
  method ever discharges is flagged at the creation site.

Supervision is intentionally syntactic about *what* discharges: a
hand-off is trusted (the supervised set owns the lifecycle now), which
keeps the pass quiet on the batcher's
``self._dispatch_tasks.add(task)`` pattern and loud on a task that
never leaves the local frame.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..absint import solve, witness_path
from ..cfg import CFG, build_cfg
from ..engine import Finding, SourceFile

__all__ = ["RULE", "analyze"]

RULE = "task-lifecycle"

_SPAWN_ATTRS = {"create_task", "ensure_future"}
_DISCHARGE_ATTRS = {"cancel", "add_done_callback"}

_NO_DESCEND = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
               ast.ClassDef)


def _is_spawn(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr in _SPAWN_ATTRS
    if isinstance(func, ast.Name):
        return func.id in _SPAWN_ATTRS
    return False


def _spawn_api(call: ast.Call) -> str:
    func = call.func
    return func.attr if isinstance(func, ast.Attribute) else func.id


def _scope_walk(roots):
    stack = list(roots)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _NO_DESCEND):
            stack.extend(getattr(node, "decorator_list", []))
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class _Site:
    index: int
    line: int
    name: str
    api: str
    call: ast.Call
    node_id: int = -1


def _effect_roots(node) -> list[ast.AST]:
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind == "loop":
        return [stmt.iter, stmt.target]
    if node.kind == "with":
        return [item.context_expr for item in stmt.items]
    if node.kind in ("dispatch", "handler", "with-cleanup"):
        return []
    if isinstance(stmt, _NO_DESCEND):
        return list(getattr(stmt, "decorator_list", []))
    return [stmt]


def _name_escapes(name_node: ast.Name, parents: dict) -> bool:
    """Does this Load of a tracked task hand supervision elsewhere?"""
    child, parent = name_node, parents.get(name_node)
    while parent is not None:
        if isinstance(parent, (ast.Attribute, ast.Subscript)) \
                and child is getattr(parent, "value", None):
            return False
        if isinstance(parent, ast.Call) and child is not parent.func:
            return True                  # asyncio.wait, shield, set.add
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom,
                               ast.List, ast.Tuple, ast.Dict, ast.Set)):
            return True
        if isinstance(parent, ast.Assign):
            return True                  # aliased or stored: hand-off
        if isinstance(parent, (ast.Starred, ast.IfExp, ast.NamedExpr,
                               ast.keyword)):
            child, parent = parent, parents.get(parent)
            continue
        return False
    return False


class _Effects:
    """Per-CFG-node task-supervision effects, precomputed once."""

    def __init__(self, cfg: CFG, sites: list[_Site]) -> None:
        self.by_node: dict[int, list[tuple[str, object]]] = {}
        tracked = {s.name for s in sites if s.name}
        by_call = {id(s.call): s for s in sites}
        for node in cfg.nodes.values():
            roots = _effect_roots(node)
            if not roots:
                continue
            ops: list[tuple[str, object]] = []
            parents: dict[ast.AST, ast.AST] = {}
            for sub in _scope_walk(roots):
                for child in ast.iter_child_nodes(sub):
                    parents.setdefault(child, sub)
            for sub in _scope_walk(roots):
                if (isinstance(sub, ast.Await)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id in tracked):
                    ops.append(("discharge", sub.value.id))
                elif (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id in tracked
                        and sub.func.attr in _DISCHARGE_ATTRS):
                    ops.append(("discharge", sub.func.value.id))
                elif (isinstance(sub, ast.Name) and sub.id in tracked
                        and isinstance(sub.ctx, ast.Load)
                        and _name_escapes(sub, parents)):
                    ops.append(("discharge", sub.id))
            stmt = node.stmt
            if isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    for n in ast.walk(t):
                        if isinstance(n, ast.Name) and n.id in tracked:
                            ops.append(("rebind", n.id))
            site = (by_call.get(id(stmt.value))
                    if isinstance(stmt, ast.Assign) else None)
            if site is not None:
                site.node_id = node.id
                ops.append(("spawn", site.index))
            if ops:
                order = {"discharge": 0, "rebind": 1, "spawn": 2}
                ops.sort(key=lambda op: order[op[0]])
                self.by_node[node.id] = ops


class _TaskLattice:
    """State: frozenset of live (unsupervised) spawn-site indices."""

    def __init__(self, sites: list[_Site], effects: _Effects) -> None:
        self.sites = sites
        self.effects = effects

    def initial(self, cfg: CFG) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def widen(self, old: frozenset, new: frozenset) -> frozenset:
        return new

    def _drop_name(self, state: frozenset, name: str) -> frozenset:
        return frozenset(i for i in state if self.sites[i].name != name)

    def transfer(self, node, state: frozenset):
        ops = self.effects.by_node.get(node.id)
        if not ops:
            return state, state
        normal = exceptional = state
        for op, arg in ops:
            if op in ("discharge", "rebind"):
                # committed on the exception edge too: once the await/
                # cancel/hand-off statement runs, supervision moved.
                normal = self._drop_name(normal, arg)
                exceptional = self._drop_name(exceptional, arg)
            elif op == "spawn":
                # a failed create_task spawned nothing
                normal = normal | {arg}
        return normal, exceptional

    def refine(self, edge, state: frozenset) -> frozenset:
        test = edge.test
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.left, ast.Name)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None):
            return state
        is_none = isinstance(test.ops[0], ast.Is)
        none_branch = (edge.kind == "true") == is_none
        if none_branch:
            return self._drop_name(state, test.left.id)
        return state


def _role(call: ast.Call, parents: dict) -> tuple[str, str]:
    """bare / escape / bind / attr classification of a spawn call."""
    child, parent = call, parents.get(call)
    while parent is not None:
        if isinstance(parent, ast.Call) and child is not parent.func:
            return "escape", ""
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom,
                               ast.List, ast.Tuple, ast.Dict, ast.Set,
                               ast.Await)):
            return "escape", ""
        if isinstance(parent, ast.Assign):
            targets = parent.targets
            if len(targets) == 1 and child is parent.value:
                t = targets[0]
                if isinstance(t, ast.Name):
                    return "bind", t.id
                if (isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"):
                    return "attr", t.attr
            return "escape", ""
        if isinstance(parent, (ast.Starred, ast.IfExp, ast.NamedExpr,
                               ast.keyword)):
            child, parent = parent, parents.get(parent)
            continue
        break
    return "bare", ""


def _scopes(tree: ast.Module):
    yield tree, None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                    yield sub, node.name
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None


def _witness(cfg: CFG, sol, site: _Site, goal: int, path: str,
             ) -> tuple[str, tuple]:
    edges = witness_path(
        cfg, site.node_id, [goal],
        lambda e: site.index in (sol.edge_state(e) or frozenset()))
    exc_desc = ("the exception exit" if goal == cfg.raise_exit
                else "function exit")
    steps = [(path, site.line,
              f"task '{site.name}' spawned here ({site.api})")]
    parts = [f"spawn@{site.line}"]
    last_line = site.line
    for e in edges or []:
        line = cfg.nodes[e.src].line or last_line
        last_line = line
        if e.kind == "exc":
            steps.append((path, line,
                          f"exception raised here escapes with "
                          f"'{site.name}' still unsupervised"))
            parts.append(f"raise@{line}")
    steps.append((path, last_line,
                  f"reaches {exc_desc} with '{site.name}' neither "
                  "awaited, cancelled, nor handed off"))
    parts.append("raise-exit" if goal == cfg.raise_exit else "exit")
    return " -> ".join(parts), tuple(steps)


def _attr_discharged(cls_node: ast.ClassDef, attr: str) -> bool:
    """Does any method of the class cancel/await/hand off self.attr?"""
    parents: dict[ast.AST, ast.AST] = {}
    for sub in ast.walk(cls_node):
        for child in ast.iter_child_nodes(sub):
            parents.setdefault(child, sub)
    for sub in ast.walk(cls_node):
        if not (isinstance(sub, ast.Attribute) and sub.attr == attr
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
                and isinstance(sub.ctx, ast.Load)):
            continue
        parent = parents.get(sub)
        if (isinstance(parent, ast.Attribute)
                and parent.attr in _DISCHARGE_ATTRS
                and isinstance(parents.get(parent), ast.Call)
                and parents[parent].func is parent):
            return True
        if isinstance(parent, ast.Await):
            return True
        if isinstance(parent, ast.Call) and sub is not parent.func:
            return True                  # shield(self._t), wait([...])
        if isinstance(parent, (ast.List, ast.Tuple, ast.Set,
                               ast.Starred)):
            return True
    return False


def analyze(sf: SourceFile, ex) -> list[Finding]:
    """All task-lifecycle findings of one module (src-only scope)."""
    if not sf.in_src:
        return []
    findings: list[Finding] = []
    classes = {n.name: n for n in ast.walk(sf.tree)
               if isinstance(n, ast.ClassDef)}
    attr_checked: set[tuple[str, str]] = set()
    for scope, cls_name in _scopes(sf.tree):
        body = scope.body
        parents: dict[ast.AST, ast.AST] = {}
        spawns: list[ast.Call] = []
        for node in _scope_walk(body):
            for child in ast.iter_child_nodes(node):
                parents.setdefault(child, node)
            if isinstance(node, ast.Call) and _is_spawn(node):
                spawns.append(node)
        sites: list[_Site] = []
        for call in sorted(spawns, key=lambda c: (c.lineno, c.col_offset)):
            role, name = _role(call, parents)
            api = _spawn_api(call)
            if role == "escape":
                continue
            if role == "bare":
                findings.append(Finding(
                    path=sf.posix, line=call.lineno, rule=RULE,
                    message=f"task spawned by {api}() is discarded "
                            "(fire-and-forget): its exception is "
                            "swallowed and shutdown cannot cancel it; "
                            "store it in a supervised set, await it, "
                            "or cancel it on every shutdown path"))
                continue
            if role == "attr":
                key = (cls_name or "", name)
                if cls_name is None or key in attr_checked:
                    continue
                attr_checked.add(key)
                if not _attr_discharged(classes[cls_name], name):
                    findings.append(Finding(
                        path=sf.posix, line=call.lineno, rule=RULE,
                        message=f"task stored on self.{name} is never "
                                f"awaited, cancelled, or handed off by "
                                f"any method of {cls_name}; shutdown "
                                "leaks it and its exception is "
                                "swallowed"))
                continue
            sites.append(_Site(index=len(sites), line=call.lineno,
                               name=name, api=api, call=call))
        if not sites:
            continue

        cfg = build_cfg(scope if isinstance(scope, ast.Module)
                        else scope)
        effects = _Effects(cfg, sites)
        sol = solve(cfg, _TaskLattice(sites, effects))
        for site in sites:
            if site.node_id < 0:
                continue
            goal = None
            for candidate in (cfg.raise_exit, cfg.exit):
                if site.index in sol.inputs.get(candidate, frozenset()):
                    goal = candidate
                    break
            if goal is None:
                continue
            witness, flow = _witness(cfg, sol, site, goal, sf.posix)
            exit_desc = ("the exception exit" if goal == cfg.raise_exit
                         else "function exit")
            findings.append(Finding(
                path=sf.posix, line=site.line, rule=RULE,
                message=f"task '{site.name}' ({site.api}) may reach "
                        f"{exit_desc} neither awaited, cancelled, nor "
                        f"stored in a supervised set (witness: "
                        f"{witness}); cancel it on the abandoning path "
                        "or hand it to a supervised set with a done "
                        "callback",
                flow=flow))
    findings.sort(key=lambda f: (f.line, f.message))
    return findings
