"""Whole-program passes — the check stage of the analysis pipeline.

:func:`run_all` is the single entry point the engine calls: it replays
the file-local and CFG/path-sensitive findings embedded in each
summary (the latter computed at extract time by
:mod:`.resource_safety`, :mod:`.dtype_bounds`, :mod:`.task_lifecycle`
and :mod:`.shm_publish` over per-function CFGs), runs the structural
repo rules (:mod:`.structural`), builds one
:class:`~repro.analyze.callgraph.CallGraph`, and hands it to the six
interprocedural dataflow passes (:mod:`.determinism`,
:mod:`.fork_safety`, :mod:`.rng_provenance`, :mod:`.async_blocking`,
:mod:`.lock_discipline`, :mod:`.fork_hygiene` — the last two consume
the extract-time concurrency facts of
:mod:`repro.analyze.concurrency`).

``RULE_META`` is the registry of every rule/pass id with its severity
and one-line invariant; the CLI's ``--fail-on`` gate, the SARIF rule
table, and ``docs/ANALYZE.md`` all key off it.
"""

from __future__ import annotations

from typing import Iterable

from ..callgraph import CallGraph
from ..engine import Finding
from ..index import ModuleIndex
from . import (async_blocking, determinism, fork_hygiene, fork_safety,
               lock_discipline, rng_provenance, structural)

__all__ = ["RULE_META", "run_all"]

#: rule id -> (severity, one-line invariant).
RULE_META: dict[str, tuple[str, str]] = {
    "seed-discipline": (
        "error",
        "library code never draws from implicit global RNG state"),
    "silent-except": (
        "error",
        "broad exception handlers must re-raise, log, or carry a pragma"),
    "float-cost-eq": (
        "error",
        "cost/gain values are compared via repro.core.tolerance, not ==/!="),
    "serve-timeout": (
        "error",
        "every await in the serving layer is bounded by with_deadline"),
    "kernel-oracle": (
        "error",
        "every public CSR kernel has a _reference_* oracle twin and tests"),
    "runner-signature": (
        "error",
        "registered runners are declared run(*, seed, **params) with a "
        "resolvable check"),
    "error-hierarchy": (
        "error",
        "every *Error class derives from repro.errors.ReproError"),
    "determinism": (
        "error",
        "registered runners and serve ops never transitively reach "
        "wall-clock, env, network, or global-RNG state"),
    "fork-safety": (
        "error",
        "code reachable from forked worker entrypoints never mutates "
        "module-level state or inherited locks/loops"),
    "rng-provenance": (
        "error",
        "Generators flow from the seed parameter by argument, never via "
        "a module global or unseeded constructor"),
    "resource-safety": (
        "error",
        "acquired resources (shm, pools, files, sockets) are released "
        "on every CFG path, exception edges included"),
    "async-blocking": (
        "error",
        "no blocking call is reachable from a serve/sim coroutine "
        "except through to_thread/executor offloads"),
    "dtype-bounds": (
        "error",
        "int32 casts and accumulations are proven overflow-free under "
        "declared `# repro: bounds(...)` scale bounds"),
    "task-lifecycle": (
        "error",
        "every create_task/ensure_future result is supervised, awaited, "
        "or cancelled on every path"),
    "lock-discipline": (
        "error",
        "lock acquisition order is acyclic, sync locks stay off "
        "coroutine paths, no attribute is guarded by mixed sync/async "
        "locks, and probe/data paths never share an executor"),
    "fork-hygiene": (
        "error",
        "fork worker entrypoints reset inherited signal state before "
        "IPC and inherit no live lock or executor"),
    "shm-publish": (
        "error",
        "shared-memory buffers are never written after publish/handoff "
        "to another process"),
    "pragma-missing-reason": (
        "warning",
        "every allow(...) pragma carries a written reason"),
    "unused-pragma": (
        "warning",
        "a pragma that suppresses nothing is removed, not left to rot"),
    "stale-baseline": (
        "note",
        "baseline entries that no longer match any finding are pruned"),
}


def run_all(index: ModuleIndex) -> Iterable[Finding]:
    """Every unfiltered finding for the linked program, in one stream."""
    for summary in index.summaries:
        yield from summary.findings()
    yield from structural.kernel_oracle(index)
    yield from structural.runner_signature(index)
    yield from structural.error_hierarchy(index)
    graph = CallGraph(index)
    yield from determinism.run(index, graph)
    yield from fork_safety.run(index, graph)
    yield from rng_provenance.run(index, graph)
    yield from async_blocking.run(index, graph)
    yield from lock_discipline.run(index, graph)
    yield from fork_hygiene.run(index, graph)
