"""Determinism pass: runners must not reach nondeterministic sources.

The ``.lab-cache/`` content address is ``hash(params, seed, code
fingerprint)`` — it *asserts* that a runner's result is a pure
function of those inputs.  Any registered lab runner or serve op that
transitively calls into wall-clock, environment, network, or
global-RNG state makes that address a lie: a cache hit would replay a
value the current environment could not reproduce.

This pass walks the call graph from every registered entrypoint
(lab ``ExperimentSpec`` registrations, the serve op,
``register_scheduler``'d sim schedulers — the simulated clock is the
only time a scheduler may observe — and every mesh coroutine, whose
routing decisions must be byte-identical across runs) and flags each
external call that
matches a nondeterminism sink, with a witness call chain.  Findings anchor at the *sink call site* — one shared helper
flagged once, suppressible with one pragma — and name the entrypoint
that reaches it.

``time.perf_counter``/``time.monotonic`` are deliberately **not**
sinks: duration measurement is how the TIMING benches work, and
measured durations are reported, not cached as results.  Runners
tagged ``timing`` are excluded from the entrypoint set entirely —
their whole purpose is to observe the clock.
"""

from __future__ import annotations

from typing import Iterable

from ..callgraph import CallGraph
from ..dataflow import Reachability
from ..engine import Finding
from ..index import ModuleIndex

__all__ = ["classify_sink", "run"]

_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.ctime", "time.asctime",
    "time.localtime", "time.gmtime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_ENV_EXACT = {"os.getenv", "platform.node", "socket.gethostname"}
_ENV_PREFIXES = ("os.environ",)

_NETWORK_PREFIXES = ("socket.", "urllib.", "http.", "requests.",
                     "ssl.", "ftplib.", "smtplib.")

_ENTROPY_EXACT = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}
_ENTROPY_PREFIXES = ("secrets.",)

#: numpy.random constructors that take (or default) an explicit seed
#: and hand back caller-owned state — not global-RNG sinks.
_ALLOWED_NP_RANDOM = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}


def classify_sink(resolved: str) -> str | None:
    """Nondeterminism category of an external call target, or None."""
    if resolved in _WALL_CLOCK:
        return "wall-clock"
    if resolved in _ENV_EXACT or resolved.startswith(_ENV_PREFIXES):
        return "environment"
    if resolved.startswith(_NETWORK_PREFIXES):
        return "network"
    if resolved in _ENTROPY_EXACT or resolved.startswith(_ENTROPY_PREFIXES):
        return "entropy"
    head, _, attr = resolved.rpartition(".")
    if head == "numpy.random" and attr not in _ALLOWED_NP_RANDOM:
        return "global-RNG"
    if head == "random":
        return "global-RNG"
    return None


def _entrypoints(graph: CallGraph, *,
                 exclude_timing: bool) -> dict[str, str]:
    roots: dict[str, str] = {}
    for node, name, tags in graph.runner_entrypoints():
        if exclude_timing and "timing" in tags:
            continue
        roots.setdefault(node, f"runner '{name}'")
    for node, name in graph.sim_entrypoints():
        roots.setdefault(node, f"sim scheduler '{name}'")
    for node, name in graph.mesh_entrypoints():
        roots.setdefault(node, f"mesh coroutine '{name}'")
    return roots


def run(index: ModuleIndex, graph: CallGraph) -> Iterable[Finding]:
    roots = _entrypoints(graph, exclude_timing=True)
    if not roots:
        return
    reach = Reachability(graph.edges, roots)
    seen: set[tuple] = set()
    for node in reach:
        for line, resolved, written in graph.external.get(node, ()):
            category = classify_sink(resolved)
            if category is None:
                continue
            owner = graph.owner[node]
            key = (owner.path, line, resolved)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                path=owner.path, line=line, rule="determinism",
                message=f"call to '{written}' ({category}) is reachable "
                        f"from {reach.label(node)}; the .lab-cache "
                        "content address assumes results depend only on "
                        "params+seed (chain: "
                        f"{reach.chain_text(node)})")
