"""lock-discipline — ordering, flavour, and sharing of locks/executors.

Four whole-program checks over the concurrency facts the extractor
collects per module (:mod:`repro.analyze.concurrency`), one rule id:

1. **lock-order cycles** — every acquisition fact carries the locks
   lexically held at that point; held→acquired pairs form a directed
   lock-order graph per program.  A strongly connected component (or a
   self-edge: re-acquiring a non-reentrant lock already held) is a
   potential deadlock and is reported once, with the cycle spelled
   out.
2. **sync lock on a coroutine path** — a ``threading``-flavoured lock
   acquired synchronously in code reachable from a serve/sim/mesh
   coroutine blocks the event loop when contended.  Reachability is
   interprocedural over the project call graph (same roots as
   ``async-blocking``); the finding carries the coroutine witness
   chain.  Code only reachable via executor offloads has no call edge
   and stays exempt by construction.
3. **mixed sync/async guarding** — one attribute written under a
   ``threading`` lock in one method and under an ``asyncio`` lock in
   another is guarded by *neither*: the two lock types do not exclude
   each other.
4. **probe/data executor sharing** — an executor receiving
   submissions both from probe/health coroutines and from data-path
   coroutines reproduces the PR 9 chaos bug: health probes starve in
   the queue behind data work and mark live shards down.  Probe roots
   are identified by name (``probe``/``health``/``heartbeat``/
   ``watchdog``).

All checks consume extract-time facts only, so they replay byte-
identically from the incremental cache.
"""

from __future__ import annotations

from typing import Iterable

from ..callgraph import CallGraph, pretty_node
from ..dataflow import Reachability
from ..engine import Finding
from ..index import ModuleIndex

__all__ = ["RULE", "run"]

RULE = "lock-discipline"

_PROBE_NAMES = ("probe", "health", "heartbeat", "watchdog")

_ASYNC_PARTS = ("serve", "sim", "mesh")


def _coroutine_roots(index: ModuleIndex) -> dict[str, str]:
    """node -> label for every async def under src serve/sim/mesh paths."""
    roots: dict[str, str] = {}
    for s in index.summaries:
        if not s.in_src:
            continue
        parts = s.path.split("/")
        if not any(p in parts for p in _ASYNC_PARTS):
            continue
        for qual, meta in s.functions.items():
            if meta.get("is_async"):
                node = f"{s.module}:{qual}"
                roots[node] = f"coroutine '{pretty_node(node)}'"
    return roots


def _chain_flow(graph: CallGraph, reach: Reachability, node: str,
                line: int, note: str) -> tuple:
    steps = []
    for hop in reach.chain(node):
        owner = graph.owner.get(hop)
        if owner is None:
            continue
        qual = hop.partition(":")[2]
        meta = owner.functions.get(qual)
        hop_line = int(meta["line"]) if meta else 1
        steps.append((owner.path, hop_line, f"enters {pretty_node(hop)}"))
    owner = graph.owner[node]
    steps.append((owner.path, line, note))
    return tuple(steps)


def _sccs(edges: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan SCCs, deterministic order (sorted roots, sorted succs)."""
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        index_of[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(edges.get(v, ())):
            if w not in index_of:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index_of[w])
        if low[v] == index_of[v]:
            comp = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                comp.append(w)
                if w == v:
                    break
            out.append(sorted(comp))

    for v in sorted(edges):
        if v not in index_of:
            strongconnect(v)
    return out


def run(index: ModuleIndex, graph: CallGraph) -> Iterable[Finding]:
    summaries = [s for s in index.summaries
                 if s.in_src and s.concurrency]

    # -- global fact tables, keyed "<module>.<local key>" ---------------
    lock_kind: dict[str, str] = {}
    lock_line: dict[str, tuple[str, int]] = {}
    for s in summaries:
        for line, key, kind in s.concurrency.get("locks", ()):
            gkey = f"{s.module}.{key}"
            lock_kind.setdefault(gkey, kind)
            lock_line.setdefault(gkey, (s.path, int(line)))

    # -- 1: lock-order graph + SCC / self-edge detection ----------------
    order_edges: dict[str, set[str]] = {}
    #: (held, acquired) -> earliest acquire site (path, line, qual)
    edge_site: dict[tuple[str, str], tuple[str, int, str]] = {}
    for s in summaries:
        for qual, line, key, mode, held in s.concurrency.get(
                "acquires", ()):
            gkey = f"{s.module}.{key}"
            for h in held:
                gheld = f"{s.module}.{h}"
                order_edges.setdefault(gheld, set()).add(gkey)
                order_edges.setdefault(gkey, set())
                site = (s.path, int(line), qual)
                if edge_site.get((gheld, gkey), site) >= site:
                    edge_site[(gheld, gkey)] = site

    for comp in _sccs(order_edges):
        cyclic = (len(comp) > 1
                  or comp[0] in order_edges.get(comp[0], ()))
        if not cyclic:
            continue
        comp_set = set(comp)
        sites = sorted(site for (a, b), site in edge_site.items()
                       if a in comp_set and b in comp_set)
        path, line, qual = sites[0]
        ring = " -> ".join(comp + [comp[0]])
        if len(comp) == 1:
            msg = (f"lock '{comp[0]}' is re-acquired while already "
                   f"held (in {qual}): a non-reentrant lock "
                   "self-deadlocks here")
        else:
            msg = (f"lock-order cycle {ring}: two threads taking "
                   "these locks in opposite orders deadlock; pick one "
                   "global order and acquire in it everywhere "
                   f"(first conflicting acquisition in {qual})")
        yield Finding(
            path=path, line=line, rule=RULE, message=msg,
            flow=tuple(
                (p, ln, f"acquires the second lock here (in {q})")
                for p, ln, q in sites[:6]))

    # -- 2: sync lock acquired on a coroutine path ----------------------
    roots = _coroutine_roots(index)
    reach = Reachability(graph.edges, roots) if roots else None
    if reach is not None:
        for s in summaries:
            for qual, line, key, mode, held in s.concurrency.get(
                    "acquires", ()):
                gkey = f"{s.module}.{key}"
                if mode != "sync" or lock_kind.get(gkey) != "sync":
                    continue
                node = f"{s.module}:{qual}"
                if node not in reach:
                    continue
                yield Finding(
                    path=s.path, line=int(line), rule=RULE,
                    message=f"sync lock '{gkey}' acquired on a "
                            f"coroutine path ({reach.chain_text(node)}):"
                            " a contended threading lock blocks the "
                            "whole event loop; use asyncio.Lock here "
                            "or move the critical section into an "
                            "executor offload",
                    flow=_chain_flow(
                        graph, reach, node, int(line),
                        f"acquires sync lock '{gkey}' with the loop "
                        "running"))

    # -- 3: mixed sync/async guarding of one attribute ------------------
    guards: dict[str, dict[str, tuple[str, int, str]]] = {}
    for s in summaries:
        for qual, line, attr, lkey, lkind in s.concurrency.get(
                "guarded_writes", ()):
            gattr = f"{s.module}.{attr}"
            site = (s.path, int(line), f"{s.module}.{lkey}")
            by_kind = guards.setdefault(gattr, {})
            if lkind not in by_kind or by_kind[lkind] > site:
                by_kind[lkind] = site
    for gattr in sorted(guards):
        by_kind = guards[gattr]
        if "sync" not in by_kind or "async" not in by_kind:
            continue
        s_path, s_line, s_lock = by_kind["sync"]
        a_path, a_line, a_lock = by_kind["async"]
        yield Finding(
            path=a_path, line=a_line, rule=RULE,
            message=f"attribute '{gattr}' is written under sync lock "
                    f"'{s_lock}' (at {s_path}:{s_line}) and under "
                    f"async lock '{a_lock}' here: the two lock types "
                    "do not exclude each other, so neither guards the "
                    "attribute; pick one flavour",
            flow=(
                (s_path, s_line,
                 f"written under sync lock '{s_lock}'"),
                (a_path, a_line,
                 f"written under async lock '{a_lock}'"),
            ))

    # -- 4: probe/data paths sharing one executor -----------------------
    if roots:
        probe_roots = {n: lbl for n, lbl in roots.items()
                       if any(p in n.rsplit(":", 1)[1].lower()
                              for p in _PROBE_NAMES)}
        data_roots = {n: lbl for n, lbl in roots.items()
                      if n not in probe_roots}
        if probe_roots and data_roots:
            probe_reach = Reachability(graph.edges, probe_roots)
            data_reach = Reachability(graph.edges, data_roots)
            #: executor gkey -> {"probe": site, "data": site}
            shared: dict[str, dict[str, tuple[str, int, str]]] = {}
            for s in summaries:
                for qual, line, key in s.concurrency.get("submits", ()):
                    gkey = f"{s.module}.{key}"
                    node = f"{s.module}:{qual}"
                    site = (s.path, int(line), node)
                    for side, r in (("probe", probe_reach),
                                    ("data", data_reach)):
                        if node not in r:
                            continue
                        sides = shared.setdefault(gkey, {})
                        if side not in sides or sides[side] > site:
                            sides[side] = site
            for gkey in sorted(shared):
                sides = shared[gkey]
                if "probe" not in sides or "data" not in sides:
                    continue
                p_path, p_line, p_node = sides["probe"]
                d_path, d_line, d_node = sides["data"]
                yield Finding(
                    path=p_path, line=p_line, rule=RULE,
                    message=f"executor '{gkey}' is shared between the "
                            f"probe path ({probe_reach.chain_text(p_node)}) "
                            f"and the data path (submission at "
                            f"{d_path}:{d_line}): health probes queue "
                            "behind data work and starve, marking live "
                            "shards down; give probes a dedicated "
                            "executor",
                    flow=(
                        (p_path, p_line,
                         f"probe-path submission to '{gkey}'"),
                        (d_path, d_line,
                         f"data-path submission to the same "
                         f"executor"),
                    ))
