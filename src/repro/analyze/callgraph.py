"""Project call graph — the link stage of the analysis pipeline.

Nodes are ``"<module>:<qualname>"`` strings, one per function or
method known to the :class:`~repro.analyze.index.ModuleIndex` (plus a
pseudo-node ``module:<module>`` for import-time statements).  Edges
come from the resolved call records in each module summary; a call
whose dotted target resolves to another project function becomes an
edge, a call into a class becomes an edge to its ``__init__`` when one
exists, and everything that does *not* resolve into the project
(numpy, stdlib ``time``/``os``/``socket``, ...) is kept as an
*external* call record — exactly the material the dataflow sink passes
match against.

Resolution handles the edge cases the test-suite pins down:
``from x import y as z`` aliasing, re-exports through ``__init__.py``
chains, method calls on locals whose class is known by construction
(``g = Hypergraph(...); g.csr()``), module cycles (the summary join is
not an import, so cycles cost nothing), and dynamic registry dispatch
(lab ``ExperimentSpec`` registrations and ``Process(target=...)``
worker spawns are surfaced as entrypoints rather than call edges).
"""

from __future__ import annotations

from typing import Iterable

from .index import ModuleIndex, ModuleSummary

__all__ = ["CallGraph", "node_id", "pretty_node"]


def node_id(module: str, qual: str) -> str:
    return f"{module}:{qual}"


def pretty_node(node: str) -> str:
    module, _, qual = node.partition(":")
    return module if qual == "<module>" else f"{module}.{qual}"


class CallGraph:
    """Edges between project functions + per-node external calls."""

    def __init__(self, index: ModuleIndex) -> None:
        self.index = index
        self.edges: dict[str, set[str]] = {}
        #: node -> [(line, resolved, written)] calls leaving the project
        self.external: dict[str, list[tuple[int, str, str]]] = {}
        #: node -> owning summary (for finding paths)
        self.owner: dict[str, ModuleSummary] = {}
        for s in index.summaries:
            for qual in s.functions:
                self._node(s, qual)
            for qual, records in s.calls.items():
                caller = self._node(s, qual)
                for line, resolved, written in records:
                    self._add_call(caller, int(line), resolved, written)

    def _node(self, s: ModuleSummary, qual: str) -> str:
        node = node_id(s.module, qual)
        if node not in self.edges:
            self.edges[node] = set()
            self.owner[node] = s
        return node

    def _add_call(self, caller: str, line: int, resolved: str,
                  written: str) -> None:
        hit = self.index.resolve_symbol(resolved)
        if hit is None:
            self.external.setdefault(caller, []).append(
                (line, resolved, written))
            return
        s, qual = hit
        if qual in s.functions:
            self.edges[caller].add(self._node(s, qual))
        elif qual in s.classes:
            init = f"{qual}.__init__"
            if init in s.functions:
                self.edges[caller].add(self._node(s, init))
        # resolved-but-not-callable (module refs, constants): no edge.

    # -- entrypoint discovery -------------------------------------------

    def resolve_function(self, dotted: str) -> str | None:
        """Node id of an absolute dotted function name, or None."""
        hit = self.index.resolve_symbol(dotted)
        if hit is None:
            return None
        s, qual = hit
        if qual in s.functions:
            return node_id(s.module, qual)
        return None

    def runner_entrypoints(self) -> Iterable[tuple[str, str, list]]:
        """``(node, label, tags)`` for every registered spec runner.

        Registrations are taken from library modules only (``src/``);
        test fixtures constructing specs do not become entrypoints.
        A registration whose runner module is outside the analyzed set
        is skipped — the runner-signature rule reports broken ones.
        """
        seen: set[tuple] = set()
        for s in self.index.summaries:
            if not s.in_src:
                continue
            for reg in s.registrations:
                module, func = reg.get("module"), reg.get("func")
                if not isinstance(module, str) or not isinstance(func, str):
                    continue
                target = self.index.module(module)
                if target is None or func not in target.functions:
                    continue
                node = node_id(target.module, func)
                label = reg.get("name") or f"{module}.{func}"
                key = (node, label)
                if key in seen:
                    continue
                seen.add(key)
                yield node, label, list(reg.get("tags") or [])

    def worker_entrypoints(self) -> Iterable[tuple[str, str]]:
        """``(node, label)`` for every ``Process(target=...)`` spawn."""
        seen: set[str] = set()
        for s in self.index.summaries:
            for tgt in s.process_targets:
                node = self.resolve_function(tgt)
                if node is None or node in seen:
                    continue
                seen.add(node)
                yield node, pretty_node(node)

    def sim_entrypoints(self) -> Iterable[tuple[str, str]]:
        """``(node, label)`` for every registered sim-scheduler method.

        ``register_scheduler(name, Cls)`` is registry dispatch: the
        simulator instantiates ``Cls`` by name and calls its methods,
        so no static call edge reaches them.  Every method of the
        registered class — including inherited ones, walking the base
        chain — becomes an entrypoint, exactly like spec runners.
        Registrations in test fixtures (non-``src/`` files) are
        ignored.
        """
        seen: set[tuple] = set()
        for s in self.index.summaries:
            if not s.in_src:
                continue
            for reg in s.registrations:
                if reg.get("kind") != "sim-scheduler":
                    continue
                target = reg.get("target")
                if not isinstance(target, str):
                    continue
                label = reg.get("name") or target
                for node in self._class_method_nodes(target):
                    key = (node, label)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield node, label

    def mesh_entrypoints(self) -> Iterable[tuple[str, str]]:
        """``(node, label)`` for every mesh coroutine.

        The router's coroutines are driven by the asyncio server — no
        static call edge reaches them — and routing itself is part of
        the mesh's determinism contract (byte-identical assignment, no
        entropy, sequential job ids).  Every ``async def`` under
        ``src/repro/mesh/`` therefore becomes a root, mirroring the
        async-blocking pass's coroutine-root scope.
        """
        seen: set[str] = set()
        for s in self.index.summaries:
            if not s.in_src or "mesh" not in s.path.split("/"):
                continue
            for qual, meta in s.functions.items():
                if not meta.get("is_async"):
                    continue
                node = node_id(s.module, qual)
                if node in seen:
                    continue
                seen.add(node)
                yield node, pretty_node(node)

    def _class_method_nodes(self, dotted: str,
                            _seen: frozenset = frozenset(),
                            ) -> Iterable[str]:
        """All method nodes of the class ``dotted`` names, bases included."""
        if dotted in _seen:
            return
        hit = self.index.resolve_symbol(dotted)
        if hit is None:
            return
        s, qual = hit
        if qual not in s.classes:
            return
        prefix = qual + "."
        for fn in s.functions:
            if fn.startswith(prefix):
                yield node_id(s.module, fn)
        for base in s.classes[qual].get("bases", []):
            rebased = self.index._rebase(s, base, [])
            if rebased is not None:
                yield from self._class_method_nodes(
                    rebased, _seen | {dotted})
