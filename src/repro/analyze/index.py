"""Module/symbol indexer — stage 1 and 2 of the analysis pipeline.

:func:`extract_summary` walks one parsed module **once** and distils it
into a :class:`ModuleSummary`: a small, JSON-serialisable record of
everything any rule or pass downstream needs — symbol tables, import
aliases, call targets resolved through those aliases, module-state
mutation facts, RNG-provenance facts, experiment-spec registrations,
``Process(target=...)`` worker entrypoints, the pragma table, and the
findings of the file-local rules (which consume the facts gathered by
this same walk; see :mod:`repro.analyze.rules`).

Summaries are what the incremental engine caches: they are derived
from file bytes alone, so a content-hash hit can skip parsing entirely
while the whole-program link/check stages still see exactly the data a
cold parse would have produced.

:class:`ModuleIndex` joins summaries into a project: dotted-name
resolution across modules (including ``from x import y as z`` aliasing
and re-exports through ``__init__.py`` chains) and the module
dependency graph used by ``--changed``'s reverse-dependency closure.

Known, documented approximations:

* facts inside *nested* functions are attributed to the enclosing
  top-level function or method (over-approximate but sound for
  reachability);
* module-level statements execute at import time and are not edges in
  the call graph — import side effects are out of scope;
* a dotted call through an alias that was never imported (broken code)
  resolves to nothing and is skipped.
"""

from __future__ import annotations

import ast
import io
import os
import subprocess
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from .engine import Finding, PragmaTable, SourceFile

__all__ = [
    "ENGINE_VERSION",
    "ModuleIndex",
    "ModuleSummary",
    "changed_scope",
    "extract_summary",
    "load_source",
    "module_name_for",
]

#: Bump to invalidate every cached summary (rule/pass/format changes).
ENGINE_VERSION = "analyze-v4.0"

#: Constructors whose result is an explicit, caller-owned Generator.
RNG_CONSTRUCTORS = {"numpy.random.default_rng", "numpy.random.Generator"}

#: Parameter names conventionally carrying a Generator (or seed).
RNG_PARAM_NAMES = {"rng", "gen", "generator", "random_state"}

#: Method names that mutate their receiver in place.  Applied only when
#: the receiver resolves to module-level state (this module's globals
#: or an imported module's attribute), so ``local_list.append`` never
#: fires.  ``acquire``/``release`` catch inherited-lock use after fork.
MUTATOR_METHODS = {
    "append", "appendleft", "add", "update", "clear", "pop", "popitem",
    "extend", "remove", "discard", "insert", "setdefault", "acquire",
    "release", "sort", "reverse", "push",
}

#: Parameter-name sets that mark a function as consuming CSR arrays
#: directly (the kernel-oracle anchor outside core/kernels.py).
_CSR_PARAM_SETS = (
    {"edge_ptr", "edge_pins"},
    {"ptr", "pins"},
    {"ptr", "adj"},
)


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path`` (layout-aware, stable).

    ``src/<pkg>/...`` maps to the import path, ``benchmarks/x.py`` to
    the bare stem (how the lab registry names bench runners), and
    ``tests/...`` to a ``tests.``-prefixed dotted path.  Anything else
    gets a path-derived fallback name that never collides with real
    import targets.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    for anchor, prefix in (("src", ""), ("tests", "tests."),
                           ("benchmarks", None)):
        if anchor in parts[:-1]:
            i = len(parts) - 2 - parts[-2::-1].index(anchor)
            rel = parts[i + 1:]
            if anchor == "benchmarks":
                return rel[-1] if rel else "benchmarks"
            if rel and rel[-1] == "__init__":
                rel = rel[:-1]
            base = ".".join(rel)
            if anchor == "tests":
                return prefix + base if base else "tests"
            return base or anchor
    rel = [p for p in parts if p not in ("/", "")]
    if rel and rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(rel)


@dataclass
class ModuleSummary:
    """Everything downstream stages need to know about one module."""

    path: str                                  # path as given (posix)
    module: str                                # dotted module name
    in_src: bool
    in_tests: bool
    is_init: bool
    functions: dict = field(default_factory=dict)
    classes: dict = field(default_factory=dict)
    imports: dict = field(default_factory=dict)
    calls: dict = field(default_factory=dict)          # qual -> [[line, resolved, written]]
    global_writes: dict = field(default_factory=dict)  # qual -> [[line, name]]
    process_targets: list = field(default_factory=list)
    rng_globals: list = field(default_factory=list)
    rng_draws: dict = field(default_factory=dict)      # qual -> [[line, kind, detail]]
    registrations: list = field(default_factory=list)
    referenced_names: list = field(default_factory=list)
    local_findings: list = field(default_factory=list)  # [[line, rule, msg]]
    #: CFG/abstract-interpretation findings of the path-sensitive
    #: passes, computed at extract time so the incremental cache
    #: replays them: ``[[line, rule, msg, [[line, note], ...]], ...]``
    #: (the flow's path component is this module's path, re-attached on
    #: deserialisation).
    path_findings: list = field(default_factory=list)
    #: Concurrency fact layer (locks, acquisitions with held sets,
    #: executor submissions, fork spawns, reset-dominance) consumed by
    #: the lock-discipline and fork-hygiene passes; see
    #: :mod:`repro.analyze.concurrency`.
    concurrency: dict = field(default_factory=dict)
    pragmas: list = field(default_factory=list)

    def pragma_table(self) -> PragmaTable:
        return PragmaTable.from_json(self.pragmas)

    def findings(self) -> Iterable[Finding]:
        for line, rule, msg in self.local_findings:
            yield Finding(path=self.path, line=int(line), rule=rule,
                          message=msg)
        for line, rule, msg, flow in self.path_findings:
            yield Finding(path=self.path, line=int(line), rule=rule,
                          message=msg,
                          flow=tuple((self.path, int(ln), note)
                                     for ln, note in flow))

    def to_json(self) -> dict:
        return {
            "engine": ENGINE_VERSION,
            "path": self.path, "module": self.module,
            "in_src": self.in_src, "in_tests": self.in_tests,
            "is_init": self.is_init,
            "functions": self.functions, "classes": self.classes,
            "imports": self.imports, "calls": self.calls,
            "global_writes": self.global_writes,
            "process_targets": self.process_targets,
            "rng_globals": self.rng_globals, "rng_draws": self.rng_draws,
            "registrations": self.registrations,
            "referenced_names": self.referenced_names,
            "local_findings": self.local_findings,
            "path_findings": self.path_findings,
            "concurrency": self.concurrency,
            "pragmas": self.pragmas,
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "ModuleSummary | None":
        if data.get("engine") != ENGINE_VERSION:
            return None
        kwargs = {k: data[k] for k in (
            "path", "module", "in_src", "in_tests", "is_init", "functions",
            "classes", "imports", "calls", "global_writes",
            "process_targets", "rng_globals", "rng_draws", "registrations",
            "referenced_names", "local_findings", "path_findings",
            "concurrency", "pragmas")}
        return cls(**kwargs)


def load_source(path: Path, raw: bytes | None = None) -> SourceFile | None:
    """Decode + parse ``path`` (PEP 263 aware); None on broken input."""
    try:
        if raw is None:
            raw = Path(path).read_bytes()
        enc, _ = tokenize.detect_encoding(io.BytesIO(raw).readline)
        text = raw.decode(enc)
        tree = ast.parse(text, filename=str(path))
    except (OSError, SyntaxError, UnicodeDecodeError, ValueError,
            LookupError):
        return None
    return SourceFile(path=Path(path), text=text, tree=tree,
                      pragmas=PragmaTable(text))


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``np.random.shuffle``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _FnCtx:
    """Per-(top-level function or method) extraction state."""

    def __init__(self, qual: str, cls: str | None, node=None) -> None:
        self.qual = qual
        self.cls = cls
        self.params: set[str] = set()
        self.rng_params: set[str] = set()
        self.rng_locals: dict[str, str] = {}   # var -> "param"|"local"
        self.local_types: dict[str, str] = {}  # var -> resolved class dotted
        self.globals_declared: set[str] = set()
        self.consumes_csr = False
        if node is not None:
            self.add_params(node)

    def add_params(self, node) -> None:
        a = node.args
        for arg in (list(getattr(a, "posonlyargs", [])) + list(a.args)
                    + list(a.kwonlyargs)):
            self.params.add(arg.arg)
            ann = getattr(arg, "annotation", None)
            if arg.arg in RNG_PARAM_NAMES or (
                    ann is not None and "Generator" in ast.dump(ann)):
                self.rng_params.add(arg.arg)
        for v in (a.vararg, a.kwarg):
            if v is not None:
                self.params.add(v.arg)


class Extractor:
    """One-walk fact collector over a parsed module.

    Besides the summary fields, it exposes the raw per-node collections
    (``compares``, ``handlers``, ``awaits``) that the file-local rules
    in :mod:`repro.analyze.rules` consume — one AST walk serves all of
    them.
    """

    def __init__(self, sf: SourceFile) -> None:
        self.sf = sf
        self.module = module_name_for(sf.path)
        self.summary = ModuleSummary(
            path=sf.posix, module=self.module,
            in_src=sf.in_src, in_tests=sf.in_tests,
            is_init=sf.path.name == "__init__.py",
            pragmas=sf.pragmas.to_json())
        # raw collections for the file-local rules (not serialised)
        self.compares: list = []            # (qual, ast.Compare)
        self.handlers: list = []            # ast.ExceptHandler
        self.awaits: list = []              # (line, callee, written, is_call)
        self.local_async: set[str] = set()
        self.call_records: list = []        # (qual, line, resolved, written)
        self._top_names: set[str] = set()
        self._referenced: set[str] = set()

    # -- name resolution ------------------------------------------------

    def resolve(self, dotted: str) -> str | None:
        """Absolute dotted target of a local dotted name, or None."""
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        imports = self.summary.imports
        if head in imports:
            return imports[head] + ("." + rest if rest else "")
        if head in self._top_names:
            return f"{self.module}.{dotted}"
        return None

    def _import_base(self, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module or ""
        pkg = (self.module if self.summary.is_init
               else self.module.rpartition(".")[0])
        for _ in range(node.level - 1):
            pkg = pkg.rpartition(".")[0]
        if node.module:
            pkg = f"{pkg}.{node.module}" if pkg else node.module
        return pkg or None

    # -- extraction -----------------------------------------------------

    def run(self) -> ModuleSummary:
        tree = self.sf.tree
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.asname:
                        self.summary.imports[a.asname] = a.name
                    else:
                        root = a.name.partition(".")[0]
                        self.summary.imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                if base is None:
                    continue
                for a in node.names:
                    if a.name == "*":
                        continue
                    self.summary.imports[a.asname or a.name] = (
                        f"{base}.{a.name}")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(node, ast.AsyncFunctionDef):
                    self.local_async.add(node.name)
        for stmt in tree.body:
            self._scan_top_level(stmt)
        mod_ctx = _FnCtx("<module>", None)
        for stmt in tree.body:
            self._visit(stmt, mod_ctx)
        if self.sf.in_tests:
            self.summary.referenced_names = sorted(self._referenced)
        return self.summary

    def _scan_top_level(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            self._top_names.add(stmt.name)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for t in targets:
                for n in ast.walk(t):
                    if isinstance(n, ast.Name):
                        self._top_names.add(n.id)
            value = stmt.value
            if isinstance(value, ast.Call):
                resolved = self.resolve(_dotted(value.func))
                if resolved in RNG_CONSTRUCTORS:
                    for t in targets:
                        if isinstance(t, ast.Name):
                            self.summary.rng_globals.append(t.id)

    def _register_function(self, node, qual: str) -> None:
        a = node.args
        self.summary.functions[qual] = {
            "line": node.lineno,
            "is_async": isinstance(node, ast.AsyncFunctionDef),
            "posargs": [x.arg for x in
                        (list(getattr(a, "posonlyargs", []))
                         + list(a.args))],
            "kwonly": [x.arg for x in a.kwonlyargs],
            "vararg": a.vararg is not None,
            "kwarg": a.kwarg is not None,
            "consumes_csr": False,
        }

    def _visit(self, node: ast.AST, ctx: _FnCtx,
               cls: str | None = None) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if ctx.qual == "<module>":
                qual = f"{cls}.{node.name}" if cls else node.name
                fn_ctx = _FnCtx(qual, cls, node)
                self._register_function(node, qual)
            else:                      # nested def: fold into parent
                fn_ctx = ctx
                fn_ctx.add_params(node)
            self._note_reference(node.name)
            for child in ast.iter_child_nodes(node):
                self._visit(child, fn_ctx)
            if fn_ctx.qual in self.summary.functions:
                self.summary.functions[fn_ctx.qual]["consumes_csr"] = (
                    fn_ctx.consumes_csr or self._csr_params(fn_ctx))
            return
        if isinstance(node, ast.ClassDef):
            if ctx.qual == "<module>":
                name = f"{cls}.{node.name}" if cls else node.name
                self.summary.classes[name] = {
                    "line": node.lineno,
                    "bases": [_dotted(b) for b in node.bases if _dotted(b)],
                }
                for child in ast.iter_child_nodes(node):
                    self._visit(child, ctx, cls=name)
            else:                      # class inside a function: fold
                for child in ast.iter_child_nodes(node):
                    self._visit(child, ctx)
            return

        self._collect(node, ctx)
        for child in ast.iter_child_nodes(node):
            self._visit(child, ctx, cls=cls)

    def _csr_params(self, ctx: _FnCtx) -> bool:
        return any(s <= ctx.params for s in _CSR_PARAM_SETS)

    # -- per-node collection --------------------------------------------

    def _collect(self, node: ast.AST, ctx: _FnCtx) -> None:
        if isinstance(node, ast.Name):
            self._note_reference(node.id)
        elif isinstance(node, ast.Attribute):
            self._note_reference(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for a in node.names:
                self._note_reference(a.asname or a.name.partition(".")[0])
                self._note_reference(a.name.rpartition(".")[2])
        elif isinstance(node, ast.Global):
            ctx.globals_declared.update(node.names)
        elif isinstance(node, ast.Compare):
            self.compares.append((ctx, node))
        elif isinstance(node, ast.ExceptHandler):
            self.handlers.append(node)
        elif isinstance(node, ast.Await):
            self._collect_await(node)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._collect_assign(node, ctx)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            # `with ServeClient(...) as c:` types c exactly like
            # `c = ServeClient(...)` would, so calls on context-managed
            # locals resolve interprocedurally.
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    self._track_local_value(item.optional_vars.id,
                                            item.context_expr, ctx)
        elif isinstance(node, ast.Call):
            self._collect_call(node, ctx)

    def _note_reference(self, name: str) -> None:
        if self.sf.in_tests and name:
            self._referenced.add(name)

    def _collect_await(self, node: ast.Await) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            func = value.func
            callee = (func.attr if isinstance(func, ast.Attribute)
                      else func.id if isinstance(func, ast.Name) else "")
            self.awaits.append((node.lineno, callee, _dotted(value.func),
                                True))
        else:
            self.awaits.append((node.lineno, "", "", False))

    def _module_state_root(self, expr: ast.AST, ctx: _FnCtx) -> str | None:
        """Dotted name of module-level state an expression addresses.

        Walks down ``Attribute``/``Subscript`` chains to the root
        ``Name``; returns a dotted description when that root is a
        module-level binding of this module or an imported module
        alias (e.g. ``sys`` for ``sys.path``) — i.e. state shared
        across calls and, after a fork, with the parent's other work.
        """
        parts: list[str] = []
        while isinstance(expr, (ast.Attribute, ast.Subscript)):
            if isinstance(expr, ast.Attribute):
                parts.append(expr.attr)
            expr = expr.value
        if not isinstance(expr, ast.Name):
            return None
        name = expr.id
        if name in ctx.params or name in ctx.local_types:
            return None
        if name in ctx.globals_declared or name in self._top_names:
            resolved = f"{self.module}.{name}"
        elif name in self.summary.imports:
            if not parts:
                # A bare imported-module receiver (``np.sort(...)``) is
                # a function call on that module, not a mutation of its
                # state; ``sys.path.insert`` keeps its attribute chain.
                return None
            resolved = self.summary.imports[name]
        else:
            return None
        return ".".join([resolved] + list(reversed(parts)))

    def _collect_assign(self, node, ctx: _FnCtx) -> None:
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        if ctx.qual != "<module>":
            for t in targets:
                if isinstance(t, ast.Name):
                    if t.id in ctx.globals_declared:
                        self._record_write(node.lineno,
                                           f"{self.module}.{t.id}", ctx)
                    else:
                        self._track_local(t.id, node, ctx)
                elif isinstance(t, (ast.Subscript, ast.Attribute)):
                    root = self._module_state_root(t, ctx)
                    if root is not None:
                        self._record_write(node.lineno, root, ctx)

    def _track_local(self, name: str, node, ctx: _FnCtx) -> None:
        self._track_local_value(name, getattr(node, "value", None), ctx)

    def _track_local_value(self, name: str, value, ctx: _FnCtx) -> None:
        if isinstance(value, ast.Call):
            resolved = self.resolve(_dotted(value.func))
            if resolved in RNG_CONSTRUCTORS:
                # Provenance of the new Generator: fed by a parameter
                # (good), a constant/derived seed, or nothing at all
                # (fresh OS entropy — never replayable).
                born = ("const" if value.args or value.keywords
                        else "unseeded")
                for arg in ast.walk(value):
                    if (isinstance(arg, ast.Name)
                            and arg.id in ctx.params):
                        born = "param"
                        break
                ctx.rng_locals[name] = born
            elif (resolved is not None
                    and resolved.rpartition(".")[2][:1].isupper()):
                # Only constructor-shaped calls type a local ("g =
                # Hypergraph(...)"); "raw = os.environ.get(...)" must
                # not make raw.isdigit() look like an environ access.
                ctx.local_types[name] = resolved
        elif isinstance(value, ast.Name):
            if value.id in ctx.rng_locals:
                ctx.rng_locals[name] = ctx.rng_locals[value.id]
            elif value.id in ctx.local_types:
                ctx.local_types[name] = ctx.local_types[value.id]

    def _record_write(self, line: int, name: str, ctx: _FnCtx) -> None:
        self.summary.global_writes.setdefault(ctx.qual, []).append(
            [line, name])

    def _record_call(self, line: int, resolved: str | None,
                     written: str, ctx: _FnCtx) -> None:
        if resolved is None:
            return
        self.summary.calls.setdefault(ctx.qual, []).append(
            [line, resolved, written])
        self.call_records.append((ctx.qual, line, resolved, written))

    def _resolve_call_target(self, func: ast.AST,
                             ctx: _FnCtx) -> tuple[str | None, str]:
        written = _dotted(func)
        if not written:
            if isinstance(func, ast.Attribute):      # X(...).method etc.
                return None, func.attr
            return None, ""
        head, _, rest = written.partition(".")
        if head in ("self", "cls") and ctx.cls and rest:
            return f"{self.module}.{ctx.cls}.{rest}", written
        if head in ctx.rng_locals or head in ctx.params:
            # calls *on* rng locals are draws, handled in _collect_call
            return None, written
        if head in ctx.local_types and rest:
            return f"{ctx.local_types[head]}.{rest}", written
        resolved = self.resolve(written)
        if resolved is None and written == "open":
            # Builtin open (params/locals shadowing it returned above):
            # a blocking-I/O sink the async-blocking pass needs to see.
            return "builtins.open", written
        return resolved, written

    def _collect_call(self, node: ast.Call, ctx: _FnCtx) -> None:
        resolved, written = self._resolve_call_target(node.func, ctx)
        self._record_call(node.lineno, resolved, written, ctx)

        # CSR consumption: `ptr, pins = graph.csr()` and friends.
        if written.endswith(".csr"):
            ctx.consumes_csr = True

        # Worker entrypoints: Process(target=fn) registers fn.
        tail = written.rpartition(".")[2]
        if tail == "Process":
            for kw in node.keywords:
                if kw.arg == "target":
                    tgt, _w = self._resolve_call_target(kw.value, ctx)
                    if tgt is None:
                        tgt = self.resolve(_dotted(kw.value))
                    if tgt is not None:
                        self.summary.process_targets.append(tgt)

        # Mutating method on module-level state (fork-safety fact).
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
                and ctx.qual != "<module>"):
            root = self._module_state_root(node.func.value, ctx)
            if root is not None:
                self._record_write(node.lineno,
                                   f"{root}.{node.func.attr}()", ctx)

        # RNG provenance facts.
        self._collect_rng(node, written, ctx)

        # Experiment-spec registrations (registry dispatch).
        if tail == "_bench" and len(node.args) >= 6:
            vals = [a.value if isinstance(a, ast.Constant) else None
                    for a in node.args[:6]]
            tags = ["smoke"]
            for kw in node.keywords:
                if kw.arg == "tags":
                    tags = self._tag_names(kw.value)
            self.summary.registrations.append({
                "name": vals[0], "module": vals[3], "func": vals[4],
                "check": vals[5], "line": node.lineno, "tags": tags})
        elif tail == "ExperimentSpec":
            kw = {k.arg: k.value for k in node.keywords if k.arg}
            const = {name: (v.value if isinstance(v, ast.Constant) else None)
                     for name, v in kw.items()}
            if "module" in kw or "func" in kw:
                self.summary.registrations.append({
                    "name": const.get("name"),
                    "module": const.get("module"),
                    "func": const.get("func"),
                    "check": const.get("check"),
                    "line": node.lineno,
                    "tags": (self._tag_names(kw["tags"])
                             if "tags" in kw else [])})
        elif tail == "register_scheduler" and len(node.args) >= 2:
            # Sim-scheduler registry dispatch: register_scheduler(name,
            # Cls) makes every method of Cls reachable by name at
            # simulate time (CallGraph.sim_entrypoints).
            name_arg = node.args[0]
            tgt, _w = self._resolve_call_target(node.args[1], ctx)
            if tgt is None:
                tgt = self.resolve(_dotted(node.args[1]))
            self.summary.registrations.append({
                "kind": "sim-scheduler",
                "name": (name_arg.value
                         if isinstance(name_arg, ast.Constant) else None),
                "target": tgt, "line": node.lineno, "tags": []})

    @staticmethod
    def _tag_names(expr: ast.AST) -> list[str]:
        return sorted({n.id.lower() for n in ast.walk(expr)
                       if isinstance(n, ast.Name)
                       and n.id not in ("frozenset", "set", "tuple")})

    def _collect_rng(self, node: ast.Call, written: str,
                     ctx: _FnCtx) -> None:
        if ctx.qual == "<module>":
            return
        draws = self.summary.rng_draws
        head, _, rest = written.partition(".")
        if rest and "." not in rest:      # one-level method call x.m()
            if head in self.summary.rng_globals:
                draws.setdefault(ctx.qual, []).append(
                    [node.lineno, "global", head])
            elif head in ctx.rng_locals:
                draws.setdefault(ctx.qual, []).append(
                    [node.lineno, ctx.rng_locals[head], head])
            elif head in ctx.rng_params:
                draws.setdefault(ctx.qual, []).append(
                    [node.lineno, "param", head])
        for arg in list(node.args) + [k.value for k in node.keywords]:
            if (isinstance(arg, ast.Name)
                    and arg.id in self.summary.rng_globals):
                draws.setdefault(ctx.qual, []).append(
                    [node.lineno, "global-arg", arg.id])


def extract_summary(sf: SourceFile) -> ModuleSummary:
    """One-walk extraction: facts + file-local rule findings.

    The per-function CFG passes (resource-safety, dtype-bounds,
    task-lifecycle, shm-publish) run here too: their verdicts depend on
    this module's bytes alone, so embedding them in the summary lets
    the incremental cache replay them without rebuilding a single CFG.
    The concurrency fact layer (:mod:`repro.analyze.concurrency`) is
    collected here for the same reason — the whole-program
    lock-discipline and fork-hygiene passes read cached facts, never
    cached source.
    """
    from . import rules
    from .concurrency import collect_concurrency
    from .passes import (dtype_bounds, resource_safety, shm_publish,
                         task_lifecycle)

    ex = Extractor(sf)
    summary = ex.run()
    summary.concurrency = collect_concurrency(sf, ex)
    summary.local_findings = [
        [f.line, f.rule, f.message] for f in rules.run_local_rules(sf, ex)]
    summary.path_findings = [
        [f.line, f.rule, f.message, [[ln, note] for (_p, ln, note) in f.flow]]
        for f in (*resource_safety.analyze(sf, ex),
                  *dtype_bounds.analyze(sf, ex),
                  *task_lifecycle.analyze(sf, ex),
                  *shm_publish.analyze(sf, ex))]
    return summary


# ---------------------------------------------------------------------------
# The linked program
# ---------------------------------------------------------------------------

class ModuleIndex:
    """All summaries of one analysis run, joined for cross-module work."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.summaries = list(summaries)
        self.by_module: dict[str, ModuleSummary] = {}
        self.by_path: dict[str, ModuleSummary] = {}
        for s in self.summaries:
            self.by_module.setdefault(s.module, s)
            self.by_path[s.path] = s

    def module(self, name: str) -> ModuleSummary | None:
        return self.by_module.get(name)

    def resolve_symbol(
        self, dotted: str, _seen: frozenset = frozenset(),
    ) -> tuple[ModuleSummary, str] | None:
        """Resolve an absolute dotted name to ``(module, qualname)``.

        Follows re-export chains: if ``repro.analyze.__init__`` does
        ``from .engine import Finding`` then ``repro.analyze.Finding``
        resolves into ``repro.analyze.engine``.  Returns None for
        external names (numpy, stdlib, ...).
        """
        if dotted in _seen:
            return None
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            mod = ".".join(parts[:i])
            s = self.by_module.get(mod)
            if s is None:
                continue
            rest = parts[i:]
            if not rest:
                return (s, "<module>")
            qual = ".".join(rest)
            if qual in s.functions:
                return (s, qual)
            if qual in s.classes:
                return (s, qual)
            head = rest[0]
            if head in s.classes and len(rest) > 1:
                # method on a class, maybe inherited: try base classes
                for base in s.classes[head].get("bases", []):
                    rebased = self._rebase(s, base, rest[1:])
                    if rebased is not None:
                        hit = self.resolve_symbol(
                            rebased, _seen | {dotted})
                        if hit is not None:
                            return hit
                return None
            if head in s.imports:
                target = s.imports[head] + (
                    "." + ".".join(rest[1:]) if rest[1:] else "")
                return self.resolve_symbol(target, _seen | {dotted})
            return None
        return None

    def _rebase(self, s: ModuleSummary, base_dotted: str,
                rest: list[str]) -> str | None:
        head = base_dotted.partition(".")[0]
        if head in s.imports:
            resolved = s.imports[head] + base_dotted[len(head):]
        elif base_dotted in s.classes:
            resolved = f"{s.module}.{base_dotted}"
        else:
            return None
        return ".".join([resolved] + rest)

    def dependencies(self) -> dict[str, set[str]]:
        """module -> set of project modules it imports/calls into."""
        names = set(self.by_module)
        out: dict[str, set[str]] = {s.module: set() for s in self.summaries}
        for s in self.summaries:
            targets = list(s.imports.values())
            for records in s.calls.values():
                targets.extend(r[1] for r in records)
            for t in targets:
                parts = t.split(".")
                for i in range(len(parts), 0, -1):
                    mod = ".".join(parts[:i])
                    if mod in names and mod != s.module:
                        out[s.module].add(mod)
                        break
        return out

    def reverse_closure(self, roots: Iterable[str]) -> set[str]:
        """Roots plus every module that transitively depends on them."""
        deps = self.dependencies()
        rev: dict[str, set[str]] = {m: set() for m in deps}
        for m, ds in deps.items():
            for d in ds:
                rev.setdefault(d, set()).add(m)
        seen = set()
        stack = [r for r in roots if r in rev or r in deps]
        while stack:
            m = stack.pop()
            if m in seen:
                continue
            seen.add(m)
            stack.extend(rev.get(m, ()))
        return seen


def _git_lines(args: list[str], cwd) -> list[str] | None:
    try:
        proc = subprocess.run(["git", *args], cwd=cwd, text=True,
                              capture_output=True, timeout=30)
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return [ln for ln in proc.stdout.splitlines() if ln.strip()]


def changed_scope(index: ModuleIndex, root=None):
    """(paths-in-scope, n-changed, missing) per git, or None outside.

    Scope = modules whose files changed vs HEAD (worktree + index +
    untracked) plus their reverse-dependency closure — the modules
    whose analysis verdict could have been altered by the change.

    ``missing`` lists git-reported ``.py`` paths that no longer exist
    on disk (deletions, old names of renames), as repo-relative posix
    strings.  They cannot be analysed, but they still *root* the
    closure: modules that imported a deleted module are exactly the
    ones whose verdict the deletion may have changed.
    """
    cwd = Path(root) if root is not None else Path.cwd()
    top = _git_lines(["rev-parse", "--show-toplevel"], cwd)
    if not top:
        return None
    toplevel = Path(top[0])
    # --no-renames: a rename must surface its *old* path too (as a
    # deletion) so the stale cache summary is evicted and the old
    # module's importers root the closure.
    changed = _git_lines(["diff", "--name-only", "--no-renames", "HEAD"],
                         cwd)
    untracked = _git_lines(["ls-files", "--others", "--exclude-standard"],
                           cwd)
    if changed is None:
        return None
    reported = changed + (untracked or [])
    missing = sorted({Path(p).as_posix() for p in reported
                      if p.endswith(".py")
                      and not (toplevel / p).exists()})
    changed_real = {os.path.realpath(toplevel / p) for p in reported
                    if (toplevel / p).exists()}
    roots = [s.module for s in index.summaries
             if os.path.realpath(s.path) in changed_real]
    roots += [module_name_for(Path(p)) for p in missing]
    scope = index.reverse_closure(roots)
    paths = {s.path for s in index.summaries if s.module in scope}
    return paths, len(roots), missing
