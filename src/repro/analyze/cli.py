"""``repro analyze`` — run the whole-program analysis from the CLI.

Exit status: 0 when no *new* finding is at or above ``--fail-on``
(grandfathered baseline entries never fail the run), 1 otherwise, and
2 when ``--fix`` refuses to run (dirty git tree).
"""

from __future__ import annotations

import json
from pathlib import Path

from .baseline import DEFAULT_BASELINE, Baseline, write_baseline
from .engine import run_analysis, severity_at_least

__all__ = ["add_analyze_parser", "analyze_main"]

_DEFAULT_PATHS = ("src", "tests", "benchmarks")


def add_analyze_parser(sub) -> None:
    p = sub.add_parser(
        "analyze",
        help="whole-program static analysis: file-local rules, "
             "call-graph dataflow passes (determinism, fork-safety, "
             "rng-provenance), incremental cache, SARIF + baselines")
    p.add_argument("paths", nargs="*", default=list(_DEFAULT_PATHS),
                   help="files or directories to analyze "
                        f"(default: {' '.join(_DEFAULT_PATHS)})")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", dest="fmt",
                   help="output format (default: text)")
    p.add_argument("--incremental", action="store_true",
                   help="reuse per-module summaries from the "
                        "content-addressed .analyze-cache/")
    p.add_argument("--changed", action="store_true",
                   help="report only findings in git-changed modules "
                        "plus their reverse-dependency closure")
    p.add_argument("--cache-dir", default=None,
                   help="summary cache location (default: .analyze-cache)")
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="parse/summarise modules across N worker "
                        "processes (findings are byte-identical to "
                        "serial; default: 1)")
    p.add_argument("--fail-on", choices=("note", "warning", "error",
                                         "never"),
                   default="warning", dest="fail_on",
                   help="lowest severity of a NEW finding that fails the "
                        "run (default: warning)")
    p.add_argument("--baseline", default=None,
                   help="grandfathering baseline (default: "
                        f"{DEFAULT_BASELINE} when present)")
    p.add_argument("--write-baseline", action="store_true",
                   help="accept all current findings into the baseline "
                        "and exit")
    p.add_argument("--fix", action="store_true",
                   help="apply the mechanical autofixes first (clean "
                        "git tree required)")
    p.add_argument("--stats", action="store_true",
                   help="print cache reuse and file counts")


def analyze_main(args) -> int:
    if getattr(args, "fix", False):
        from .fix import FixRefused, apply_fixes

        try:
            applied = apply_fixes(args.paths)
        except FixRefused as exc:
            print(f"repro analyze --fix: {exc}")
            return 2
        for fix in applied:
            print(f"fixed {fix.path}:{fix.line}: {fix.rule}: "
                  f"{fix.description}")

    report = run_analysis(
        args.paths,
        incremental=getattr(args, "incremental", False),
        cache_dir=getattr(args, "cache_dir", None),
        changed_only=getattr(args, "changed", False),
        jobs=max(1, getattr(args, "jobs", 1) or 1))
    findings = report.findings

    baseline_path = getattr(args, "baseline", None)
    if baseline_path is None and Path(DEFAULT_BASELINE).exists():
        baseline_path = DEFAULT_BASELINE
    if getattr(args, "write_baseline", False):
        target = baseline_path or DEFAULT_BASELINE
        n = write_baseline(target, findings)
        print(f"repro analyze: wrote {n} "
              f"entr{'y' if n == 1 else 'ies'} to {target}")
        return 0

    new, grandfathered, stale = findings, [], []
    if baseline_path is not None:
        bl = Baseline(baseline_path)
        if bl.error:
            print(f"repro analyze: warning: {bl.error}")
        new, grandfathered = bl.split(findings)
        stale = bl.stale_notes(findings)
    reported = sorted(new + stale)

    if args.fmt == "json":
        print(json.dumps({
            "findings": [f.to_json() for f in reported],
            "grandfathered": len(grandfathered),
            "files": report.files,
            "reused": report.reused,
        }, indent=2))
    elif args.fmt == "sarif":
        from .sarif import to_sarif

        print(json.dumps(to_sarif(sorted(findings + stale)), indent=2))
    else:
        for f in reported:
            print(f.render())
        if grandfathered:
            print(f"repro analyze: {len(grandfathered)} grandfathered "
                  f"finding(s) suppressed by {baseline_path}")
        if report.scope_note:
            print(f"repro analyze: {report.scope_note}")
        if getattr(args, "stats", False):
            print(f"repro analyze: {report.files} file(s), "
                  f"{report.reused} summarie(s) from cache, "
                  f"{report.extracted} extracted")
        n = len(reported)
        print(f"repro analyze: {n} finding{'s' if n != 1 else ''}")

    fail_on = getattr(args, "fail_on", "warning")
    if fail_on == "never":
        return 0
    return 1 if any(severity_at_least(f.severity, fail_on)
                    for f in reported) else 0
