"""``repro analyze`` — run the static-analysis pass from the CLI."""

from __future__ import annotations

import json

from .engine import analyze_paths

__all__ = ["add_analyze_parser", "analyze_main"]

_DEFAULT_PATHS = ("src", "tests", "benchmarks")


def add_analyze_parser(sub) -> None:
    p = sub.add_parser(
        "analyze",
        help="static invariant checks (seed discipline, silent excepts, "
             "kernel-oracle parity, runner signatures, ...)")
    p.add_argument("paths", nargs="*", default=list(_DEFAULT_PATHS),
                   help="files or directories to analyze "
                        f"(default: {' '.join(_DEFAULT_PATHS)})")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   dest="fmt", help="output format (default: text)")


def analyze_main(args) -> int:
    findings = analyze_paths(args.paths)
    if args.fmt == "json":
        print(json.dumps([{"path": f.path, "line": f.line,
                           "rule": f.rule, "message": f.message}
                          for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
        n = len(findings)
        print(f"repro analyze: {n} finding{'s' if n != 1 else ''}")
    return 1 if findings else 0
