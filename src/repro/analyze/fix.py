"""``repro analyze --fix`` — autofixer for the mechanical rules.

Two rewrites, both purely local to the flagged line(s):

* ``float-cost-eq`` — a raw ``==`` / ``!=`` whose operands mention a
  cost/gain quantity becomes ``close(a, b)`` / ``not close(a, b)``,
  and ``from repro.core.tolerance import close`` is added when
  missing;
* ``silent-except`` — a bare ``except:`` becomes ``except
  Exception:``, and a handler whose whole body is ``pass`` re-raises.

Safety gate: fixes are applied **only on a clean git tree** (inside a
work tree, ``git status --porcelain`` empty), so every rewrite is
reviewable as its own diff and trivially revertible.  Anything less
mechanical — suppressions, dataflow findings, structural rules — is
left to a human plus a pragma with a reason.
"""

from __future__ import annotations

import ast
import re
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from .engine import collect_files
from .rules import _handles, _is_broad, _mentions_cost

__all__ = ["Applied", "FixRefused", "apply_fixes"]

_TOLERANCE_IMPORT_RE = re.compile(
    r"^from repro\.core\.tolerance import (?P<names>.+?)\s*$")


class FixRefused(RuntimeError):
    """Raised when the clean-git-tree gate blocks ``--fix``."""


@dataclass(frozen=True)
class Applied:
    path: str
    line: int
    rule: str
    description: str


def _git(args: list[str], cwd: Path) -> subprocess.CompletedProcess | None:
    try:
        return subprocess.run(["git", *args], cwd=cwd, text=True,
                              capture_output=True, timeout=30)
    except (OSError, subprocess.SubprocessError):
        return None


def _ensure_clean_git(root: Path) -> None:
    inside = _git(["rev-parse", "--is-inside-work-tree"], root)
    if inside is None:
        raise FixRefused("git is unavailable; --fix only runs on clean "
                         "git trees")
    if inside.returncode != 0 or inside.stdout.strip() != "true":
        raise FixRefused("not inside a git work tree; --fix refuses to "
                         "edit unversioned files")
    status = _git(["status", "--porcelain"], root)
    if status is None or status.returncode != 0:
        raise FixRefused("`git status` failed; cannot verify the tree "
                         "is clean")
    if status.stdout.strip():
        raise FixRefused("git tree has uncommitted changes; commit or "
                         "stash them so each fix is its own diff")


def _edit_span(line: str, col: int, end_col: int, new: str) -> str:
    """Replace a byte-offset span (ast col offsets are utf-8 bytes)."""
    raw = line.encode("utf-8")
    return (raw[:col] + new.encode("utf-8") + raw[end_col:]).decode("utf-8")


def _fix_compares(tree: ast.Module, text: str, lines: list[str],
                  posix: str, applied: list[Applied]) -> bool:
    """Rewrite flagged cost comparisons in place; True if any changed."""
    edits: list[tuple[int, int, int, str, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        op = node.ops[0]
        if not isinstance(op, (ast.Eq, ast.NotEq)):
            continue
        if node.lineno != node.end_lineno:
            continue
        operands = [node.left, node.comparators[0]]
        if not any(_mentions_cost(o) for o in operands):
            continue
        left = ast.get_source_segment(text, node.left)
        right = ast.get_source_segment(text, node.comparators[0])
        if left is None or right is None:
            continue
        if isinstance(op, ast.Eq):
            new = f"close({left}, {right})"
            what = f"{left} == {right} -> {new}"
        else:
            new = f"not close({left}, {right})"
            what = f"{left} != {right} -> {new}"
        edits.append((node.lineno, node.col_offset,
                      node.end_col_offset, new, what))
    # Apply right-to-left so earlier byte offsets stay valid.
    for lineno, col, end_col, new, what in sorted(edits, reverse=True):
        lines[lineno - 1] = _edit_span(lines[lineno - 1], col, end_col, new)
        applied.append(Applied(posix, lineno, "float-cost-eq", what))
    return bool(edits)


def _ensure_close_import(lines: list[str], tree: ast.Module) -> None:
    for i, line in enumerate(lines):
        m = _TOLERANCE_IMPORT_RE.match(line.rstrip("\n"))
        if m is None:
            continue
        names = [n.strip() for n in m.group("names").split(",")]
        if "close" in names:
            return
        lines[i] = (f"from repro.core.tolerance import "
                    f"{', '.join(names + ['close'])}\n")
        return
    insert_at = 0
    for node in tree.body:
        if (isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)):
            insert_at = node.end_lineno or insert_at
            continue
        if (isinstance(node, ast.ImportFrom)
                and node.module == "__future__"):
            insert_at = node.end_lineno or insert_at
            continue
        break
    lines.insert(insert_at, "from repro.core.tolerance import close\n")


def _fix_excepts(tree: ast.Module, lines: list[str], posix: str,
                 applied: list[Applied]) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node) or _handles(node):
            continue
        if node.type is None:
            lineno = node.lineno
            fixed = re.sub(r"except\s*:", "except Exception:",
                           lines[lineno - 1], count=1)
            if fixed != lines[lineno - 1]:
                lines[lineno - 1] = fixed
                applied.append(Applied(
                    posix, lineno, "silent-except",
                    "bare except: -> except Exception:"))
        if len(node.body) == 1 and isinstance(node.body[0], ast.Pass):
            stmt = node.body[0]
            lines[stmt.lineno - 1] = _edit_span(
                lines[stmt.lineno - 1], stmt.col_offset,
                stmt.col_offset + len("pass"), "raise")
            applied.append(Applied(
                posix, stmt.lineno, "silent-except",
                "silent handler body: pass -> raise"))


def apply_fixes(paths: Sequence[str | Path], *,
                root: str | Path | None = None,
                require_clean: bool = True) -> list[Applied]:
    """Apply the mechanical fixes under ``paths``; returns what changed.

    Raises :class:`FixRefused` unless run on a clean git tree (disable
    via ``require_clean=False`` for programmatic use on scratch dirs).
    """
    base = Path(root) if root is not None else Path.cwd()
    if require_clean:
        _ensure_clean_git(base)
    applied: list[Applied] = []
    for path in collect_files(paths):
        try:
            text = path.read_text()
            tree = ast.parse(text, filename=str(path))
        except (OSError, SyntaxError, UnicodeDecodeError, ValueError):
            continue
        lines = text.splitlines(keepends=True)
        before = len(applied)
        fixed_compares = ("src" in path.parts      # float-cost-eq scope
                          and _fix_compares(tree, text, lines,
                                            path.as_posix(), applied))
        _fix_excepts(tree, lines, path.as_posix(), applied)
        if fixed_compares:
            # Inserting the import shifts lines, so it must come after
            # every offset-based edit above.
            _ensure_close_import(lines, tree)
        if len(applied) > before:
            path.write_text("".join(lines))
    return applied
