"""Static analysis + opt-in runtime sanitizers for the repro codebase.

Two halves, one goal — keeping the invariants the reproduction rests on
machine-checked instead of tribal:

* :mod:`repro.analyze.engine` / :mod:`repro.analyze.rules` — an
  AST-based lint pass (``repro analyze``) enforcing seed discipline,
  no silent ``except``, kernel/oracle parity, runner signatures,
  tolerance-based float comparison, and the error hierarchy.
* :mod:`repro.analyze.sanitize` — runtime checks (CSR well-formedness,
  partition validity, balance, hyperDAG certificates) injected at
  kernel/partitioner boundaries; zero-overhead no-ops unless
  ``REPRO_SANITIZE=1``.
"""

from .engine import Finding, analyze_paths, collect_files

__all__ = ["Finding", "analyze_paths", "collect_files"]
