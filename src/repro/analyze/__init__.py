"""Static analysis + opt-in runtime sanitizers for the repro codebase.

Two halves, one goal — keeping the invariants the reproduction rests on
machine-checked instead of tribal:

* the ``repro analyze`` whole-program analysis platform:

  - :mod:`repro.analyze.engine` — three-stage pipeline (extract /
    link / check) shared by cold and ``--incremental`` runs;
  - :mod:`repro.analyze.index` — per-module summaries and the symbol
    index (import aliasing, ``__init__`` re-exports);
  - :mod:`repro.analyze.callgraph` / :mod:`repro.analyze.dataflow` —
    the project call graph and deterministic reachability used by the
    interprocedural passes;
  - :mod:`repro.analyze.rules` — file-local rules (seed discipline,
    silent excepts, float tolerance, serve timeouts);
  - :mod:`repro.analyze.passes` — structural repo rules plus the
    determinism / fork-safety / rng-provenance dataflow passes;
  - :mod:`repro.analyze.cache`, :mod:`repro.analyze.baseline`,
    :mod:`repro.analyze.sarif`, :mod:`repro.analyze.fix` — the
    incremental cache, grandfathering baseline, SARIF 2.1.0 export,
    and the ``--fix`` autofixer.

* :mod:`repro.analyze.sanitize` — runtime checks (CSR well-formedness,
  partition validity, balance, hyperDAG certificates) injected at
  kernel/partitioner boundaries; zero-overhead no-ops unless
  ``REPRO_SANITIZE=1``.

See ``docs/ANALYZE.md`` for the full rule/pass reference.
"""

from .engine import (AnalysisReport, Finding, analyze_paths, collect_files,
                     run_analysis)

__all__ = ["AnalysisReport", "Finding", "analyze_paths", "collect_files",
           "run_analysis"]
