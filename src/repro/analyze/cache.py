"""Content-addressed summary cache backing ``repro analyze --incremental``.

One JSON file per analyzed module under ``.analyze-cache/``, keyed by
``sha256(engine version, path, file bytes)`` — the same
content-address discipline as ``.lab-cache/``.  A hit replays the
extract stage (summary + embedded file-local findings) without
parsing; the whole-program link/check stages always run, so a change
in module B is re-judged against every importer of B even though those
importers were served from cache.

Writes are atomic (temp file + ``os.replace``), so a killed run never
leaves a half-written summary, and corrupt or version-skewed entries
read as misses.  The key includes :data:`~repro.analyze.index
.ENGINE_VERSION`, so shipping new rules invalidates every entry
without a manual flush.

The default directory honours the ``REPRO_ANALYZE_CACHE`` environment
variable (an explicit ``cache_dir`` argument still wins): benchmarks
and CI point it at a scratch directory so the host's warm cache can
neither skew timings nor leak state into a measured run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from .index import ENGINE_VERSION, ModuleSummary

__all__ = ["DEFAULT_CACHE_DIR", "SummaryCache"]

DEFAULT_CACHE_DIR = ".analyze-cache"


class SummaryCache:
    def __init__(self, cache_dir: str | Path | None = None) -> None:
        if cache_dir is None:
            cache_dir = (os.environ.get("REPRO_ANALYZE_CACHE")
                         or DEFAULT_CACHE_DIR)
        self.dir = Path(cache_dir)

    def _entry(self, posix: str, raw: bytes) -> Path:
        h = hashlib.sha256()
        h.update(ENGINE_VERSION.encode())
        h.update(b"\0")
        h.update(posix.encode())
        h.update(b"\0")
        h.update(raw)
        key = h.hexdigest()
        return self.dir / key[:2] / f"{key}.json"

    def get(self, posix: str, raw: bytes) -> ModuleSummary | None:
        entry = self._entry(posix, raw)
        try:
            data = json.loads(entry.read_text())
        except (OSError, ValueError):
            return None
        try:
            return ModuleSummary.from_json(data)
        except (KeyError, TypeError, ValueError):
            return None

    def evict_path(self, posix: str) -> int:
        """Drop every cached summary for ``posix``; returns count.

        The content-addressed key needs the file's bytes, which a
        deleted file no longer has — so eviction scans entries and
        matches on the recorded path instead.  Unreadable entries are
        skipped (they already read as misses).
        """
        evicted = 0
        try:
            entries = sorted(self.dir.glob("*/*.json"))
        except OSError:
            return 0
        for entry in entries:
            try:
                data = json.loads(entry.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(data, dict) and data.get("path") == posix:
                try:
                    entry.unlink()
                    evicted += 1
                except OSError:
                    continue
        return evicted

    def put(self, posix: str, raw: bytes, summary: ModuleSummary) -> None:
        entry = self._entry(posix, raw)
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=entry.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(summary.to_json(), fh, separators=(",", ":"))
                os.replace(tmp, entry)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache dir degrades to a cold run; the
            # analysis result is unaffected.
            return
