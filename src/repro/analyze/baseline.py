"""Grandfathering baseline for ``repro analyze``.

``analyze-baseline.json`` is a checked-in list of *accepted* findings:
CI fails on anything new while pre-existing debt burns down visibly.
Entries are keyed on ``(path, rule, message)`` — deliberately **not**
on line numbers, so unrelated edits that shift a grandfathered finding
up or down do not break CI, while any change to what the finding says
(a different sink, a different chain) surfaces as new.

Baseline hygiene is itself checked: entries that no longer match any
current finding produce a ``stale-baseline`` note, and
``--write-baseline`` regenerates the file (sorted, no timestamps, so
the diff is exactly the debt delta).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from .engine import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE", "write_baseline"]

DEFAULT_BASELINE = "analyze-baseline.json"


def _key(finding: Finding) -> tuple[str, str, str]:
    return (finding.path, finding.rule, finding.message)


class Baseline:
    """A loaded baseline: split findings into new vs. grandfathered."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.entries: list[dict] = []
        self.error: str | None = None
        try:
            data = json.loads(self.path.read_text())
            self.entries = list(data["entries"])
            self._keys = {(e["path"], e["rule"], e["message"])
                          for e in self.entries}
        except FileNotFoundError:
            self._keys = set()
        except (OSError, KeyError, TypeError, ValueError) as exc:
            self._keys = set()
            self.error = f"unreadable baseline {self.path}: {exc}"

    def split(self, findings: Sequence[Finding]
              ) -> tuple[list[Finding], list[Finding]]:
        """``(new, grandfathered)`` partition of ``findings``."""
        new, old = [], []
        for f in findings:
            (old if _key(f) in self._keys else new).append(f)
        return new, old

    def stale_notes(self, findings: Sequence[Finding]) -> list[Finding]:
        """One ``stale-baseline`` note per entry matching nothing."""
        current = {_key(f) for f in findings}
        out = []
        for e in sorted(self.entries,
                        key=lambda e: (e.get("path", ""), e.get("rule", ""),
                                       e.get("message", ""))):
            key = (e.get("path", ""), e.get("rule", ""), e.get("message", ""))
            if key not in current:
                out.append(Finding(
                    path=self.path.as_posix(), line=1,
                    rule="stale-baseline", severity="note",
                    message=f"baseline entry for {key[1]} at {key[0]} "
                            "matches no current finding; regenerate with "
                            "--write-baseline"))
        return out


def write_baseline(path: str | Path,
                   findings: Iterable[Finding]) -> int:
    """Write a sorted, timestamp-free baseline; returns entry count."""
    entries = sorted({_key(f) for f in findings})
    payload = {
        "version": 1,
        "comment": "accepted repro-analyze findings; regenerate with "
                   "`repro analyze --write-baseline` and justify "
                   "additions in the PR description",
        "entries": [{"path": p, "rule": r, "message": m}
                    for p, r, m in entries],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
    return len(entries)
