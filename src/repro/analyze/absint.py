"""Forward abstract interpretation over :mod:`repro.analyze.cfg` CFGs.

:func:`solve` runs the classic worklist algorithm: states flow forward
along CFG edges, meet at merge points through the lattice's ``join``,
and iterate to a fixpoint.  The engine is deliberately small and
generic — a *lattice* is any object with four methods:

``initial(cfg)``
    the state entering the CFG (parameter bounds, empty resource map);
``transfer(node, state) -> (normal, exceptional)``
    the effect of one node.  Two outputs because an exception edge
    leaves *mid-statement*: the default exceptional state is the
    input (the statement's effect may not have happened), but a
    lattice can commit effects to both (releasing a resource counts
    even if the ``close()`` call itself raises);
``refine(edge, state)``
    branch-sensitive narrowing on ``true``/``false`` edges (``if x is
    not None``, ``if n > budget: raise``) — this is where the passes
    get their path sensitivity;
``widen(old, new)``
    acceleration for unbounded-height domains (magnitude bounds under
    ``+=`` in a loop); finite lattices just return ``new``.

States are treated as opaque values compared with ``==``; lattices
return fresh immutable-by-convention dicts.  The worklist is kept
sorted, so the fixpoint — and every witness derived from it — is
deterministic, which the incremental engine's byte-identity contract
requires.

:func:`witness_path` reconstructs the shortest edge path from a source
node to a goal through edges an ``edge_ok`` predicate admits — the
passes use it to turn "this bad state reaches function exit" into a
concrete, replayable path (and the SARIF exporter into a
``codeFlow``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from .cfg import CFG, Edge

__all__ = ["Solution", "solve", "witness_path"]

#: After this many re-evaluations of one node, join goes through the
#: lattice's ``widen`` — bounds growing around a loop jump to top
#: instead of counting up forever.
_WIDEN_AFTER = 4


class Solution:
    """Fixpoint states, keyed by node id, plus per-edge replay."""

    def __init__(self, cfg: CFG, lattice, inputs: dict) -> None:
        self.cfg = cfg
        self.lattice = lattice
        self.inputs = inputs

    def edge_state(self, edge: Edge):
        """The state flowing along ``edge`` at the fixpoint."""
        src_in = self.inputs.get(edge.src)
        if src_in is None:
            return None
        normal, exceptional = self.lattice.transfer(
            self.cfg.nodes[edge.src], src_in)
        state = exceptional if edge.kind == "exc" else normal
        if edge.kind in ("true", "false"):
            state = self.lattice.refine(edge, state)
        return state


def solve(cfg: CFG, lattice, *, widen_after: int = _WIDEN_AFTER,
          ) -> Solution:
    """Forward worklist fixpoint of ``lattice`` over ``cfg``."""
    inputs: dict[int, object] = {cfg.entry: lattice.initial(cfg)}
    visits: dict[int, int] = {}
    worklist = {cfg.entry}
    while worklist:
        nid = min(worklist)
        worklist.discard(nid)
        visits[nid] = visits.get(nid, 0) + 1
        normal, exceptional = lattice.transfer(cfg.nodes[nid], inputs[nid])
        for edge in cfg.succs[nid]:
            state = exceptional if edge.kind == "exc" else normal
            if edge.kind in ("true", "false"):
                state = lattice.refine(edge, state)
            old = inputs.get(edge.dst)
            new = state if old is None else lattice.join(old, state)
            if old is not None and visits.get(edge.dst, 0) >= widen_after:
                new = lattice.widen(old, new)
            if new != old:
                inputs[edge.dst] = new
                worklist.add(edge.dst)
    return Solution(cfg, lattice, inputs)


def witness_path(cfg: CFG, start: int, goals: Iterable[int],
                 edge_ok: Callable[[Edge], bool]) -> list[Edge] | None:
    """Shortest edge path ``start -> goal`` through admitted edges.

    BFS in deterministic (construction) order; ``None`` when no goal
    is reachable under ``edge_ok``.
    """
    goal_set = set(goals)
    if start in goal_set:
        return []
    parent: dict[int, Edge] = {}
    queue: deque[int] = deque([start])
    seen = {start}
    while queue:
        nid = queue.popleft()
        for edge in cfg.succs[nid]:
            if edge.dst in seen or not edge_ok(edge):
                continue
            parent[edge.dst] = edge
            if edge.dst in goal_set:
                path = [edge]
                while path[0].src != start:
                    path.insert(0, parent[path[0].src])
                return path
            seen.add(edge.dst)
            queue.append(edge.dst)
    return None
