"""Interprocedural reachability with witness chains.

The three dataflow passes all reduce to the same question: *is this
program point reachable from one of these entrypoints, and if so, show
me a call chain the reviewer can follow*.  :class:`Reachability` runs
one multi-root BFS over the call graph; the BFS order is fully
deterministic (roots and successors visited in sorted order), so the
witness chain attached to a finding — and therefore the finding's
message bytes — is stable across runs, which the incremental engine's
byte-identity guarantee depends on.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping

from .callgraph import pretty_node

__all__ = ["Reachability"]


class Reachability:
    """Multi-root BFS; each reached node remembers one witness parent."""

    def __init__(self, edges: Mapping[str, Iterable[str]],
                 roots: Mapping[str, str]) -> None:
        #: node -> parent node on the witness path (None for roots)
        self.parent: dict[str, str | None] = {}
        #: node -> the root whose BFS claimed it first
        self.root_of: dict[str, str] = {}
        self.labels = dict(roots)
        queue: deque[str] = deque()
        for root in sorted(roots):
            if root not in self.parent:
                self.parent[root] = None
                self.root_of[root] = root
                queue.append(root)
        while queue:
            node = queue.popleft()
            for succ in sorted(edges.get(node, ())):
                if succ not in self.parent:
                    self.parent[succ] = node
                    self.root_of[succ] = self.root_of[node]
                    queue.append(succ)

    def __contains__(self, node: str) -> bool:
        return node in self.parent

    def __iter__(self):
        return iter(sorted(self.parent))

    def label(self, node: str) -> str:
        """Human label of the entrypoint that reaches ``node``."""
        return self.labels.get(self.root_of.get(node, ""), "?")

    def chain(self, node: str) -> list[str]:
        """Witness path ``[root, ..., node]`` of node ids."""
        path = [node]
        while self.parent.get(path[-1]) is not None:
            path.append(self.parent[path[-1]])  # type: ignore[arg-type]
        return list(reversed(path))

    def chain_text(self, node: str) -> str:
        return " -> ".join(pretty_node(n) for n in self.chain(node))
