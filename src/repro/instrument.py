"""Lightweight global counters for algorithm observability.

Hot algorithm paths (FM refinement, branch-and-bound, coarsening) bump
named counters here; the ``repro.lab`` executor resets them before a
task and snapshots them afterwards into the run journal, so every
journal record carries e.g. FM passes and B&B nodes expanded alongside
its timings.

The primitive is deliberately primitive — a module-level dict and an
increment — so instrumented code pays one dict update per *coarse*
event (a refinement pass, a completed search), never per inner-loop
step.  Counters are per-process; worker processes snapshot their own.
"""

from __future__ import annotations

__all__ = ["bump", "reset", "snapshot"]

_counts: dict[str, float] = {}


def bump(name: str, inc: float = 1) -> None:
    """Increment counter ``name`` by ``inc`` (created at 0 on first use)."""
    # repro: allow[fork-safety] — counters are per-process by design;
    # workers reset() post-fork and snapshot their own copy (docstring).
    _counts[name] = _counts.get(name, 0) + inc


def reset() -> None:
    """Zero all counters (start of a measured task)."""
    # repro: allow[fork-safety] — resetting the child's own copy of the
    # counters right after fork is the intended lifecycle.
    _counts.clear()


def snapshot() -> dict[str, float]:
    """Return a copy of the current counter values."""
    return dict(_counts)
