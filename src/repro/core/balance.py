"""Balance constraints (paper Definitions 3.1, 5.1 and 6.1, Appendix A).

The ε-balanced constraint requires ``|P_i| ≤ (1+ε)·n/k`` for every part.
The paper sometimes relaxes the threshold to ``ceil((1+ε)·n/k)`` so that a
balanced partitioning always exists; pass ``relaxed=True`` for that
variant.  The default uses ``floor`` (a partition of integers satisfies
``|P_i| ≤ (1+ε)n/k`` iff ``|P_i| ≤ floor((1+ε)n/k)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import InvalidPartitionError
from .tolerance import ATOL
from .partition import Partition, part_sizes

__all__ = [
    "balance_threshold",
    "is_balanced",
    "MultiConstraint",
    "max_nonempty_parts_bound",
    "min_parts_to_cover",
    "all_parts_nonempty_guaranteed",
]


def balance_threshold(n: int, k: int, eps: float, relaxed: bool = False) -> int:
    """Maximum allowed part size ``(1+ε)·n/k`` as an integer threshold.

    With ``relaxed=False`` (paper default) this is ``floor((1+ε)·n/k)``;
    with ``relaxed=True`` it is ``ceil((1+ε)·n/k)`` (Appendix A,
    "Non-integer thresholds").  Floating-point noise around exact integers
    is absorbed before rounding.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if eps < 0:
        raise ValueError(f"eps must be >= 0, got {eps}")
    exact = (1.0 + eps) * n / k
    # Snap to an adjacent integer when within floating noise of one, so
    # that e.g. eps=0.5, n=12, k=2 gives exactly 9 rather than 8/10.
    nearest = round(exact)
    if abs(exact - nearest) < ATOL * max(1.0, abs(exact)):
        return int(nearest)
    return int(math.ceil(exact)) if relaxed else int(math.floor(exact))


def is_balanced(
    partition: Partition | Sequence[int] | np.ndarray,
    eps: float,
    k: int | None = None,
    relaxed: bool = False,
) -> bool:
    """Check the ε-balance constraint of Definition 3.1."""
    if isinstance(partition, Partition):
        labels, kk = partition.labels, partition.k
    else:
        if k is None:
            raise ValueError("k required for raw label vectors")
        labels, kk = np.asarray(partition, dtype=np.int64), k
    n = int(labels.shape[0])
    cap = balance_threshold(n, kk, eps, relaxed=relaxed)
    return bool(part_sizes(labels, kk).max(initial=0) <= cap)


@dataclass(frozen=True)
class MultiConstraint:
    """Multi-constraint balance (Definition 6.1).

    ``subsets`` are disjoint node-id lists ``V_1, ..., V_c``; a
    partitioning is feasible iff for all ``j, i``:
    ``|P_i ∩ V_j| ≤ (1+ε)·|V_j|/k``.

    Layer-wise balance for hyperDAGs (Definition 5.1) is the special case
    where the subsets are the DAG layers — see
    :func:`repro.core.dag.DAG.layers`.
    """

    subsets: tuple[tuple[int, ...], ...]

    def __init__(self, subsets: Sequence[Sequence[int]]) -> None:
        norm = tuple(tuple(int(v) for v in s) for s in subsets)
        seen: set[int] = set()
        for s in norm:
            for v in s:
                if v in seen:
                    raise InvalidPartitionError(
                        f"node {v} appears in two constraint subsets"
                    )
                seen.add(v)
        object.__setattr__(self, "subsets", norm)

    @property
    def c(self) -> int:
        """Number of constraints."""
        return len(self.subsets)

    def is_feasible(
        self,
        partition: Partition | Sequence[int] | np.ndarray,
        eps: float,
        k: int | None = None,
        relaxed: bool = False,
    ) -> bool:
        if isinstance(partition, Partition):
            labels, kk = partition.labels, partition.k
        else:
            if k is None:
                raise ValueError("k required for raw label vectors")
            labels, kk = np.asarray(partition, dtype=np.int64), k
        for subset in self.subsets:
            if not subset:
                continue
            idx = np.asarray(subset, dtype=np.int64)
            cap = balance_threshold(len(subset), kk, eps, relaxed=relaxed)
            if part_sizes(labels[idx], kk).max(initial=0) > cap:
                return False
        return True

    def violations(
        self,
        partition: Partition,
        eps: float,
        relaxed: bool = False,
    ) -> list[tuple[int, int, int, int]]:
        """All violated (subset j, part i, size, cap) tuples, for diagnostics."""
        out = []
        for j, subset in enumerate(self.subsets):
            if not subset:
                continue
            idx = np.asarray(subset, dtype=np.int64)
            cap = balance_threshold(len(subset), partition.k, eps, relaxed=relaxed)
            sizes = part_sizes(partition.labels[idx], partition.k)
            for i, s in enumerate(sizes):
                if s > cap:
                    out.append((j, i, int(s), cap))
        return out


def max_nonempty_parts_bound(k: int, eps: float) -> int:
    """Lemma A.3: some optimal partitioning has < ``2k/(1+ε)`` nonempty parts.

    Returns the smallest integer strictly greater than every achievable
    nonempty-part count, i.e. ``ceil(2k/(1+ε))`` (a valid "<" bound).
    """
    return int(math.ceil(2 * k / (1 + eps)))


def min_parts_to_cover(k: int, eps: float) -> int:
    """``k_0 = ceil(k/(1+ε))``: the fewest parts that can cover all nodes
    (used in the generalisation of the main reduction, Appendix C.4)."""
    return int(math.ceil(k / (1 + eps)))


def all_parts_nonempty_guaranteed(k: int, eps: float) -> bool:
    """Lemma A.4: ``ε < 1/(k−1)`` forces every part to be nonempty."""
    if k < 2:
        return True
    return eps < 1.0 / (k - 1)
