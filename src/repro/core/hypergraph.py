"""Hypergraph data structure (paper Section 3.1).

A hypergraph ``G(V, E)`` consists of nodes ``V = {0, ..., n-1}`` and
hyperedges ``E``, each a subset of ``V``.  Following the paper we track

* ``n`` — the number of nodes,
* ``rho`` — the total number of pins (sum of hyperedge sizes),
* ``max_degree`` (Δ) — the maximal number of hyperedges incident to a node.

The structure is immutable after construction.  The *primary*
representation is CSR: ``(edge_ptr, edge_pins)`` arrays built once by the
vectorised normalisation kernel (:mod:`repro.core.kernels`); the
tuple-of-tuples ``edges`` view, the node→edge incidence, and the degree
vector are derived lazily and cached.  Structural operations
(contraction, parallel-edge merging, subgraphs, unions) run as array
programs over the CSR arrays and re-enter through :meth:`from_csr`,
which skips re-normalisation of already-normalised pin rows.
"""

from __future__ import annotations

from itertools import chain
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import InvalidHypergraphError
from . import kernels

__all__ = ["Hypergraph"]


class Hypergraph:
    """An undirected hypergraph on nodes ``0..n-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.  Nodes are the integers ``0..n-1``.
    edges:
        Iterable of hyperedges; each hyperedge is an iterable of node ids.
        Duplicate pins within one hyperedge are collapsed.  Duplicate
        hyperedges are *kept* (multi-hypergraphs arise naturally from the
        contraction step of the hierarchy-assignment problem, Appendix H.1).
    node_weights / edge_weights:
        Optional nonnegative weights.  Default to all-ones.
    name:
        Optional label used in ``repr`` and experiment logs.
    """

    __slots__ = (
        "n",
        "node_weights",
        "edge_weights",
        "name",
        "_edge_ptr",
        "_edge_pins",
        "_edges_tup",
        "_node_ptr",
        "_node_edges",
        "_degrees",
        "_retain",
    )

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Iterable[int]],
        node_weights: Sequence[float] | np.ndarray | None = None,
        edge_weights: Sequence[float] | np.ndarray | None = None,
        name: str = "",
    ) -> None:
        if num_nodes < 0:
            raise InvalidHypergraphError(f"num_nodes must be >= 0, got {num_nodes}")
        self.n = int(num_nodes)
        mat = [e if isinstance(e, (tuple, list)) else tuple(e) for e in edges]
        lengths = np.fromiter((len(e) for e in mat), dtype=np.int64,
                              count=len(mat))
        flat = np.fromiter(chain.from_iterable(mat), dtype=np.int64,
                           count=int(lengths.sum()))
        self._edge_ptr, self._edge_pins = kernels.normalize_edges(
            lengths, flat, self.n)
        self._init_weights(node_weights, edge_weights)
        self.name = name
        self._edges_tup: tuple[tuple[int, ...], ...] | None = None
        self._node_ptr: np.ndarray | None = None
        self._node_edges: np.ndarray | None = None
        self._degrees: np.ndarray | None = None
        self._retain: object | None = None

    @classmethod
    def from_csr(
        cls,
        num_nodes: int,
        edge_ptr: np.ndarray,
        edge_pins: np.ndarray,
        node_weights: Sequence[float] | np.ndarray | None = None,
        edge_weights: Sequence[float] | np.ndarray | None = None,
        name: str = "",
        copy: bool = True,
    ) -> "Hypergraph":
        """Build directly from *normalised* CSR arrays (fast path).

        Pins of each hyperedge must be strictly increasing (sorted,
        deduplicated); this is validated vectorised in O(ρ) instead of
        re-running the per-edge normalisation loop.  Contraction,
        parallel-edge merging, and the other structural operations use
        this entry point.  With ``copy=False`` the arrays are adopted
        without copying — callers must not mutate them afterwards.
        """
        if num_nodes < 0:
            raise InvalidHypergraphError(f"num_nodes must be >= 0, got {num_nodes}")
        ptr = np.array(edge_ptr, dtype=np.int64, copy=copy)
        pins = np.array(edge_pins, dtype=np.int64, copy=copy)
        kernels.check_csr(ptr, pins, int(num_nodes))
        self = object.__new__(cls)
        self.n = int(num_nodes)
        self._edge_ptr, self._edge_pins = ptr, pins
        self._init_weights(node_weights, edge_weights, copy=copy)
        self.name = name
        self._edges_tup = None
        self._node_ptr = None
        self._node_edges = None
        self._degrees = None
        self._retain = None
        return self

    def _init_weights(self, node_weights, edge_weights, copy: bool = True) -> None:
        m = self._edge_ptr.shape[0] - 1
        if node_weights is None:
            self.node_weights = np.ones(self.n, dtype=np.float64)
        else:
            self.node_weights = np.array(node_weights, dtype=np.float64,
                                         copy=copy or None)
            if self.node_weights.shape != (self.n,):
                raise InvalidHypergraphError("node_weights has wrong length")
            if np.any(self.node_weights < 0):
                raise InvalidHypergraphError("node_weights must be nonnegative")
        if edge_weights is None:
            self.edge_weights = np.ones(m, dtype=np.float64)
        else:
            self.edge_weights = np.array(edge_weights, dtype=np.float64,
                                         copy=copy or None)
            if self.edge_weights.shape != (m,):
                raise InvalidHypergraphError("edge_weights has wrong length")
            if np.any(self.edge_weights < 0):
                raise InvalidHypergraphError("edge_weights must be nonnegative")

    # ------------------------------------------------------------------
    # Basic quantities
    # ------------------------------------------------------------------
    @property
    def edges(self) -> tuple[tuple[int, ...], ...]:
        """Hyperedges as sorted tuples (materialised lazily from CSR)."""
        if self._edges_tup is None:
            po = self._edge_ptr.tolist()
            pl = self._edge_pins.tolist()
            self._edges_tup = tuple(
                tuple(pl[po[j]:po[j + 1]]) for j in range(len(po) - 1))
        return self._edges_tup

    @property
    def num_edges(self) -> int:
        """Number of hyperedges ``|E|`` (counting multiplicity)."""
        return self._edge_ptr.shape[0] - 1

    @property
    def num_pins(self) -> int:
        """Total number of pins ρ = Σ_e |e| (paper Section 3.1).  O(1)."""
        return int(self._edge_pins.size)

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every node: the number of incident hyperedges."""
        if self._degrees is None:
            self._degrees = kernels.degrees_from_pins(self._edge_pins, self.n)
        return self._degrees

    @property
    def max_degree(self) -> int:
        """Maximal node degree Δ (0 for an edgeless hypergraph)."""
        return int(self.degrees.max()) if self.n else 0

    @property
    def total_node_weight(self) -> float:
        return float(self.node_weights.sum())

    # ------------------------------------------------------------------
    # CSR views (primary representation, used by the vectorised kernels)
    # ------------------------------------------------------------------
    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(edge_ptr, edge_pins)`` CSR arrays over hyperedges.

        Pins of hyperedge ``j`` are ``edge_pins[edge_ptr[j]:edge_ptr[j+1]]``.
        """
        return self._edge_ptr, self._edge_pins

    def incidence(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(node_ptr, node_edges)`` CSR arrays over nodes.

        Hyperedges incident to node ``v`` are
        ``node_edges[node_ptr[v]:node_ptr[v+1]]``.
        """
        if self._node_ptr is None:
            self._node_ptr, self._node_edges = kernels.incidence_from_csr(
                self._edge_ptr, self._edge_pins, self.n)
        return self._node_ptr, self._node_edges

    def incident_edges(self, v: int) -> np.ndarray:
        """Ids of hyperedges containing node ``v``."""
        ptr, ne = self.incidence()
        return ne[ptr[v] : ptr[v + 1]]

    def adopt_incidence(self, node_ptr: np.ndarray,
                        node_edges: np.ndarray) -> None:
        """Seed the incidence cache with precomputed arrays (zero-copy).

        Used by the shared-memory handoff so worker processes reuse the
        parent's transpose instead of rebuilding it (an O(ρ) allocation
        per worker otherwise).  Arrays must match what
        :func:`repro.core.kernels.incidence_from_csr` would produce.
        """
        node_ptr = np.asarray(node_ptr, dtype=np.int64)
        node_edges = np.asarray(node_edges, dtype=np.int64)
        if node_ptr.shape != (self.n + 1,) or node_edges.size != self.num_pins:
            raise InvalidHypergraphError("incidence arrays have wrong shape")
        self._node_ptr, self._node_edges = node_ptr, node_edges

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: Iterable[int]) -> "Hypergraph":
        """Subgraph induced by ``nodes`` (paper Appendix B.1).

        Keeps exactly the hyperedges fully contained in ``nodes`` (the
        paper's notion used in the hyperDAG characterisation, Lemma B.1),
        relabelled to ``0..|nodes|-1`` in sorted order of old ids.
        """
        keep = sorted(set(int(v) for v in nodes))
        if keep and (keep[0] < 0 or keep[-1] >= self.n):
            raise InvalidHypergraphError("nodes outside range")
        mask = np.zeros(self.n, dtype=bool)
        keep_arr = np.asarray(keep, dtype=np.int64)
        mask[keep_arr] = True
        ptr, pins = self._edge_ptr, self._edge_pins
        inside = np.bincount(kernels.edge_ids_from_ptr(ptr),
                             weights=mask[pins].astype(np.float64),
                             minlength=self.num_edges)
        kept = np.flatnonzero(inside == np.diff(ptr))
        new_ptr, old_pins = kernels.gather_rows(ptr, pins, kept)
        remap = np.cumsum(mask) - 1
        return Hypergraph.from_csr(
            len(keep),
            new_ptr,
            remap[old_pins] if old_pins.size else old_pins,
            node_weights=self.node_weights[keep_arr],
            edge_weights=self.edge_weights[kept],
            name=f"{self.name}[induced]" if self.name else "",
            copy=False,
        )

    def remove_edges(self, edge_ids: Iterable[int]) -> "Hypergraph":
        """Copy of the hypergraph with the given hyperedges deleted."""
        drop = set(int(j) for j in edge_ids)
        keep = np.asarray([j for j in range(self.num_edges) if j not in drop],
                          dtype=np.int64)
        new_ptr, new_pins = kernels.gather_rows(self._edge_ptr,
                                                self._edge_pins, keep)
        return Hypergraph.from_csr(
            self.n, new_ptr, new_pins,
            node_weights=self.node_weights,
            edge_weights=self.edge_weights[keep],
            name=self.name, copy=False,
        )

    def connected_components(self) -> list[list[int]]:
        """Connected components (nodes connected through shared hyperedges).

        Isolated nodes each form their own singleton component.  Uses a
        union-find over pins, O(ρ·α(n)).
        """
        parent = np.arange(self.n, dtype=np.int64)

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for e in self.edges:
            if len(e) < 2:
                continue
            r0 = find(e[0])
            for v in e[1:]:
                rv = find(v)
                if rv != r0:
                    parent[rv] = r0
        groups: dict[int, list[int]] = {}
        for v in range(self.n):
            groups.setdefault(find(v), []).append(v)
        return sorted(groups.values(), key=lambda g: g[0])

    def contract(self, mapping: Sequence[int] | np.ndarray, num_groups: int | None = None) -> "Hypergraph":
        """Contract node groups into single nodes (paper Appendix H.1).

        ``mapping[v]`` gives the group id of node ``v``.  Hyperedges are
        mapped pin-wise; hyperedges collapsing to a single pin are dropped
        (they can never be cut).  Duplicate images are kept, so the result
        is in general a multi-hypergraph — exactly the contracted input of
        the hierarchy-assignment problem.  Node weights accumulate.
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.shape != (self.n,):
            raise InvalidHypergraphError("mapping has wrong length")
        if mapping.size and int(mapping.min()) < 0:
            raise InvalidHypergraphError("mapping has negative group ids")
        k = int(mapping.max()) + 1 if self.n else 0
        if num_groups is not None:
            if num_groups < k:
                raise InvalidHypergraphError("num_groups smaller than max group id + 1")
            k = num_groups
        nw = np.zeros(k, dtype=np.float64)
        np.add.at(nw, mapping, self.node_weights)
        new_ptr, new_pins, kept = kernels.contract_csr(
            self._edge_ptr, self._edge_pins, mapping, k)
        return Hypergraph.from_csr(
            k, new_ptr, new_pins,
            node_weights=nw, edge_weights=self.edge_weights[kept],
            name=f"{self.name}[contracted]" if self.name else "", copy=False,
        )

    def merge_parallel_edges(self) -> "Hypergraph":
        """Collapse identical hyperedges, summing their weights."""
        new_ptr, new_pins, weights, _ = kernels.merge_parallel_csr(
            self._edge_ptr, self._edge_pins, self.edge_weights)
        return Hypergraph.from_csr(
            self.n, new_ptr, new_pins,
            node_weights=self.node_weights, edge_weights=weights,
            name=self.name, copy=False,
        )

    @staticmethod
    def disjoint_union(parts: Sequence["Hypergraph"], name: str = "") -> "Hypergraph":
        """Disjoint union; nodes of later parts are shifted upward."""
        offset = 0
        ptrs: list[np.ndarray] = [np.zeros(1, dtype=np.int64)]
        pin_chunks: list[np.ndarray] = []
        nws: list[np.ndarray] = []
        ews: list[np.ndarray] = []
        pin_offset = 0
        for g in parts:
            ptr, pins = g.csr()
            ptrs.append(ptr[1:] + pin_offset)
            pin_chunks.append(pins + offset)
            nws.append(g.node_weights)
            ews.append(g.edge_weights)
            offset += g.n
            pin_offset += pins.size
        return Hypergraph.from_csr(
            offset,
            np.concatenate(ptrs),
            np.concatenate(pin_chunks) if pin_chunks else np.zeros(0, np.int64),
            node_weights=np.concatenate(nws) if nws else None,
            edge_weights=np.concatenate(ews) if ews else None,
            name=name, copy=False,
        )

    def add_nodes(self, count: int, weight: float = 1.0) -> "Hypergraph":
        """Copy with ``count`` isolated nodes appended (Lemma A.1 tool)."""
        if count < 0:
            raise InvalidHypergraphError("count must be >= 0")
        nw = np.concatenate([self.node_weights, np.full(count, weight)])
        return Hypergraph.from_csr(
            self.n + count, self._edge_ptr, self._edge_pins,
            node_weights=nw, edge_weights=self.edge_weights, name=self.name,
        )

    def with_edges(self, extra_edges: Iterable[Iterable[int]],
                   extra_weights: Sequence[float] | None = None) -> "Hypergraph":
        """Copy with additional hyperedges appended."""
        mat = [e if isinstance(e, (tuple, list)) else tuple(e)
               for e in extra_edges]
        lengths = np.fromiter((len(e) for e in mat), dtype=np.int64,
                              count=len(mat))
        flat = np.fromiter(chain.from_iterable(mat), dtype=np.int64,
                           count=int(lengths.sum()))
        eptr, epins = kernels.normalize_edges(lengths, flat, self.n)
        ew = np.concatenate([
            self.edge_weights,
            np.ones(len(mat)) if extra_weights is None
            else np.asarray(extra_weights, dtype=np.float64),
        ])
        return Hypergraph.from_csr(
            self.n,
            np.concatenate([self._edge_ptr, eptr[1:] + self._edge_ptr[-1]]),
            np.concatenate([self._edge_pins, epins]),
            node_weights=self.node_weights, edge_weights=ew,
            name=self.name, copy=False,
        )

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.edges)

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return (f"Hypergraph(n={self.n}, m={self.num_edges}, "
                f"pins={self.num_pins}, Δ={self.max_degree}{tag})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return (self.n == other.n
                and np.array_equal(self._edge_ptr, other._edge_ptr)
                and np.array_equal(self._edge_pins, other._edge_pins)
                and np.array_equal(self.node_weights, other.node_weights)
                and np.array_equal(self.edge_weights, other.edge_weights))

    def __hash__(self) -> int:  # structure dominates; weights rarely differ
        return hash((self.n, self._edge_ptr.tobytes(),
                     self._edge_pins.tobytes()))
