"""Hypergraph data structure (paper Section 3.1).

A hypergraph ``G(V, E)`` consists of nodes ``V = {0, ..., n-1}`` and
hyperedges ``E``, each a subset of ``V``.  Following the paper we track

* ``n`` — the number of nodes,
* ``rho`` — the total number of pins (sum of hyperedge sizes),
* ``max_degree`` (Δ) — the maximal number of hyperedges incident to a node.

The structure is immutable after construction; derived indices (CSR pin
arrays, node→edge incidence) are built lazily and cached, which keeps
construction cheap for the many thousands of small gadget hypergraphs the
reduction machinery creates while still giving vectorised cost evaluation
on large instances.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import InvalidHypergraphError

__all__ = ["Hypergraph"]


class Hypergraph:
    """An undirected hypergraph on nodes ``0..n-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.  Nodes are the integers ``0..n-1``.
    edges:
        Iterable of hyperedges; each hyperedge is an iterable of node ids.
        Duplicate pins within one hyperedge are collapsed.  Duplicate
        hyperedges are *kept* (multi-hypergraphs arise naturally from the
        contraction step of the hierarchy-assignment problem, Appendix H.1).
    node_weights / edge_weights:
        Optional nonnegative weights.  Default to all-ones.
    name:
        Optional label used in ``repr`` and experiment logs.
    """

    __slots__ = (
        "n",
        "edges",
        "node_weights",
        "edge_weights",
        "name",
        "_edge_ptr",
        "_edge_pins",
        "_node_ptr",
        "_node_edges",
        "_degrees",
    )

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Iterable[int]],
        node_weights: Sequence[float] | np.ndarray | None = None,
        edge_weights: Sequence[float] | np.ndarray | None = None,
        name: str = "",
    ) -> None:
        if num_nodes < 0:
            raise InvalidHypergraphError(f"num_nodes must be >= 0, got {num_nodes}")
        self.n = int(num_nodes)
        normalized: list[tuple[int, ...]] = []
        for e in edges:
            pins = tuple(sorted(set(int(v) for v in e)))
            if pins and (pins[0] < 0 or pins[-1] >= self.n):
                raise InvalidHypergraphError(
                    f"hyperedge {pins} has pins outside [0, {self.n})"
                )
            normalized.append(pins)
        self.edges: tuple[tuple[int, ...], ...] = tuple(normalized)

        if node_weights is None:
            self.node_weights = np.ones(self.n, dtype=np.float64)
        else:
            self.node_weights = np.asarray(node_weights, dtype=np.float64).copy()
            if self.node_weights.shape != (self.n,):
                raise InvalidHypergraphError("node_weights has wrong length")
            if np.any(self.node_weights < 0):
                raise InvalidHypergraphError("node_weights must be nonnegative")
        if edge_weights is None:
            self.edge_weights = np.ones(len(self.edges), dtype=np.float64)
        else:
            self.edge_weights = np.asarray(edge_weights, dtype=np.float64).copy()
            if self.edge_weights.shape != (len(self.edges),):
                raise InvalidHypergraphError("edge_weights has wrong length")
            if np.any(self.edge_weights < 0):
                raise InvalidHypergraphError("edge_weights must be nonnegative")
        self.name = name
        self._edge_ptr: np.ndarray | None = None
        self._edge_pins: np.ndarray | None = None
        self._node_ptr: np.ndarray | None = None
        self._node_edges: np.ndarray | None = None
        self._degrees: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Basic quantities
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of hyperedges ``|E|`` (counting multiplicity)."""
        return len(self.edges)

    @property
    def num_pins(self) -> int:
        """Total number of pins ρ = Σ_e |e| (paper Section 3.1)."""
        return sum(len(e) for e in self.edges)

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every node: the number of incident hyperedges."""
        if self._degrees is None:
            deg = np.zeros(self.n, dtype=np.int64)
            for e in self.edges:
                for v in e:
                    deg[v] += 1
            self._degrees = deg
        return self._degrees

    @property
    def max_degree(self) -> int:
        """Maximal node degree Δ (0 for an edgeless hypergraph)."""
        return int(self.degrees.max()) if self.n else 0

    @property
    def total_node_weight(self) -> float:
        return float(self.node_weights.sum())

    # ------------------------------------------------------------------
    # CSR views (built lazily, used by the vectorised cost code)
    # ------------------------------------------------------------------
    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(edge_ptr, edge_pins)`` CSR arrays over hyperedges.

        Pins of hyperedge ``j`` are ``edge_pins[edge_ptr[j]:edge_ptr[j+1]]``.
        """
        if self._edge_ptr is None:
            sizes = np.fromiter(
                (len(e) for e in self.edges), dtype=np.int64, count=len(self.edges)
            )
            ptr = np.zeros(len(self.edges) + 1, dtype=np.int64)
            np.cumsum(sizes, out=ptr[1:])
            pins = np.empty(int(ptr[-1]), dtype=np.int64)
            for j, e in enumerate(self.edges):
                pins[ptr[j] : ptr[j + 1]] = e
            self._edge_ptr, self._edge_pins = ptr, pins
        return self._edge_ptr, self._edge_pins

    def incidence(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(node_ptr, node_edges)`` CSR arrays over nodes.

        Hyperedges incident to node ``v`` are
        ``node_edges[node_ptr[v]:node_ptr[v+1]]``.
        """
        if self._node_ptr is None:
            deg = self.degrees
            ptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(deg, out=ptr[1:])
            out = np.empty(int(ptr[-1]), dtype=np.int64)
            fill = ptr[:-1].copy()
            for j, e in enumerate(self.edges):
                for v in e:
                    out[fill[v]] = j
                    fill[v] += 1
            self._node_ptr, self._node_edges = ptr, out
        return self._node_ptr, self._node_edges

    def incident_edges(self, v: int) -> np.ndarray:
        """Ids of hyperedges containing node ``v``."""
        ptr, ne = self.incidence()
        return ne[ptr[v] : ptr[v + 1]]

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: Iterable[int]) -> "Hypergraph":
        """Subgraph induced by ``nodes`` (paper Appendix B.1).

        Keeps exactly the hyperedges fully contained in ``nodes`` (the
        paper's notion used in the hyperDAG characterisation, Lemma B.1),
        relabelled to ``0..|nodes|-1`` in sorted order of old ids.
        """
        keep = sorted(set(int(v) for v in nodes))
        if keep and (keep[0] < 0 or keep[-1] >= self.n):
            raise InvalidHypergraphError("nodes outside range")
        remap = {old: new for new, old in enumerate(keep)}
        keep_set = set(keep)
        new_edges = []
        new_ew = []
        for j, e in enumerate(self.edges):
            if all(v in keep_set for v in e):
                new_edges.append(tuple(remap[v] for v in e))
                new_ew.append(self.edge_weights[j])
        return Hypergraph(
            len(keep),
            new_edges,
            node_weights=self.node_weights[keep],
            edge_weights=new_ew,
            name=f"{self.name}[induced]" if self.name else "",
        )

    def remove_edges(self, edge_ids: Iterable[int]) -> "Hypergraph":
        """Copy of the hypergraph with the given hyperedges deleted."""
        drop = set(int(j) for j in edge_ids)
        keep = [j for j in range(self.num_edges) if j not in drop]
        return Hypergraph(
            self.n,
            [self.edges[j] for j in keep],
            node_weights=self.node_weights,
            edge_weights=self.edge_weights[keep],
            name=self.name,
        )

    def connected_components(self) -> list[list[int]]:
        """Connected components (nodes connected through shared hyperedges).

        Isolated nodes each form their own singleton component.  Uses a
        union-find over pins, O(ρ·α(n)).
        """
        parent = np.arange(self.n, dtype=np.int64)

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for e in self.edges:
            if len(e) < 2:
                continue
            r0 = find(e[0])
            for v in e[1:]:
                rv = find(v)
                if rv != r0:
                    parent[rv] = r0
        groups: dict[int, list[int]] = {}
        for v in range(self.n):
            groups.setdefault(find(v), []).append(v)
        return sorted(groups.values(), key=lambda g: g[0])

    def contract(self, mapping: Sequence[int] | np.ndarray, num_groups: int | None = None) -> "Hypergraph":
        """Contract node groups into single nodes (paper Appendix H.1).

        ``mapping[v]`` gives the group id of node ``v``.  Hyperedges are
        mapped pin-wise; hyperedges collapsing to a single pin are dropped
        (they can never be cut).  Duplicate images are kept, so the result
        is in general a multi-hypergraph — exactly the contracted input of
        the hierarchy-assignment problem.  Node weights accumulate.
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.shape != (self.n,):
            raise InvalidHypergraphError("mapping has wrong length")
        k = int(mapping.max()) + 1 if self.n else 0
        if num_groups is not None:
            if num_groups < k:
                raise InvalidHypergraphError("num_groups smaller than max group id + 1")
            k = num_groups
        nw = np.zeros(k, dtype=np.float64)
        np.add.at(nw, mapping, self.node_weights)
        new_edges = []
        new_ew = []
        for j, e in enumerate(self.edges):
            img = tuple(sorted(set(int(mapping[v]) for v in e)))
            if len(img) >= 2:
                new_edges.append(img)
                new_ew.append(self.edge_weights[j])
        return Hypergraph(k, new_edges, node_weights=nw, edge_weights=new_ew,
                          name=f"{self.name}[contracted]" if self.name else "")

    def merge_parallel_edges(self) -> "Hypergraph":
        """Collapse identical hyperedges, summing their weights."""
        agg: dict[tuple[int, ...], float] = {}
        order: list[tuple[int, ...]] = []
        for j, e in enumerate(self.edges):
            if e not in agg:
                agg[e] = 0.0
                order.append(e)
            agg[e] += float(self.edge_weights[j])
        return Hypergraph(
            self.n,
            order,
            node_weights=self.node_weights,
            edge_weights=[agg[e] for e in order],
            name=self.name,
        )

    @staticmethod
    def disjoint_union(parts: Sequence["Hypergraph"], name: str = "") -> "Hypergraph":
        """Disjoint union; nodes of later parts are shifted upward."""
        offset = 0
        edges: list[tuple[int, ...]] = []
        nws: list[np.ndarray] = []
        ews: list[np.ndarray] = []
        for g in parts:
            edges.extend(tuple(v + offset for v in e) for e in g.edges)
            nws.append(g.node_weights)
            ews.append(g.edge_weights)
            offset += g.n
        return Hypergraph(
            offset,
            edges,
            node_weights=np.concatenate(nws) if nws else None,
            edge_weights=np.concatenate(ews) if ews else None,
            name=name,
        )

    def add_nodes(self, count: int, weight: float = 1.0) -> "Hypergraph":
        """Copy with ``count`` isolated nodes appended (Lemma A.1 tool)."""
        if count < 0:
            raise InvalidHypergraphError("count must be >= 0")
        nw = np.concatenate([self.node_weights, np.full(count, weight)])
        return Hypergraph(self.n + count, self.edges, node_weights=nw,
                          edge_weights=self.edge_weights, name=self.name)

    def with_edges(self, extra_edges: Iterable[Iterable[int]],
                   extra_weights: Sequence[float] | None = None) -> "Hypergraph":
        """Copy with additional hyperedges appended."""
        extra = [tuple(e) for e in extra_edges]
        ew = list(self.edge_weights)
        ew.extend([1.0] * len(extra) if extra_weights is None else
                  [float(w) for w in extra_weights])
        return Hypergraph(self.n, list(self.edges) + extra,
                          node_weights=self.node_weights, edge_weights=ew,
                          name=self.name)

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.edges)

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return (f"Hypergraph(n={self.n}, m={self.num_edges}, "
                f"pins={self.num_pins}, Δ={self.max_degree}{tag})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return (self.n == other.n and self.edges == other.edges
                and np.array_equal(self.node_weights, other.node_weights)
                and np.array_equal(self.edge_weights, other.edge_weights))

    def __hash__(self) -> int:  # edges tuple dominates; weights rarely differ
        return hash((self.n, self.edges))
