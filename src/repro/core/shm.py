"""Shared-memory CSR handoff for multi-process partitioning.

``multiprocessing`` pickles every argument into each worker, so passing
a million-pin :class:`~repro.core.hypergraph.Hypergraph` to ``n`` workers
copies the CSR arrays ``n + 1`` times.  This module places the arrays in
a POSIX shared-memory segment *once*; workers attach by name and build a
zero-copy view, so what crosses the pipe is a ~100-byte descriptor.

Two layers:

* :class:`SharedArrays` — a generic bundle of named numpy arrays packed
  into one :class:`multiprocessing.shared_memory.SharedMemory` segment,
  with an explicit lifecycle: the *owner* (creator) unlinks, *attachers*
  only close.  Both sides support ``with``.
* :class:`SharedCSR` — the hypergraph-shaped bundle (edge ptr/pins,
  weights, optionally the incidence CSR so workers never recompute it)
  plus ``from_hypergraph`` / ``hypergraph`` converters.

Lifecycle rules (the Python >= 3.8 footguns this module absorbs):

* An attacher's handle is never registered with the resource tracker —
  otherwise every attaching process schedules the segment for unlink at
  its own exit and the parent's segment vanishes under it (bpo-38119).
* The creator's handle stays registered, so a SIGKILLed parent leaks
  nothing: its resource tracker unlinks the segment post-mortem.
* ``close()`` tolerates exported numpy views (``BufferError``): the
  mapping then lives until the views are garbage-collected, which is
  the best Python can do without invalidating live arrays.
"""

from __future__ import annotations

import contextlib
import itertools
import os
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..errors import SharedMemoryError
from .hypergraph import Hypergraph

__all__ = ["SharedArrays", "SharedCSR"]

# Segment names are pid-qualified and counted, not random: entropy
# sources are banned from solver-reachable code by the determinism
# pass, and a readable prefix lets operators (and the kill-mid-run
# test) audit /dev/shm for leftovers.
_SEG_PREFIX = "repro_shm"
_SEG_SEQ = itertools.count()


def _new_segment(nbytes: int) -> shared_memory.SharedMemory:
    size = max(int(nbytes), 1)          # SharedMemory rejects size=0
    while True:
        name = f"{_SEG_PREFIX}_{os.getpid()}_{next(_SEG_SEQ)}"
        try:
            return shared_memory.SharedMemory(name=name, create=True,
                                              size=size)
        except FileExistsError:
            continue                     # stale leftover; try next counter


@contextlib.contextmanager
def _without_tracking():
    """Suppress resource-tracker registration for the enclosed attach.

    Attachers must not be tracked: a tracked attacher unlinks the
    owner's segment when *its own* process exits (bpo-38119), and an
    attach-then-unregister dance instead *removes the owner's entry*
    when owner and attacher share one tracker (fork children, or
    attaching in-process), which both kills the kill-safety net and
    makes the owner's unlink log a tracker KeyError.  Registering is a
    plain function call on the module, so masking it for the duration
    of the ``SharedMemory`` constructor is exact.  (Python 3.13's
    ``track=False`` is this, built in.)
    """
    original = resource_tracker.register
    # repro: allow[fork-safety] — the patch is process-local by intent:
    # each attaching process (worker or parent) masks only its own view
    # of the module for the microseconds the constructor runs, and the
    # finally restores it before anything else can call register.
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        # repro: allow[fork-safety] — restores the same process-local
        # binding the line above replaced.
        resource_tracker.register = original


class SharedArrays:
    """Named numpy arrays packed into one shared-memory segment.

    Create with :meth:`create` (owner) or :meth:`attach` (worker); get
    array views with ``sa["name"]``.  The owner's ``with`` block closes
    *and unlinks*; an attacher's only closes.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 fields: dict[str, tuple[tuple[int, ...], str]],
                 owner: bool) -> None:
        self._shm = shm
        self._fields = fields
        self._owner = owner
        self._unlinked = False

    # -- construction -------------------------------------------------

    @classmethod
    def create(cls, arrays: dict[str, np.ndarray]) -> "SharedArrays":
        """Copy ``arrays`` into a fresh segment owned by this process."""
        fields: dict[str, tuple[tuple[int, ...], str]] = {}
        offset = 0
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            fields[name] = (tuple(arr.shape), arr.dtype.str)
            offset = _align(offset) + arr.nbytes
        try:
            shm = _new_segment(offset)
        except OSError as exc:
            raise SharedMemoryError(
                f"cannot create {offset}-byte shared segment: {exc}"
            ) from exc
        sa = cls(shm, fields, owner=True)
        for name, arr in arrays.items():
            sa[name][...] = np.ascontiguousarray(arr)
        return sa

    @classmethod
    def create_empty(cls, fields: dict[str, tuple[tuple[int, ...], str]],
                     *, name: str | None = None) -> "SharedArrays":
        """Allocate a zero-filled segment sized for ``fields``.

        This is the streaming-ingest entry point: the caller gets the
        layout up front and fills the arrays incrementally (chunks off
        a socket), instead of handing over finished arrays as
        :meth:`create` requires.  With ``name`` the segment is created
        under that exact name — :class:`FileExistsError` propagates so
        a caller racing another process for a content-addressed name
        can attach to the winner instead.  POSIX guarantees the fresh
        segment reads as zeros.
        """
        normalised = {fname: (tuple(shape), dtype)
                      for fname, (shape, dtype) in fields.items()}
        total = 0
        for shape, dtype in normalised.values():
            total = _align(total)
            total += (int(np.prod(shape, dtype=np.int64))
                      * np.dtype(dtype).itemsize)
        if name is None:
            try:
                shm = _new_segment(total)
            except OSError as exc:
                raise SharedMemoryError(
                    f"cannot create {total}-byte shared segment: {exc}"
                ) from exc
        else:
            try:
                shm = shared_memory.SharedMemory(name=name, create=True,
                                                 size=max(total, 1))
            except FileExistsError:
                raise                # caller attaches to the winner
            except OSError as exc:
                raise SharedMemoryError(
                    f"cannot create shared segment {name!r}: {exc}"
                ) from exc
        return cls(shm, normalised, owner=True)

    @classmethod
    def attach(cls, descriptor: dict) -> "SharedArrays":
        """Attach to a segment created elsewhere, by descriptor."""
        try:
            with _without_tracking():
                shm = shared_memory.SharedMemory(name=descriptor["seg"])
        except (OSError, ValueError) as exc:
            raise SharedMemoryError(
                f"cannot attach shared segment {descriptor.get('seg')!r}:"
                f" {exc}") from exc
        fields = {name: (tuple(shape), dtype)
                  for name, (shape, dtype) in descriptor["fields"].items()}
        return cls(shm, fields, owner=False)

    # -- access --------------------------------------------------------

    def descriptor(self) -> dict:
        """Picklable handle (~100 bytes + field table) for attachers."""
        return {"seg": self._shm.name,
                "fields": {name: [list(shape), dtype]
                           for name, (shape, dtype) in self._fields.items()}}

    def __getitem__(self, name: str) -> np.ndarray:
        offset = 0
        for fname, (shape, dtype) in self._fields.items():
            offset = _align(offset)
            nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
            if fname == name:
                return np.ndarray(shape, dtype=dtype, buffer=self._shm.buf,
                                  offset=offset)
            offset += nbytes
        raise KeyError(name)

    @property
    def nbytes(self) -> int:
        """Total payload bytes (the segment may be page-rounded above this)."""
        total = 0
        for shape, dtype in self._fields.values():
            total = _align(total)
            total += int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        return total

    @property
    def name(self) -> str:
        return self._shm.name

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (views may keep it alive)."""
        try:
            self._shm.close()
        except BufferError:
            # numpy views of the buffer are still alive; the mapping is
            # released when they are collected.  Unlink (below) is what
            # actually frees the backing memory system-wide.
            pass

    def unlink(self) -> None:
        """Remove the segment system-wide (owner only; idempotent)."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()


def _align(offset: int, align: int = 8) -> int:
    return (offset + align - 1) // align * align


class SharedCSR:
    """A hypergraph's CSR arrays in shared memory.

    ``from_hypergraph`` is called once by the parent; workers call
    ``attach(descriptor)`` and ``hypergraph()`` for a zero-copy view.
    The incidence CSR is included by default so attachers never pay the
    O(pins) transpose again (it is cached on the Hypergraph anyway).
    """

    def __init__(self, arrays: SharedArrays, n: int, name: str | None) -> None:
        self._arrays = arrays
        self.n = int(n)
        self.graph_name = name

    @classmethod
    def from_hypergraph(cls, graph: Hypergraph, *,
                        include_incidence: bool = True) -> "SharedCSR":
        ptr, pins = graph.csr()
        fields = {
            "edge_ptr": ptr,
            "edge_pins": pins,
            "node_weights": graph.node_weights,
            "edge_weights": graph.edge_weights,
        }
        if include_incidence:
            node_ptr, node_edges = graph.incidence()
            fields["node_ptr"] = node_ptr
            fields["node_edges"] = node_edges
        return cls(SharedArrays.create(fields), graph.n, graph.name)

    @classmethod
    def allocate(cls, n: int, m: int, pins: int, *,
                 name: str | None = None) -> "SharedCSR":
        """Empty CSR segment for ``n`` nodes, ``m`` edges, ``pins`` pins.

        Built for streaming ingest: ``edge_ptr``/``edge_pins`` start
        zeroed and are filled in place; weights default to 1.0.  The
        extra one-element ``ready`` field is the cross-process
        publication flag — a writer sets it to 1 only after the arrays
        are complete and digest-verified, so a process attaching to a
        content-addressed (``name``-d) segment can tell a finished
        upload from a half-filled one.
        """
        fields = {
            "edge_ptr": ((int(m) + 1,), "<i8"),
            "edge_pins": ((int(pins),), "<i8"),
            "node_weights": ((int(n),), "<f8"),
            "edge_weights": ((int(m),), "<f8"),
            "ready": ((1,), "<i8"),
        }
        arrays = SharedArrays.create_empty(fields, name=name)
        arrays["node_weights"][...] = 1.0
        arrays["edge_weights"][...] = 1.0
        return cls(arrays, n, None)

    @classmethod
    def attach(cls, descriptor: dict) -> "SharedCSR":
        arrays = SharedArrays.attach(descriptor["arrays"])
        return cls(arrays, descriptor["n"], descriptor.get("name"))

    def descriptor(self) -> dict:
        return {"arrays": self._arrays.descriptor(), "n": self.n,
                "name": self.graph_name}

    def __getitem__(self, field: str) -> np.ndarray:
        return self._arrays[field]

    @property
    def has_incidence(self) -> bool:
        return "node_ptr" in self._arrays._fields

    @property
    def payload_bytes(self) -> int:
        return self._arrays.nbytes

    @property
    def segment_name(self) -> str:
        return self._arrays.name

    def hypergraph(self) -> Hypergraph:
        """Zero-copy Hypergraph over the shared buffers.

        The arrays are views into the segment: neither this process nor
        the graph copies them, which is what keeps worker RSS below the
        1.5x-payload budget.  The graph *retains this handle*: numpy
        views do not keep a ``SharedMemory`` mapping alive on their own
        (its finaliser unmaps the segment and the views then read freed
        pages — a segfault, not an exception), so the handle must outlive
        every view and the returned graph pins it.
        """
        g = Hypergraph.from_csr(self.n, self._arrays["edge_ptr"],
                                self._arrays["edge_pins"],
                                node_weights=self._arrays["node_weights"],
                                edge_weights=self._arrays["edge_weights"],
                                name=self.graph_name, copy=False)
        if self.has_incidence:
            g.adopt_incidence(self._arrays["node_ptr"],
                              self._arrays["node_edges"])
        g._retain = self
        return g

    # -- lifecycle (delegates) ------------------------------------------

    def close(self) -> None:
        self._arrays.close()

    def unlink(self) -> None:
        self._arrays.unlink()

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc) -> None:
        self._arrays.__exit__(*exc)
