"""Computational DAGs (paper Sections 3.2 and 5).

Nodes represent computational steps; a directed edge ``(u, v)`` means the
output of ``u`` is an input of ``v``.  This module provides the DAG
substrate used by hyperDAG construction (Definition 3.2), layer-wise
balance constraints (Definition 5.1, Figure 5) and DAG scheduling
(Definition 5.3).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import InvalidHypergraphError

__all__ = ["DAG"]


class DAG:
    """A directed acyclic graph on nodes ``0..n-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    edges:
        Iterable of directed edges ``(u, v)``.  Duplicates are collapsed.
        A cycle raises :class:`~repro.errors.InvalidHypergraphError`.
    """

    __slots__ = ("n", "edges", "_succ", "_pred", "_topo")

    def __init__(self, num_nodes: int, edges: Iterable[tuple[int, int]]) -> None:
        if num_nodes < 0:
            raise InvalidHypergraphError("num_nodes must be >= 0")
        self.n = int(num_nodes)
        uniq = sorted(set((int(u), int(v)) for u, v in edges))
        for u, v in uniq:
            if not (0 <= u < self.n and 0 <= v < self.n):
                raise InvalidHypergraphError(f"edge ({u},{v}) outside [0,{self.n})")
            if u == v:
                raise InvalidHypergraphError(f"self-loop at {u}")
        self.edges: tuple[tuple[int, int], ...] = tuple(uniq)
        succ: list[list[int]] = [[] for _ in range(self.n)]
        pred: list[list[int]] = [[] for _ in range(self.n)]
        for u, v in self.edges:
            succ[u].append(v)
            pred[v].append(u)
        self._succ = [tuple(s) for s in succ]
        self._pred = [tuple(p) for p in pred]
        self._topo: tuple[int, ...] | None = None
        self.topological_order()  # validates acyclicity eagerly

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def successors(self, v: int) -> tuple[int, ...]:
        """Immediate successors ``S_v`` (Definition 3.2)."""
        return self._succ[v]

    def predecessors(self, v: int) -> tuple[int, ...]:
        return self._pred[v]

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def out_degree(self, v: int) -> int:
        return len(self._succ[v])

    def in_degree(self, v: int) -> int:
        return len(self._pred[v])

    def sources(self) -> list[int]:
        """Nodes with no incoming edges."""
        return [v for v in range(self.n) if not self._pred[v]]

    def sinks(self) -> list[int]:
        """Nodes with no outgoing edges (``V_sink`` in Appendix B)."""
        return [v for v in range(self.n) if not self._succ[v]]

    def max_in_degree(self) -> int:
        return max((len(p) for p in self._pred), default=0)

    def topological_order(self) -> tuple[int, ...]:
        """A topological order (Kahn's algorithm); validates acyclicity."""
        if self._topo is None:
            indeg = [len(p) for p in self._pred]
            queue = [v for v in range(self.n) if indeg[v] == 0]
            order: list[int] = []
            head = 0
            while head < len(queue):
                v = queue[head]
                head += 1
                order.append(v)
                for w in self._succ[v]:
                    indeg[w] -= 1
                    if indeg[w] == 0:
                        queue.append(w)
            if len(order) != self.n:
                raise InvalidHypergraphError("graph contains a cycle")
            self._topo = tuple(order)
        return self._topo

    # ------------------------------------------------------------------
    # Layerings (Section 5.1, Figure 5)
    # ------------------------------------------------------------------
    def longest_path_length(self) -> int:
        """ℓ: number of nodes on a longest directed path (0 when empty)."""
        if self.n == 0:
            return 0
        return int(self.asap_layers().max()) + 1

    def asap_layers(self) -> np.ndarray:
        """Earliest-possible layer per node (0-based).

        ``V_1`` = sources; node enters the first layer after all its
        predecessors — the paper's "simplest case" layering.
        """
        layer = np.zeros(self.n, dtype=np.int64)
        for v in self.topological_order():
            for u in self._pred[v]:
                if layer[u] + 1 > layer[v]:
                    layer[v] = layer[u] + 1
        return layer

    def alap_layers(self) -> np.ndarray:
        """Latest-possible layer per node, within ℓ total layers."""
        depth = self.longest_path_length()
        layer = np.full(self.n, depth - 1, dtype=np.int64)
        for v in reversed(self.topological_order()):
            for w in self._succ[v]:
                if layer[w] - 1 < layer[v]:
                    layer[v] = layer[w] - 1
        return layer

    def is_valid_layering(self, layer: Sequence[int] | np.ndarray) -> bool:
        """Check a layering per Section 5.1: ℓ layers total, edges go
        strictly forward, and every layer index is within ``[0, ℓ)``."""
        arr = np.asarray(layer, dtype=np.int64)
        if arr.shape != (self.n,):
            return False
        if self.n == 0:
            return True
        depth = self.longest_path_length()
        if arr.min() < 0 or arr.max() > depth - 1:
            return False
        return all(arr[u] < arr[v] for u, v in self.edges)

    def layers_from_assignment(self, layer: Sequence[int] | np.ndarray) -> list[list[int]]:
        """Group node ids by layer index into ``V_1, ..., V_ℓ``."""
        arr = np.asarray(layer, dtype=np.int64)
        depth = int(arr.max()) + 1 if self.n else 0
        out: list[list[int]] = [[] for _ in range(depth)]
        for v in range(self.n):
            out[int(arr[v])].append(v)
        return out

    def flexible_nodes(self) -> list[int]:
        """Nodes whose layer is not fixed (ASAP ≠ ALAP) — exactly the
        nodes not on any maximum-length path (Appendix E.2)."""
        asap, alap = self.asap_layers(), self.alap_layers()
        return [v for v in range(self.n) if asap[v] != alap[v]]

    # ------------------------------------------------------------------
    # Composition (Figure 4 tooling)
    # ------------------------------------------------------------------
    @staticmethod
    def disjoint_union(parts: Sequence["DAG"]) -> "DAG":
        offset = 0
        edges: list[tuple[int, int]] = []
        for g in parts:
            edges.extend((u + offset, v + offset) for u, v in g.edges)
            offset += g.n
        return DAG(offset, edges)

    @staticmethod
    def serial_concatenation(first: "DAG", second: "DAG") -> "DAG":
        """Serial composition of two DAGs (Figure 4): every sink of
        ``first`` gets an edge to every source of ``second``, forcing the
        whole of ``first`` before any of ``second``."""
        off = first.n
        edges = list(first.edges)
        edges.extend((u + off, v + off) for u, v in second.edges)
        for s in first.sinks():
            for t in second.sources():
                edges.append((s, t + off))
        return DAG(first.n + second.n, edges)

    @staticmethod
    def path(length: int) -> "DAG":
        """A directed path on ``length`` nodes."""
        return DAG(length, [(i, i + 1) for i in range(length - 1)])

    def reachable_from(self, start: Iterable[int]) -> set[int]:
        """All nodes reachable from ``start`` (inclusive)."""
        seen = set(int(v) for v in start)
        stack = list(seen)
        while stack:
            v = stack.pop()
            for w in self._succ[v]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return seen

    def __repr__(self) -> str:
        return f"DAG(n={self.n}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DAG):
            return NotImplemented
        return self.n == other.n and self.edges == other.edges

    def __hash__(self) -> int:
        return hash((self.n, self.edges))
