"""Partitions of hypergraph node sets (paper Section 3.1).

A k-way partitioning :math:`\\mathcal{P} = P_1, \\dots, P_k` is stored as a
label vector ``labels`` with ``labels[v]`` the (0-based) part of node ``v``.
For ``k = 2`` the paper calls part 0 "red" and part 1 "blue"; helper
constants :data:`RED` and :data:`BLUE` make the reduction code readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import InvalidPartitionError
from . import kernels
from .hypergraph import Hypergraph

__all__ = [
    "RED",
    "BLUE",
    "Partition",
    "lambdas",
    "part_sizes",
    "part_weights",
]

#: Conventional colour names for 2-way partitions (paper Section 3.1).
RED = 0
BLUE = 1


def _as_labels(labels: Sequence[int] | np.ndarray, n: int) -> np.ndarray:
    arr = np.asarray(labels, dtype=np.int64)
    if arr.shape != (n,):
        raise InvalidPartitionError(
            f"labels has shape {arr.shape}, expected ({n},)"
        )
    return arr


def lambdas(graph: Hypergraph, labels: Sequence[int] | np.ndarray, k: int) -> np.ndarray:
    """λ_e for every hyperedge: the number of parts it intersects.

    Vectorised: for each (edge, part) pin pair we mark presence in a
    boolean matrix walk over the CSR arrays.  Empty hyperedges get λ = 0.
    """
    arr = _as_labels(labels, graph.n)
    if arr.size and (arr.min() < 0 or arr.max() >= k):
        raise InvalidPartitionError("labels outside [0, k)")
    ptr, pins = graph.csr()
    return kernels.lambda_counts(ptr, pins, arr, k)


def part_sizes(labels: Sequence[int] | np.ndarray, k: int) -> np.ndarray:
    """Number of nodes in each part, length-k vector."""
    arr = np.asarray(labels, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= k):
        raise InvalidPartitionError("labels outside [0, k)")
    return np.bincount(arr, minlength=k).astype(np.int64)


def part_weights(graph: Hypergraph, labels: Sequence[int] | np.ndarray, k: int) -> np.ndarray:
    """Total node weight in each part."""
    arr = _as_labels(labels, graph.n)
    out = np.zeros(k, dtype=np.float64)
    np.add.at(out, arr, graph.node_weights)
    return out


@dataclass(frozen=True)
class Partition:
    """A k-way partitioning of a hypergraph's nodes.

    Thin immutable wrapper bundling the label vector with ``k`` so that
    downstream code (cost metrics, balance checks, hierarchy assignment)
    cannot mix up the intended number of parts with the number of
    *nonempty* parts — the paper explicitly allows empty parts
    (Lemma A.3).
    """

    labels: np.ndarray
    k: int
    _frozen_labels: tuple[int, ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        arr = np.asarray(self.labels, dtype=np.int64).copy()
        arr.setflags(write=False)
        object.__setattr__(self, "labels", arr)
        if self.k < 1:
            raise InvalidPartitionError(f"k must be >= 1, got {self.k}")
        if arr.size and (arr.min() < 0 or arr.max() >= self.k):
            raise InvalidPartitionError("labels outside [0, k)")

    @property
    def n(self) -> int:
        return int(self.labels.shape[0])

    @staticmethod
    def from_blocks(blocks: Iterable[Iterable[int]], n: int, k: int | None = None) -> "Partition":
        """Build from explicit node lists ``P_1, ..., P_k`` (must cover 0..n-1)."""
        blocks = [list(b) for b in blocks]
        labels = np.full(n, -1, dtype=np.int64)
        for i, b in enumerate(blocks):
            for v in b:
                if labels[v] != -1:
                    raise InvalidPartitionError(f"node {v} assigned twice")
                labels[v] = i
        if np.any(labels < 0):
            missing = int(np.argmin(labels))
            raise InvalidPartitionError(f"node {missing} unassigned")
        return Partition(labels, k if k is not None else len(blocks))

    def blocks(self) -> list[list[int]]:
        """Explicit node lists per part (may contain empty parts)."""
        out: list[list[int]] = [[] for _ in range(self.k)]
        for v, p in enumerate(self.labels):
            out[int(p)].append(v)
        return out

    def sizes(self) -> np.ndarray:
        return part_sizes(self.labels, self.k)

    def nonempty_parts(self) -> int:
        return int(np.count_nonzero(self.sizes()))

    def imbalance(self) -> float:
        """``max_i |P_i| / (n/k) − 1``: the smallest ε for which this
        partition is ε-balanced (ignoring integer rounding)."""
        if self.n == 0:
            return 0.0
        return float(self.sizes().max()) * self.k / self.n - 1.0

    def relabel(self, perm: Sequence[int]) -> "Partition":
        """Apply a permutation to part ids (``new = perm[old]``)."""
        perm_arr = np.asarray(perm, dtype=np.int64)
        if sorted(perm_arr.tolist()) != list(range(self.k)):
            raise InvalidPartitionError("perm is not a permutation of range(k)")
        return Partition(perm_arr[self.labels], self.k)

    def restrict(self, nodes: Sequence[int]) -> "Partition":
        """Labels restricted to a node subset (in the subset's order)."""
        idx = np.asarray(list(nodes), dtype=np.int64)
        return Partition(self.labels[idx], self.k)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self.k == other.k and np.array_equal(self.labels, other.labels)

    def __hash__(self) -> int:
        return hash((self.k, self.labels.tobytes()))
