"""Vectorised CSR-native kernels — the performance layer of the library.

Every pin-level hot path (edge normalisation, CSR/incidence construction,
contraction with parallel-edge merging, λ counting, FM pin-count matrix
initialisation, neighbour-adjacency extraction) is implemented here as a
pure NumPy array program over the CSR arrays ``(edge_ptr, edge_pins)``:

* ``edge_ptr`` — ``int64[m + 1]``, monotone, ``edge_ptr[0] == 0``;
* ``edge_pins`` — ``int64[ρ]``; pins of hyperedge ``j`` are
  ``edge_pins[edge_ptr[j]:edge_ptr[j + 1]]``, strictly increasing
  (normalised: sorted, duplicate pins collapsed).

The original Python-loop implementations are retained as
``_reference_*`` oracles: the property-based tests in
``tests/core/test_kernels.py`` assert bit-for-bit agreement on random
hypergraphs, and ``benchmarks/bench_kernels.py`` times each kernel
against its oracle to track the perf trajectory (``BENCH_kernels.json``).

Design notes
------------
All kernels are O(ρ) or O(ρ log ρ) with small constants; none build
Python objects.  Ragged (per-edge / per-node) operations use the
standard CSR tricks: ``np.repeat`` for broadcasting per-row values to
pins, ``np.lexsort`` + run-boundary masks for per-row sort/dedup, and
offset arithmetic (``gather_rows``) for ragged gathers.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import InvalidHypergraphError, ProblemTooLargeError

__all__ = [
    "normalize_edges",
    "check_csr",
    "gather_rows",
    "edge_ids_from_ptr",
    "degrees_from_pins",
    "incidence_from_csr",
    "contract_csr",
    "merge_parallel_csr",
    "lambda_counts",
    "pin_count_matrix",
    "adjacency_csr",
    "DEFAULT_PIN_COUNT_BUDGET_BYTES",
]

#: Memory budget for the dense FM ``(m, k)`` pin-count matrix.  The
#: refinement state is dense by design (O(1) gain updates); past this
#: budget we fail loudly instead of silently allocating gigabytes.
#: Override per-call or via the ``REPRO_PIN_COUNT_BUDGET_BYTES`` env var.
DEFAULT_PIN_COUNT_BUDGET_BYTES = 2**30


def edge_ids_from_ptr(ptr: np.ndarray) -> np.ndarray:
    """Edge id of every pin: ``[0]*s_0 + [1]*s_1 + ...`` for sizes s_j."""
    m = ptr.shape[0] - 1
    return np.repeat(np.arange(m, dtype=np.int64), np.diff(ptr))


def gather_rows(ptr: np.ndarray, pins: np.ndarray,
                rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the pin rows ``rows`` (a ragged gather).

    Returns CSR arrays ``(new_ptr, new_pins)`` over ``len(rows)`` edges,
    preserving the order of ``rows``.  O(output pins), no Python loop.
    """
    rows = np.asarray(rows, dtype=np.int64)
    sizes = np.diff(ptr)[rows] if rows.size else np.zeros(0, dtype=np.int64)
    new_ptr = np.zeros(rows.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=new_ptr[1:])
    total = int(new_ptr[-1])
    if total == 0:
        return new_ptr, np.zeros(0, dtype=np.int64)
    # output[o_r + t] = pins[s_r + t]  =>  index = repeat(s_r - o_r) + arange
    idx = np.repeat(ptr[rows] - new_ptr[:-1], sizes) + np.arange(total)
    return new_ptr, pins[idx]


def normalize_edges(lengths: np.ndarray, flat: np.ndarray,
                    n: int) -> tuple[np.ndarray, np.ndarray]:
    """Normalise raw edges: per-edge sort + duplicate-pin collapse.

    ``lengths[j]`` is the raw size of edge ``j`` and ``flat`` the
    concatenation of all raw pins.  Validates pins against ``[0, n)``
    and returns normalised CSR arrays.  Replaces the per-edge
    ``tuple(sorted(set(...)))`` loop of ``Hypergraph.__init__``.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    flat = np.asarray(flat, dtype=np.int64)
    m = lengths.shape[0]
    if flat.size and (int(flat.min()) < 0 or int(flat.max()) >= n):
        raw_ptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(lengths, out=raw_ptr[1:])
        bad = (flat < 0) | (flat >= n)
        j = int(np.searchsorted(raw_ptr, int(np.flatnonzero(bad)[0]),
                                side="right")) - 1
        pins = tuple(sorted(set(flat[raw_ptr[j]:raw_ptr[j + 1]].tolist())))
        raise InvalidHypergraphError(
            f"hyperedge {pins} has pins outside [0, {n})")
    eids = np.repeat(np.arange(m, dtype=np.int64), lengths)
    if flat.size and n and m < 2**62 // n:
        # Single-key sort on the encoded (edge, pin) code — roughly 2×
        # faster than the two-pass lexsort fallback.
        codes = np.sort(eids * np.int64(n) + flat)
        keep = np.empty(codes.size, dtype=bool)
        keep[0] = True
        np.not_equal(codes[1:], codes[:-1], out=keep[1:])
        codes = codes[keep]
        se, sp = codes // n, codes % n
    else:
        order = np.lexsort((flat, eids))
        se, sp = eids[order], flat[order]
        if sp.size:
            keep = np.empty(sp.size, dtype=bool)
            keep[0] = True
            np.logical_or(se[1:] != se[:-1], sp[1:] != sp[:-1], out=keep[1:])
            se, sp = se[keep], sp[keep]
    ptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(np.bincount(se, minlength=m), out=ptr[1:])
    return ptr, sp


def check_csr(ptr: np.ndarray, pins: np.ndarray, n: int) -> None:
    """Validate normalised CSR arrays; raise :class:`InvalidHypergraphError`.

    Checks: monotone ``ptr`` starting at 0 and ending at ``len(pins)``,
    pins inside ``[0, n)``, and strictly increasing pins within each
    edge (the normalised form).  O(ρ), fully vectorised.
    """
    if ptr.ndim != 1 or ptr.size == 0 or int(ptr[0]) != 0 \
            or int(ptr[-1]) != pins.size or np.any(np.diff(ptr) < 0):
        raise InvalidHypergraphError("malformed edge_ptr array")
    if pins.size == 0:
        return
    if int(pins.min()) < 0 or int(pins.max()) >= n:
        raise InvalidHypergraphError(f"pins outside [0, {n})")
    inner = np.ones(pins.size, dtype=bool)
    starts = ptr[1:-1]  # positions that start a new edge (empty edges repeat)
    inner[starts[starts < pins.size]] = False
    if not np.all(np.diff(pins)[inner[1:]] > 0):
        raise InvalidHypergraphError(
            "edge pins are not strictly increasing (unnormalised CSR)")


def degrees_from_pins(pins: np.ndarray, n: int) -> np.ndarray:
    """Degree of every node (number of incident hyperedges)."""
    return np.bincount(pins, minlength=n).astype(np.int64)


def incidence_from_csr(ptr: np.ndarray, pins: np.ndarray,
                       n: int) -> tuple[np.ndarray, np.ndarray]:
    """Node→edge incidence CSR ``(node_ptr, node_edges)``.

    A stable counting sort of pins, so each node's incident edge ids
    come out in increasing edge order — identical to the reference fill.
    """
    node_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(pins, minlength=n), out=node_ptr[1:])
    order = np.argsort(pins, kind="stable")
    return node_ptr, edge_ids_from_ptr(ptr)[order]


def contract_csr(ptr: np.ndarray, pins: np.ndarray, mapping: np.ndarray,
                 num_groups: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Contract pins through ``mapping``; drop edges with < 2 distinct pins.

    Returns ``(new_ptr, new_pins, kept)`` where ``kept`` holds the
    original ids of the surviving edges (for edge-weight gathering).
    Image pins are sorted and deduplicated per edge — the sort/unique
    over encoded pin rows that replaces the tuple-of-set Python loop.
    """
    ptr2, pins2 = normalize_edges(np.diff(ptr), mapping[pins], num_groups)
    sizes2 = np.diff(ptr2)
    survive = sizes2 >= 2
    kept = np.flatnonzero(survive)
    new_ptr = np.zeros(kept.size + 1, dtype=np.int64)
    np.cumsum(sizes2[kept], out=new_ptr[1:])
    return new_ptr, pins2[np.repeat(survive, sizes2)], kept


def _pack_rows(rows: np.ndarray, bits: int) -> list[np.ndarray]:
    """Pack each row of small ints into as few int64 sort keys as possible."""
    per_key = max(1, 62 // bits)
    keys = []
    for lo in range(0, rows.shape[1], per_key):
        chunk = rows[:, lo:lo + per_key]
        key = chunk[:, 0].astype(np.int64, copy=True)
        for c in range(1, chunk.shape[1]):
            key <<= bits
            key |= chunk[:, c]
        keys.append(key)
    return keys


def merge_parallel_csr(
    ptr: np.ndarray, pins: np.ndarray, edge_weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Collapse identical hyperedges, summing weights.

    Returns ``(new_ptr, new_pins, new_weights, first_ids)`` with one
    edge per distinct pin row, in order of first occurrence (matching
    the dict-based reference); ``first_ids`` are the original ids of
    the representatives.  Rows are grouped size-class by size-class:
    pins are bit-packed into a few int64 keys, a sort brings identical
    rows together, run boundaries delimit the groups.
    """
    m = ptr.shape[0] - 1
    sizes = np.diff(ptr)
    rep = np.arange(m, dtype=np.int64)
    bits = max(1, int(pins.max()).bit_length()) if pins.size else 1
    for s in np.unique(sizes):
        cls = sizes == s
        idx = np.flatnonzero(cls)
        if idx.size <= 1:
            continue
        if s == 0:
            rep[idx] = idx[0]
            continue
        # rows of one size class are contiguous pin slices: a boolean
        # gather + reshape beats a 2-D fancy index by a wide margin
        rows = pins[np.repeat(cls, sizes)].reshape(-1, s)
        keys = _pack_rows(rows, bits)
        if len(keys) == 1:
            order = np.argsort(keys[0])
        else:
            order = np.lexsort(keys)
        sk = [key[order] for key in keys]
        bound = np.empty(idx.size, dtype=bool)
        bound[0] = True
        bound[1:] = sk[0][1:] != sk[0][:-1]
        for key in sk[1:]:
            bound[1:] |= key[1:] != key[:-1]
        # representative of each group = smallest original edge id in it
        orig = idx[order]
        group_rep = np.minimum.reduceat(orig, np.flatnonzero(bound))
        rep[orig] = group_rep[np.cumsum(bound) - 1]
    first_ids, inv_all = np.unique(rep, return_inverse=True)
    weights = np.bincount(inv_all, weights=np.asarray(edge_weights,
                                                     dtype=np.float64))
    new_ptr, new_pins = gather_rows(ptr, pins, first_ids)
    return new_ptr, new_pins, weights, first_ids


def lambda_counts(ptr: np.ndarray, pins: np.ndarray, labels: np.ndarray,
                  k: int) -> np.ndarray:
    """λ_e per hyperedge: number of distinct parts its pins touch."""
    m = ptr.shape[0] - 1
    if m == 0:
        return np.zeros(0, dtype=np.int64)
    codes = np.sort(edge_ids_from_ptr(ptr) * k + labels[pins])
    if codes.size == 0:
        return np.zeros(m, dtype=np.int64)
    keep = np.empty(codes.size, dtype=bool)
    keep[0] = True
    np.not_equal(codes[1:], codes[:-1], out=keep[1:])
    return np.bincount(codes[keep] // k, minlength=m).astype(np.int64)


def _pin_count_budget() -> int:
    # repro: allow[determinism] — a memory guard, not a result input:
    # the env var only moves the allocation-refusal threshold, and the
    # values computed under any budget are identical.
    raw = os.environ.get("REPRO_PIN_COUNT_BUDGET_BYTES", "")
    return int(raw) if raw.isdigit() else DEFAULT_PIN_COUNT_BUDGET_BYTES


def pin_count_matrix(ptr: np.ndarray, pins: np.ndarray, labels: np.ndarray,
                     k: int, budget_bytes: int | None = None) -> np.ndarray:
    """Dense ``(m, k)`` int32 pin-count matrix for FM refinement.

    ``out[j, p]`` = number of pins of edge ``j`` in part ``p``.  Refuses
    to allocate past ``budget_bytes`` (default
    :data:`DEFAULT_PIN_COUNT_BUDGET_BYTES`, env-overridable) — a clear
    error instead of silently eating gigabytes at large ``k``.
    """
    m = ptr.shape[0] - 1
    if budget_bytes is None:
        budget_bytes = _pin_count_budget()
    needed = m * k * np.dtype(np.int32).itemsize
    if needed > budget_bytes:
        fmt = lambda b: (f"{b / 2**20:.1f} MiB" if b >= 2**20 else f"{b} B")
        raise ProblemTooLargeError(
            f"FM pin-count matrix of shape ({m}, {k}) needs {fmt(needed)} "
            f"(> budget {fmt(budget_bytes)}); reduce k, coarsen the "
            f"hypergraph first, or raise REPRO_PIN_COUNT_BUDGET_BYTES")
    # repro: bounds(len(codes) <= 1e7, k <= 4096)
    # Proof obligation for the int32 cast below: each count is at most
    # the number of pins (ROADMAP scale target 10^7), far under 2**31.
    codes = edge_ids_from_ptr(ptr) * k + labels[pins]
    return (np.bincount(codes, minlength=m * k)
            .reshape(m, k).astype(np.int32))


def adjacency_csr(ptr: np.ndarray, pins: np.ndarray,
                  n: int) -> tuple[np.ndarray, np.ndarray]:
    """Neighbour CSR ``(adj_ptr, adj_nodes)``: nodes sharing a hyperedge.

    Materialises all within-edge (owner, neighbour) pairs — Σ|e|² of
    them — then sorts/dedups via encoded codes.  Neighbours of ``v``
    come out sorted; self-pairs are excluded.
    """
    sizes = np.diff(ptr)
    if pins.size == 0:
        return np.zeros(n + 1, dtype=np.int64), np.zeros(0, dtype=np.int64)
    m = ptr.shape[0] - 1
    sq = sizes * sizes
    owners = np.repeat(pins, np.repeat(sizes, sizes))
    off = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(sq, out=off[1:])
    total = int(off[-1])
    block = np.repeat(np.arange(m, dtype=np.int64), sq)
    t_local = np.arange(total, dtype=np.int64) - off[block]
    cand = pins[ptr[block] + t_local % sizes[block]]
    mask = owners != cand
    codes = np.unique(owners[mask] * np.int64(n) + cand[mask])
    adj_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(codes // n, minlength=n), out=adj_ptr[1:])
    return adj_ptr, codes % n


# ---------------------------------------------------------------------------
# Reference oracles — the original Python-loop implementations, kept for
# property-based equivalence tests and the bench_kernels.py baselines.
# ---------------------------------------------------------------------------

def _reference_normalize(edges, n):
    """Old ``Hypergraph.__init__`` normalisation loop."""
    normalized = []
    for e in edges:
        pins = tuple(sorted(set(int(v) for v in e)))
        if pins and (pins[0] < 0 or pins[-1] >= n):
            raise InvalidHypergraphError(
                f"hyperedge {pins} has pins outside [0, {n})")
        normalized.append(pins)
    return normalized


def _reference_csr(edges):
    """Old ``Hypergraph.csr`` fill loop (edges already normalised)."""
    sizes = np.fromiter((len(e) for e in edges), dtype=np.int64,
                        count=len(edges))
    ptr = np.zeros(len(edges) + 1, dtype=np.int64)
    np.cumsum(sizes, out=ptr[1:])
    pins = np.empty(int(ptr[-1]), dtype=np.int64)
    for j, e in enumerate(edges):
        pins[ptr[j]:ptr[j + 1]] = e
    return ptr, pins


def _reference_degrees(edges, n):
    """Old ``Hypergraph.degrees`` loop."""
    deg = np.zeros(n, dtype=np.int64)
    for e in edges:
        for v in e:
            deg[v] += 1
    return deg


def _reference_incidence(edges, n):
    """Old ``Hypergraph.incidence`` fill loop."""
    deg = _reference_degrees(edges, n)
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=ptr[1:])
    out = np.empty(int(ptr[-1]), dtype=np.int64)
    fill = ptr[:-1].copy()
    for j, e in enumerate(edges):
        for v in e:
            out[fill[v]] = j
            fill[v] += 1
    return ptr, out


def _reference_contract(edges, mapping):
    """Old ``Hypergraph.contract`` edge-image loop; returns (edges, kept)."""
    new_edges, kept = [], []
    for j, e in enumerate(edges):
        img = tuple(sorted(set(int(mapping[v]) for v in e)))
        if len(img) >= 2:
            new_edges.append(img)
            kept.append(j)
    return new_edges, kept


def _reference_merge_parallel(edges, edge_weights):
    """Old ``Hypergraph.merge_parallel_edges`` dict loop."""
    agg, order = {}, []
    for j, e in enumerate(edges):
        if e not in agg:
            agg[e] = 0.0
            order.append(e)
        agg[e] += float(edge_weights[j])
    return order, [agg[e] for e in order]


def _reference_lambdas(edges, labels, k):
    """Per-edge distinct-part counting, plain loop."""
    lam = np.zeros(len(edges), dtype=np.int64)
    for j, e in enumerate(edges):
        lam[j] = len({int(labels[v]) for v in e})
    return lam


def _reference_pin_counts(edges, labels, k):
    """Old FM ``_State.__init__`` pin-count fill loop."""
    counts = np.zeros((len(edges), k), dtype=np.int64)
    for j, e in enumerate(edges):
        for v in e:
            counts[j, labels[v]] += 1
    return counts


def _reference_adjacency(edges, n):
    """Old FM ``_adjacency`` set loop; returns per-node sorted tuples."""
    out = [set() for _ in range(n)]
    for e in edges:
        for v in e:
            out[v].update(e)
    return [tuple(sorted(s - {v})) for v, s in enumerate(out)]


def _reference_edge_ids(ptr):
    """Plain-loop pin→edge-id expansion (``edge_ids_from_ptr`` oracle)."""
    out: list[int] = []
    for j in range(len(ptr) - 1):
        out.extend([j] * int(ptr[j + 1] - ptr[j]))
    return np.asarray(out, dtype=np.int64)


def _reference_gather_rows(ptr, pins, rows):
    """Plain-loop ragged gather (``gather_rows`` oracle)."""
    chunks = [pins[int(ptr[r]):int(ptr[r + 1])] for r in rows]
    new_ptr = np.zeros(len(chunks) + 1, dtype=np.int64)
    np.cumsum(np.asarray([len(c) for c in chunks], dtype=np.int64),
              out=new_ptr[1:])
    if not chunks:
        return new_ptr, np.zeros(0, dtype=np.int64)
    return new_ptr, np.concatenate(chunks).astype(np.int64)


def _reference_check_csr(ptr, pins, n):
    """Plain-loop CSR validation (``check_csr`` oracle)."""
    ptr = np.asarray(ptr)
    pins = np.asarray(pins)
    if ptr.ndim != 1 or ptr.size == 0 or int(ptr[0]) != 0 \
            or int(ptr[-1]) != pins.size:
        raise InvalidHypergraphError("malformed edge_ptr array")
    for j in range(ptr.size - 1):
        if ptr[j + 1] < ptr[j]:
            raise InvalidHypergraphError("malformed edge_ptr array")
        row = pins[int(ptr[j]):int(ptr[j + 1])].tolist()
        for v in row:
            if v < 0 or v >= n:
                raise InvalidHypergraphError(f"pins outside [0, {n})")
        if any(b <= a for a, b in zip(row, row[1:])):
            raise InvalidHypergraphError(
                "edge pins are not strictly increasing (unnormalised CSR)")
