"""Core substrate: hypergraphs, partitions, cost metrics, balance
constraints, computational DAGs and hyperDAGs (paper Section 3)."""

from .balance import (
    MultiConstraint,
    all_parts_nonempty_guaranteed,
    balance_threshold,
    is_balanced,
    max_nonempty_parts_bound,
    min_parts_to_cover,
)
from .cost import Metric, connectivity_cost, cost, cut_edges, cut_net_cost
from .dag import DAG
from .hyperdag import (
    HyperDAGCertificate,
    degree_sequence_admissible,
    densest_hyperdag,
    hendrickson_kolda_hypergraph,
    hyperdag_from_dag,
    is_hyperdag,
    recognize,
    to_dag,
    verify_generators,
)
from .hypergraph import Hypergraph
from .partition import BLUE, RED, Partition, lambdas, part_sizes, part_weights
from .shm import SharedArrays, SharedCSR
from .validation import PartitionReport, validate_partition

__all__ = [
    "BLUE",
    "DAG",
    "HyperDAGCertificate",
    "Hypergraph",
    "Metric",
    "MultiConstraint",
    "Partition",
    "PartitionReport",
    "RED",
    "SharedArrays",
    "SharedCSR",
    "all_parts_nonempty_guaranteed",
    "balance_threshold",
    "connectivity_cost",
    "cost",
    "cut_edges",
    "cut_net_cost",
    "degree_sequence_admissible",
    "densest_hyperdag",
    "hendrickson_kolda_hypergraph",
    "hyperdag_from_dag",
    "is_balanced",
    "is_hyperdag",
    "lambdas",
    "max_nonempty_parts_bound",
    "min_parts_to_cover",
    "part_sizes",
    "part_weights",
    "recognize",
    "to_dag",
    "validate_partition",
    "verify_generators",
]
