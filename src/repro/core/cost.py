"""Partitioning cost metrics (paper Section 3.1).

Two metrics are defined for a k-way partitioning:

* **cut-net**: ``|{e in E : λ_e > 1}|`` — the number of cut hyperedges,
* **connectivity**: ``Σ_e (λ_e − 1)`` — the number of data transfers.

Both respect hyperedge weights.  For ``k = 2`` the two metrics coincide
(the paper notes this; we test it property-based).
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

import numpy as np

from .hypergraph import Hypergraph
from .partition import Partition, lambdas

__all__ = [
    "Metric",
    "cut_net_cost",
    "connectivity_cost",
    "cost",
    "cut_edges",
]


class Metric(str, Enum):
    """Which of the paper's two cost metrics to use."""

    CUT_NET = "cut-net"
    CONNECTIVITY = "connectivity"


def cut_net_cost(graph: Hypergraph, labels: Sequence[int] | np.ndarray, k: int) -> float:
    """Weighted number of hyperedges with λ_e > 1."""
    lam = lambdas(graph, labels, k)
    return float(graph.edge_weights[lam > 1].sum())


def connectivity_cost(graph: Hypergraph, labels: Sequence[int] | np.ndarray, k: int) -> float:
    """Weighted Σ_e (λ_e − 1); empty hyperedges contribute 0."""
    lam = lambdas(graph, labels, k)
    return float((graph.edge_weights * np.maximum(lam - 1, 0)).sum())


def cost(
    graph: Hypergraph,
    partition: Partition | Sequence[int] | np.ndarray,
    metric: Metric = Metric.CONNECTIVITY,
    k: int | None = None,
) -> float:
    """Cost of a partitioning under the chosen metric.

    Accepts either a :class:`Partition` (in which case ``k`` is taken from
    it) or a raw label vector plus ``k``.
    """
    if isinstance(partition, Partition):
        labels, kk = partition.labels, partition.k
    else:
        if k is None:
            raise ValueError("k is required when passing a raw label vector")
        labels, kk = partition, k
    if metric == Metric.CUT_NET:
        return cut_net_cost(graph, labels, kk)
    if metric == Metric.CONNECTIVITY:
        return connectivity_cost(graph, labels, kk)
    raise ValueError(f"unknown metric {metric!r}")


def cut_edges(graph: Hypergraph, labels: Sequence[int] | np.ndarray, k: int) -> np.ndarray:
    """Ids of hyperedges with λ_e > 1."""
    lam = lambdas(graph, labels, k)
    return np.flatnonzero(lam > 1)
