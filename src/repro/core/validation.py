"""Validation and diagnostic reports for partitions and schedules.

Aggregates the scattered validity checks into one structured report —
useful for debugging reductions and for downstream users verifying
third-party partitions (e.g. read from a file).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .balance import MultiConstraint, balance_threshold
from .cost import Metric, connectivity_cost, cut_net_cost
from .hypergraph import Hypergraph
from .partition import Partition, part_sizes

__all__ = ["PartitionReport", "validate_partition"]


@dataclass(frozen=True)
class PartitionReport:
    """Everything one usually wants to know about a partition at once."""

    n: int
    k: int
    sizes: tuple[int, ...]
    cap: int
    balanced: bool
    connectivity: float
    cut_net: float
    constraint_violations: tuple[tuple[int, int, int, int], ...]
    problems: tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return (self.balanced and not self.constraint_violations
                and not self.problems)

    def summary(self) -> str:
        lines = [
            f"partition: n={self.n} k={self.k} sizes={list(self.sizes)}",
            f"balance  : cap={self.cap} balanced={self.balanced}",
            f"cost     : connectivity={self.connectivity:g} "
            f"cut-net={self.cut_net:g}",
        ]
        for j, i, size, cap in self.constraint_violations:
            lines.append(f"VIOLATION: constraint {j}, part {i}: "
                         f"{size} > cap {cap}")
        for p in self.problems:
            lines.append(f"PROBLEM  : {p}")
        return "\n".join(lines)


def validate_partition(
    graph: Hypergraph,
    partition: Partition | Sequence[int] | np.ndarray,
    eps: float = 0.0,
    k: int | None = None,
    constraints: MultiConstraint | None = None,
    relaxed: bool = False,
) -> PartitionReport:
    """Build a :class:`PartitionReport` for a (possibly foreign) partition."""
    problems: list[str] = []
    if isinstance(partition, Partition):
        part = partition
    else:
        arr = np.asarray(partition, dtype=np.int64)
        kk = k if k is not None else (int(arr.max()) + 1 if arr.size else 1)
        if arr.shape != (graph.n,):
            return PartitionReport(
                graph.n, kk, (), 0, False, float("nan"), float("nan"), (),
                (f"label vector has length {arr.shape}, expected {graph.n}",))
        part = Partition(arr, kk)
    if part.n != graph.n:
        problems.append(f"partition covers {part.n} nodes, graph has "
                        f"{graph.n}")
        return PartitionReport(graph.n, part.k, (), 0, False,
                               float("nan"), float("nan"), (),
                               tuple(problems))
    cap = balance_threshold(graph.n, part.k, eps, relaxed=relaxed)
    sizes = part_sizes(part.labels, part.k)
    balanced = bool(sizes.max(initial=0) <= cap)
    viol: tuple[tuple[int, int, int, int], ...] = ()
    if constraints is not None:
        viol = tuple(constraints.violations(part, eps, relaxed=relaxed))
    return PartitionReport(
        graph.n, part.k, tuple(int(s) for s in sizes), cap, balanced,
        connectivity_cost(graph, part.labels, part.k),
        cut_net_cost(graph, part.labels, part.k),
        viol, tuple(problems))
