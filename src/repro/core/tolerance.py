"""Shared numeric tolerances for cost, load, and balance comparisons.

Costs in this library are weighted sums of floats and part loads are
accumulated node weights, so *exact* float comparison is a correctness
hazard: two mathematically equal costs can differ in the last ulp
depending on summation order (serial vs ``n_jobs`` workers, CSR vs
reference kernels).  Every comparison of cost/load values therefore
goes through the helpers below — the static-analysis rule
``float-cost-eq`` (:mod:`repro.analyze`) rejects raw ``==``/``!=``
on such values in library code.

Two tolerance regimes coexist, matching the historical literals:

* :data:`ATOL` (``1e-9``) — absolute slack for balance-cap and load
  feasibility checks (``weight <= cap``): node weights are O(1)–O(n),
  so a fixed absolute slack is appropriate.
* :data:`GAIN_ATOL` (``1e-12``) — the tighter threshold used by
  refinement and search loops when comparing *gains* (cost deltas):
  an improvement smaller than this is noise and must not flip a
  decision, otherwise FM/KL passes can oscillate forever.

All helpers accept scalars or NumPy arrays (broadcasting like the
underlying comparison operators).
"""

from __future__ import annotations

__all__ = [
    "ATOL",
    "GAIN_ATOL",
    "close",
    "geq",
    "gt",
    "leq",
    "lt",
]

#: Absolute slack for balance-cap / load-feasibility comparisons.
ATOL = 1e-9

#: Threshold below which a cost improvement (gain) counts as zero.
GAIN_ATOL = 1e-12


def close(a, b, *, atol: float = ATOL):
    """``|a - b| <= atol`` — tolerant equality of cost/load values."""
    return abs(a - b) <= atol


def leq(a, b, *, atol: float = ATOL):
    """``a <= b`` up to ``atol`` (i.e. ``a <= b + atol``)."""
    return a <= b + atol


def geq(a, b, *, atol: float = ATOL):
    """``a >= b`` up to ``atol`` (i.e. ``a >= b - atol``)."""
    return a >= b - atol


def lt(a, b, *, atol: float = ATOL):
    """``a < b`` by clearly more than ``atol`` (i.e. ``a < b - atol``)."""
    return a < b - atol


def gt(a, b, *, atol: float = ATOL):
    """``a > b`` by clearly more than ``atol`` (i.e. ``a > b + atol``)."""
    return a > b + atol
