"""CLI verbs for the serving layer: ``serve``, ``submit``, ``jobs``.

``repro serve`` runs the server in the foreground until SIGTERM/SIGINT.
``repro serve --self-check`` is the CI smoke tier: it starts a server
on an ephemeral port inside the process, drives one synchronous job,
one asynchronous job, a protocol rejection, and a metrics scrape
through the real HTTP stack, shuts down cleanly, and exits nonzero on
any discrepancy — all in a few seconds.

``repro submit`` sends one job from the command line (inline generator
spec or an ``.hgr`` file) and ``repro jobs`` lists/polls/cancels jobs
on a running server.
"""

from __future__ import annotations

import asyncio
import json
import sys

from ..errors import ReproError
from .server import ServeConfig, Server

__all__ = ["add_serve_parser", "serve_main"]


def add_serve_parser(sub) -> None:
    s = sub.add_parser("serve", help="run the partitioning service")
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=8080,
                   help="listen port (0 = ephemeral)")
    s.add_argument("--workers", type=int, default=2,
                   help="max concurrent worker dispatches")
    s.add_argument("--batch-max", type=int, default=8,
                   help="max small jobs coalesced per dispatch")
    s.add_argument("--batch-window", type=float, default=0.01,
                   metavar="S", help="micro-batch collection window")
    s.add_argument("--queue-limit", type=int, default=128,
                   help="admission queue bound (429 past this)")
    s.add_argument("--deadline", type=float, default=60.0, metavar="S",
                   help="default per-request deadline")
    s.add_argument("--cache-dir", default=".lab-cache",
                   help="content-addressed result cache ('' disables)")
    s.add_argument("--journal", default=None, metavar="PATH",
                   help="append JSONL serve events here")
    s.add_argument("--shard-id", default=None, metavar="ID",
                   help="mesh shard identity (echoed in handles/healthz)")
    s.add_argument("--debug-slow-ms", type=int, default=0, metavar="MS",
                   help="inject a per-job worker sleep (mesh chaos/"
                        "hedging harness only)")
    s.add_argument("--self-check", action="store_true",
                   help="start, exercise the API end to end, shut down")

    j = sub.add_parser("submit", help="submit one job to a server")
    j.add_argument("--host", default="127.0.0.1")
    j.add_argument("--port", type=int, default=8080)
    j.add_argument("--hgr", help="hypergraph file to upload")
    j.add_argument("--generator", help="generator kind (see 'generate')")
    j.add_argument("-n", type=int, default=100)
    j.add_argument("-k", type=int, default=2)
    j.add_argument("--eps", type=float, default=0.03)
    j.add_argument("--op", default="partition",
                   choices=["partition", "schedule", "recognize",
                            "simulate"])
    j.add_argument("--algorithm", default="multilevel")
    j.add_argument("--metric", default="connectivity",
                   choices=["connectivity", "cut-net"])
    j.add_argument("--seed", type=int, default=0)
    j.add_argument("--deadline", type=float, default=None, metavar="S")
    j.add_argument("--mode", default="auto",
                   choices=["auto", "sync", "async"])
    j.add_argument("--wait", action="store_true",
                   help="poll an async handle until it finishes")

    q = sub.add_parser("jobs", help="list / poll / cancel server jobs")
    q.add_argument("--host", default="127.0.0.1")
    q.add_argument("--port", type=int, default=8080)
    q.add_argument("job_id", nargs="?", default=None,
                   help="poll this job instead of listing")
    q.add_argument("--cancel", action="store_true",
                   help="cancel the given job")


def _config_from_args(args) -> ServeConfig:
    return ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        batch_max=args.batch_max, batch_window_s=args.batch_window,
        queue_limit=args.queue_limit, default_deadline_s=args.deadline,
        cache_dir=args.cache_dir or None, journal_path=args.journal,
        shard_id=args.shard_id,
        debug_slow_s=args.debug_slow_ms / 1000.0)


def _serve(args) -> int:
    config = _config_from_args(args)
    if args.self_check:
        return asyncio.run(_self_check(config))
    print(f"repro serve on {config.host}:{config.port} "
          f"(workers={config.workers}, batch_max={config.batch_max}, "
          f"queue_limit={config.queue_limit})", file=sys.stderr)
    try:
        asyncio.run(Server(config).serve_forever())
    except KeyboardInterrupt:
        pass
    return 0


async def _self_check(config: ServeConfig) -> int:
    """End-to-end smoke: sync job, async job, 400, metrics, shutdown."""
    from ..errors import ServeProtocolError
    from .client import ServeClient
    from .jobs import with_deadline

    config.port = 0                 # ephemeral: parallel CI runs coexist
    server = Server(config)
    await server.start()
    failures: list[str] = []

    def check(cond: bool, what: str) -> None:
        (print(f"  ok: {what}") if cond
         else failures.append(what) or print(f"  FAIL: {what}"))

    req = {"op": "partition",
           "graph": {"generator": {"kind": "random", "n": 60,
                                   "seed": 7}},
           "k": 2, "eps": 0.1, "algorithm": "greedy", "seed": 1,
           "deadline_s": 20.0}

    def drive() -> None:
        with ServeClient("127.0.0.1", server.port, timeout_s=25) as c:
            sync = c.partition({**req, "mode": "sync"})
            check(sync["status"] == "done", "sync job completes")
            check("labels" in sync.get("result", {}),
                  "sync result carries labels")
            handle = c.submit({**req, "seed": 2})
            done = handle if handle["status"] == "done" \
                else c.wait(handle["job_id"], timeout_s=20)
            check(done["status"] == "done", "async job completes")
            sim = c.partition({
                "op": "simulate",
                "graph": {"generator": {"kind": "hyperdag-stencil",
                                        "n": 6, "seed": 3}},
                "k": 4, "scheduler": "heft", "imode": "exact",
                "seed": 5, "mode": "sync", "deadline_s": 20.0})
            check(sim["status"] == "done", "simulate job completes")
            sim_result = sim.get("result", {})
            check(sim_result.get("makespan", 0.0)
                  >= sim_result.get("lower_bound", 1.0) > 0
                  and len(sim_result.get("digest", "")) == 64,
                  "simulate result carries makespan and digest")
            again = c.partition({**req, "mode": "sync"})
            check(bool(again.get("cached")), "resubmission is a cache hit")
            try:
                c.partition({"op": "nope", "graph": {}})
                check(False, "protocol error raises")
            except ServeProtocolError:
                check(True, "protocol error raises")
            health = c.health()
            check(health["status"] == "ok", "healthz answers")
            text = c.metrics_text()
            check("repro_serve_http_requests_total" in text
                  and "repro_serve_cache_hit_rate" in text,
                  "metrics scrape renders")

    try:
        await with_deadline(asyncio.to_thread(drive), 60.0)
    except ReproError as exc:
        failures.append(f"self-check drive failed: {exc}")
        print(f"  FAIL: {exc}")
    finally:
        await server.stop()
    print(f"self-check: {'PASS' if not failures else 'FAIL'} "
          f"({len(failures)} failure(s))")
    return 0 if not failures else 1


def _submit(args) -> int:
    from .client import ServeClient

    if args.hgr:
        from pathlib import Path
        graph = {"hgr": Path(args.hgr).read_text()}
    else:
        graph = {"generator": {"kind": args.generator or "random",
                               "n": args.n, "k": args.k,
                               "seed": args.seed}}
    req = {"op": args.op, "graph": graph, "k": args.k, "eps": args.eps,
           "algorithm": args.algorithm, "metric": args.metric,
           "seed": args.seed, "mode": args.mode}
    if args.deadline is not None:
        req["deadline_s"] = args.deadline
    with ServeClient(args.host, args.port) as client:
        if args.mode == "async":
            out = client.submit(req)
            if args.wait and out["status"] not in ("done", "error"):
                out = client.wait(out["job_id"])
        else:
            out = client.partition(req)
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0 if out.get("status") in ("done", "queued", "running") else 1


def _jobs(args) -> int:
    from .client import ServeClient

    with ServeClient(args.host, args.port) as client:
        if args.job_id and args.cancel:
            out = client.cancel(args.job_id)
        elif args.job_id:
            out = client.job(args.job_id)
        else:
            out = client.jobs()
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def serve_main(args) -> int:
    try:
        return {"serve": _serve, "submit": _submit,
                "jobs": _jobs}[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
