"""HTTP front end: hand-rolled HTTP/1.1 over ``asyncio.start_server``.

Pure stdlib by design (the container has no web framework and the repo
bakes in that constraint); the protocol subset is exactly what the
client and the load harness speak: ``Content-Length``-framed requests
with JSON bodies, keep-alive connections, no chunked encoding.

Routes::

    POST   /v1/partition    solve (mode: sync | async | auto)
    POST   /v1/jobs         always async: returns a job handle
    POST   /v1/stream       binary CSR ingest straight into shared memory
    GET    /v1/jobs         recent job summaries
    GET    /v1/jobs/{id}    poll one job (result included when done)
    DELETE /v1/jobs/{id}    cancel a queued job
    GET    /healthz         liveness + queue/cache/memory snapshot
    GET    /metrics         Prometheus text exposition

``/v1/stream`` is the exception to "JSON in, JSON out": its body is
the length-prefixed frame format of :mod:`repro.serve.stream`, read
incrementally off the socket into a shared-memory segment instead of
being materialised here (the framing helpers live in
:mod:`repro.serve.http` so the mesh router can relay the same bytes).

Error mapping: :class:`ServeProtocolError` → 400,
:class:`JobNotFoundError` → 404, oversized body → 413,
:class:`QueueFullError` → 429 with ``Retry-After``,
:class:`DeadlineExceededError` on a sync wait → 504 (the job keeps its
handle and can still be polled).  Anything else → 500 with the error
text — never a traceback mid-connection.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from dataclasses import dataclass, field

from ..errors import (DeadlineExceededError, JobNotFoundError,
                      QueueFullError, ReproError, ServeProtocolError)
from ..lab.cache import ResultCache
from ..lab.journal import RunJournal
from .http import HttpError, read_body, read_head, write_response
from .jobs import Job, JobManager, with_deadline
from .metrics import Metrics
from .protocol import parse_job_request
from .stream import ingest_stream

__all__ = ["ServeConfig", "Server", "run_server"]

#: Sync requests whose estimated size is below this run in "auto" mode
#: without a handle round-trip; bigger ones get a 202 + job handle.
_AUTO_SYNC_PINS = 200_000

_MAX_BODY = 64 * 1024 * 1024


@dataclass
class ServeConfig:
    """Everything ``repro serve`` can tune from the command line."""

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 2
    batch_max: int = 8
    batch_window_s: float = 0.01
    queue_limit: int = 128
    default_deadline_s: float = 60.0
    small_pins: int = 20_000
    cache_dir: str | None = ".lab-cache"
    journal_path: str | None = None
    #: Mesh shard identity; echoed in /healthz and job handles so the
    #: router (and the chaos harness) can tell who served what.
    shard_id: str | None = None
    #: Debug-only worker slowdown (seconds per job) injected by the
    #: mesh harness to manufacture a slow shard; 0 disables it.
    debug_slow_s: float = 0.0
    extra: dict = field(default_factory=dict)


class Server:
    """One serving instance: a JobManager plus the HTTP loop."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        self.metrics = Metrics()
        cache = (ResultCache(cfg.cache_dir) if cfg.cache_dir else None)
        journal = (RunJournal(cfg.journal_path) if cfg.journal_path
                   else None)
        self.journal = journal
        self.manager = JobManager(
            workers=cfg.workers, batch_max=cfg.batch_max,
            batch_window_s=cfg.batch_window_s,
            queue_limit=cfg.queue_limit,
            default_deadline_s=cfg.default_deadline_s,
            small_pins=cfg.small_pins, cache=cache, journal=journal,
            metrics=self.metrics, debug_slow_s=cfg.debug_slow_s)
        self._server: asyncio.AbstractServer | None = None
        self._started_ts = time.time()
        self.port: int | None = None   # actual port (after bind)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self.manager.start()
        self._server = await asyncio.start_server(  # analyze: allow(serve-timeout) — bind/listen at startup; nothing to time-box yet and failure must propagate to the CLI
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_ts = time.time()
        if self.journal is not None:
            self.journal.record("serve_start", host=self.config.host,
                                port=self.port,
                                workers=self.config.workers)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await with_deadline(self._server.wait_closed(), 5.0)
        await self.manager.stop()
        if self.journal is not None:
            self.journal.record("serve_stop")
            self.journal.close()

    async def serve_forever(self) -> None:
        """Run until SIGTERM/SIGINT; then shut down gracefully."""
        import sys
        await self.start()
        # machine-parseable ready line (tests and scripts bind port 0)
        print(f"repro serve listening on {self.config.host}:{self.port}",
              file=sys.stderr, flush=True)
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop_event.set)
            except (NotImplementedError, RuntimeError):
                pass  # platform without signal support in the loop
        try:
            await stop_event.wait()  # analyze: allow(serve-timeout) — the process-lifetime wait; bounding it would mean a server that exits on a timer
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.metrics.inc("http_connections")
        try:
            while True:
                try:
                    head = await read_head(reader)
                except DeadlineExceededError:
                    break           # idle keep-alive connection: hang up
                except HttpError as exc:
                    await write_response(
                        writer, exc.status, {"error": str(exc)},
                        exc.headers, keep_alive=False)
                    break
                if head is None:
                    break           # clean EOF between requests
                method, target, headers = head
                self.metrics.inc("http_requests")
                force_close = False
                try:
                    if (method == "POST"
                            and target.split("?", 1)[0] == "/v1/stream"):
                        status, payload, extra = await self._handle_stream(
                            reader, headers)
                    else:
                        body = await read_body(reader, headers,
                                               max_body=_MAX_BODY)
                        status, payload, extra = await self._route(
                            method, target, body)
                except HttpError as exc:
                    status = exc.status
                    payload = {"error": str(exc)}
                    extra = exc.headers
                    force_close = exc.close
                except ServeProtocolError as exc:
                    status, payload, extra = 400, {"error": str(exc)}, {}
                except JobNotFoundError as exc:
                    status, payload, extra = 404, {"error": str(exc)}, {}
                except QueueFullError as exc:
                    self.metrics.inc("http_429")
                    status = 429
                    payload = {"error": str(exc)}
                    extra = {"Retry-After":
                             str(self.manager.retry_after_hint())}
                except ReproError as exc:
                    status, payload, extra = 500, {"error": str(exc)}, {}
                keep_alive = (headers.get("connection", "") != "close"
                              and not force_close)
                await write_response(writer, status, payload,
                                     extra, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        except Exception:  # analyze: allow(silent-except) — one broken connection must never take down the accept loop; the request is already journalled
            pass
        finally:
            try:
                writer.close()
                await with_deadline(writer.wait_closed(), 2.0)
            except (Exception, DeadlineExceededError):  # analyze: allow(silent-except) — socket teardown race; the fd is closed either way
                pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method: str, target: str,
                     body: bytes) -> tuple[int, dict, dict]:
        target = target.split("?", 1)[0]
        if target == "/healthz" and method == "GET":
            return 200, self._health(), {}
        if target == "/metrics" and method == "GET":
            return 200, {"_raw": self.metrics.render_prometheus()}, {}
        if target == "/v1/partition" and method == "POST":
            return await self._handle_solve(body)
        if target == "/v1/jobs" and method == "POST":
            return await self._handle_solve(body, force_async=True)
        if target == "/v1/jobs" and method == "GET":
            return 200, {"jobs": self.manager.job_summaries()}, {}
        if target.startswith("/v1/jobs/"):
            job_id = target[len("/v1/jobs/"):]
            if method == "GET":
                return 200, self._tag(self.manager.get(job_id)
                                      .describe()), {}
            if method == "DELETE":
                return 200, self._tag(self.manager.cancel(job_id)
                                      .describe()), {}
        raise HttpError(405 if target in ("/v1/partition", "/v1/jobs",
                                          "/v1/stream", "/healthz",
                                          "/metrics")
                        else 404,
                        f"no route for {method} {target}")

    async def _handle_solve(self, body: bytes,
                            force_async: bool = False):
        try:
            obj = json.loads(body or b"{}")
        except ValueError:
            raise HttpError(400, "request body is not valid JSON") \
                from None
        request = parse_job_request(obj)
        job = self.manager.submit(request)
        mode = "async" if force_async else request.mode
        if mode == "auto":
            mode = ("sync" if request.est_pins <= _AUTO_SYNC_PINS
                    else "async")
        if job.done or mode == "async":
            status = 200 if job.done else 202
            return status, self._tag(job.describe()), {}
        remaining = None
        if job.deadline_mono is not None:
            remaining = max(0.05, job.deadline_mono - time.monotonic())
        try:
            await with_deadline(asyncio.shield(job.future), remaining)
        except DeadlineExceededError:
            return 504, self._tag(job.describe(with_result=False)), {}
        return 200, self._tag(job.describe()), {}

    async def _handle_stream(self, reader: asyncio.StreamReader,
                             headers: dict) -> tuple[int, dict, dict]:
        """Binary CSR ingest: segment-backed submit, always async."""
        job = await ingest_stream(reader, headers, manager=self.manager,
                                  metrics=self.metrics,
                                  max_body=_MAX_BODY)
        status = 200 if job.done else 202
        return status, self._tag(job.describe()), {}

    def _tag(self, payload: dict) -> dict:
        """Stamp this shard's identity onto a job handle."""
        if self.config.shard_id is not None:
            payload["shard"] = self.config.shard_id
        return payload

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _health(self) -> dict:
        try:
            import resource
            rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        except Exception:  # analyze: allow(silent-except) — resource is POSIX-only; health must not 500 over a missing metric
            rss_kb = 0
        return {
            "status": "ok",
            "shard": self.config.shard_id,
            "uptime_s": round(time.time() - self._started_ts, 3),
            "pid": os.getpid(),
            "queue_depth": self.manager.queue_depth,
            "in_flight": self.manager.in_flight,
            "workers": self.manager.workers,
            "queue_limit": self.manager.queue_limit,
            "metrics": self.metrics.snapshot(),
        }


async def run_server(config: ServeConfig | None = None) -> None:
    """Entry point used by ``repro serve``."""
    await Server(config).serve_forever()
