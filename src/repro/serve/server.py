"""HTTP front end: hand-rolled HTTP/1.1 over ``asyncio.start_server``.

Pure stdlib by design (the container has no web framework and the repo
bakes in that constraint); the protocol subset is exactly what the
client and the load harness speak: ``Content-Length``-framed requests
with JSON bodies, keep-alive connections, no chunked encoding.

Routes::

    POST   /v1/partition    solve (mode: sync | async | auto)
    POST   /v1/jobs         always async: returns a job handle
    GET    /v1/jobs         recent job summaries
    GET    /v1/jobs/{id}    poll one job (result included when done)
    DELETE /v1/jobs/{id}    cancel a queued job
    GET    /healthz         liveness + queue/cache/memory snapshot
    GET    /metrics         Prometheus text exposition

Error mapping: :class:`ServeProtocolError` → 400,
:class:`JobNotFoundError` → 404, oversized body → 413,
:class:`QueueFullError` → 429 with ``Retry-After``,
:class:`DeadlineExceededError` on a sync wait → 504 (the job keeps its
handle and can still be polled).  Anything else → 500 with the error
text — never a traceback mid-connection.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from dataclasses import dataclass, field

from ..errors import (DeadlineExceededError, JobNotFoundError,
                      QueueFullError, ReproError, ServeProtocolError)
from ..lab.cache import ResultCache
from ..lab.journal import RunJournal
from .jobs import Job, JobManager, with_deadline
from .metrics import Metrics
from .protocol import parse_job_request

__all__ = ["ServeConfig", "Server", "run_server"]

#: Sync requests whose estimated size is below this run in "auto" mode
#: without a handle round-trip; bigger ones get a 202 + job handle.
_AUTO_SYNC_PINS = 200_000

_MAX_BODY = 64 * 1024 * 1024
_HEADER_DEADLINE_S = 30.0


@dataclass
class ServeConfig:
    """Everything ``repro serve`` can tune from the command line."""

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 2
    batch_max: int = 8
    batch_window_s: float = 0.01
    queue_limit: int = 128
    default_deadline_s: float = 60.0
    small_pins: int = 20_000
    cache_dir: str | None = ".lab-cache"
    journal_path: str | None = None
    extra: dict = field(default_factory=dict)


class _HttpError(ReproError):
    """Internal: carries an HTTP status through the handler stack."""

    def __init__(self, status: int, message: str,
                 headers: dict | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            408: "Request Timeout", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            504: "Gateway Timeout"}


class Server:
    """One serving instance: a JobManager plus the HTTP loop."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        self.metrics = Metrics()
        cache = (ResultCache(cfg.cache_dir) if cfg.cache_dir else None)
        journal = (RunJournal(cfg.journal_path) if cfg.journal_path
                   else None)
        self.journal = journal
        self.manager = JobManager(
            workers=cfg.workers, batch_max=cfg.batch_max,
            batch_window_s=cfg.batch_window_s,
            queue_limit=cfg.queue_limit,
            default_deadline_s=cfg.default_deadline_s,
            small_pins=cfg.small_pins, cache=cache, journal=journal,
            metrics=self.metrics)
        self._server: asyncio.AbstractServer | None = None
        self._started_ts = time.time()
        self.port: int | None = None   # actual port (after bind)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self.manager.start()
        self._server = await asyncio.start_server(  # analyze: allow(serve-timeout) — bind/listen at startup; nothing to time-box yet and failure must propagate to the CLI
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_ts = time.time()
        if self.journal is not None:
            self.journal.record("serve_start", host=self.config.host,
                                port=self.port,
                                workers=self.config.workers)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await with_deadline(self._server.wait_closed(), 5.0)
        await self.manager.stop()
        if self.journal is not None:
            self.journal.record("serve_stop")
            self.journal.close()

    async def serve_forever(self) -> None:
        """Run until SIGTERM/SIGINT; then shut down gracefully."""
        import sys
        await self.start()
        # machine-parseable ready line (tests and scripts bind port 0)
        print(f"repro serve listening on {self.config.host}:{self.port}",
              file=sys.stderr, flush=True)
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop_event.set)
            except (NotImplementedError, RuntimeError):
                pass  # platform without signal support in the loop
        try:
            await stop_event.wait()  # analyze: allow(serve-timeout) — the process-lifetime wait; bounding it would mean a server that exits on a timer
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except DeadlineExceededError:
                    break           # idle keep-alive connection: hang up
                except _HttpError as exc:
                    await self._write_response(
                        writer, exc.status, {"error": str(exc)},
                        exc.headers, keep_alive=False)
                    break
                if request is None:
                    break           # clean EOF between requests
                method, target, headers, body = request
                self.metrics.inc("http_requests")
                try:
                    status, payload, extra = await self._route(
                        method, target, body)
                except _HttpError as exc:
                    status = exc.status
                    payload = {"error": str(exc)}
                    extra = exc.headers
                except ServeProtocolError as exc:
                    status, payload, extra = 400, {"error": str(exc)}, {}
                except JobNotFoundError as exc:
                    status, payload, extra = 404, {"error": str(exc)}, {}
                except QueueFullError as exc:
                    self.metrics.inc("http_429")
                    status = 429
                    payload = {"error": str(exc)}
                    extra = {"Retry-After":
                             str(self.manager.retry_after_hint())}
                except ReproError as exc:
                    status, payload, extra = 500, {"error": str(exc)}, {}
                keep_alive = (headers.get("connection", "") != "close")
                await self._write_response(writer, status, payload,
                                           extra, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        except Exception:  # analyze: allow(silent-except) — one broken connection must never take down the accept loop; the request is already journalled
            pass
        finally:
            try:
                writer.close()
                await with_deadline(writer.wait_closed(), 2.0)
            except (Exception, DeadlineExceededError):  # analyze: allow(silent-except) — socket teardown race; the fd is closed either way
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one framed request; None on EOF; _HttpError on garbage."""
        line = await with_deadline(reader.readline(), _HEADER_DEADLINE_S)
        if not line:
            return None
        try:
            method, target, _version = line.decode("ascii").split()
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            raw = await with_deadline(reader.readline(),
                                      _HEADER_DEADLINE_S)
            if raw in (b"\r\n", b"\n", b""):
                break
            try:
                name, _, value = raw.decode("latin-1").partition(":")
            except UnicodeDecodeError:
                raise _HttpError(400, "undecodable header") from None
            headers[name.strip().lower()] = value.strip().lower() \
                if name.strip().lower() == "connection" else value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise _HttpError(400, "bad Content-Length") from None
            if n > _MAX_BODY:
                raise _HttpError(413, f"body of {n} bytes exceeds the "
                                      f"{_MAX_BODY} byte limit")
            if n:
                body = await with_deadline(reader.readexactly(n),
                                           _HEADER_DEADLINE_S)
        return method.upper(), target, headers, body

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, payload: dict,
                              extra: dict, keep_alive: bool) -> None:
        if "_raw" in payload:       # /metrics: Prometheus text format
            body = payload["_raw"].encode()
            ctype = "text/plain; version=0.0.4"
        else:
            body = json.dumps(payload).encode()
            ctype = "application/json"
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {ctype}",
                f"Content-Length: {len(body)}",
                f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        head.extend(f"{k}: {v}" for k, v in extra.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method: str, target: str,
                     body: bytes) -> tuple[int, dict, dict]:
        target = target.split("?", 1)[0]
        if target == "/healthz" and method == "GET":
            return 200, self._health(), {}
        if target == "/metrics" and method == "GET":
            return 200, {"_raw": self.metrics.render_prometheus()}, {}
        if target == "/v1/partition" and method == "POST":
            return await self._handle_solve(body)
        if target == "/v1/jobs" and method == "POST":
            return await self._handle_solve(body, force_async=True)
        if target == "/v1/jobs" and method == "GET":
            return 200, {"jobs": self.manager.job_summaries()}, {}
        if target.startswith("/v1/jobs/"):
            job_id = target[len("/v1/jobs/"):]
            if method == "GET":
                return 200, self.manager.get(job_id).describe(), {}
            if method == "DELETE":
                return 200, self.manager.cancel(job_id).describe(), {}
        raise _HttpError(405 if target in ("/v1/partition", "/v1/jobs",
                                           "/healthz", "/metrics")
                         else 404,
                         f"no route for {method} {target}")

    async def _handle_solve(self, body: bytes,
                            force_async: bool = False):
        try:
            obj = json.loads(body or b"{}")
        except ValueError:
            raise _HttpError(400, "request body is not valid JSON") \
                from None
        request = parse_job_request(obj)
        job = self.manager.submit(request)
        mode = "async" if force_async else request.mode
        if mode == "auto":
            mode = ("sync" if request.est_pins <= _AUTO_SYNC_PINS
                    else "async")
        if job.done or mode == "async":
            status = 200 if job.done else 202
            return status, job.describe(), {}
        remaining = None
        if job.deadline_mono is not None:
            remaining = max(0.05, job.deadline_mono - time.monotonic())
        try:
            await with_deadline(asyncio.shield(job.future), remaining)
        except DeadlineExceededError:
            return 504, job.describe(with_result=False), {}
        return 200, job.describe(), {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _health(self) -> dict:
        try:
            import resource
            rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        except Exception:  # analyze: allow(silent-except) — resource is POSIX-only; health must not 500 over a missing metric
            rss_kb = 0
        return {
            "status": "ok",
            "uptime_s": round(time.time() - self._started_ts, 3),
            "pid": os.getpid(),
            "queue_depth": self.manager.queue_depth,
            "in_flight": self.manager.in_flight,
            "workers": self.manager.workers,
            "queue_limit": self.manager.queue_limit,
            "metrics": self.metrics.snapshot(),
        }


async def run_server(config: ServeConfig | None = None) -> None:
    """Entry point used by ``repro serve``."""
    await Server(config).serve_forever()
