"""Binary CSR streaming: wire codec, shared-segment registry, ingest.

The JSON graph specs in :mod:`repro.serve.protocol` materialise every
pin as a Python ``int`` twice (client ``json.dumps``, server
``json.loads`` + per-int validation) — at 10^6 pins that is seconds of
pure serialisation before a worker sees the graph.  ``POST /v1/stream``
replaces that path: the client sends the CSR arrays as length-prefixed
raw ``int64`` chunks and the server writes them *directly into a
shared-memory segment* as they arrive off the socket.  The worker then
attaches the segment zero-copy; no JSON, no Python-int round trip, no
second copy of the pin list anywhere.

Wire format (one HTTP request body, ``Content-Length``-framed)::

    magic   b"RMSH1\\n"
    header  u32 LE length, then JSON:
              {"request": {...job fields, no "graph"...},
               "csr": {"n": int, "m": int, "pins": int},
               "digest": "<sha256 hex of ptr bytes || pin bytes>"}
    chunks  repeated: u8 kind (0 = ptr, 1 = pins),
                      u64 LE payload bytes,
                      raw little-endian int64 data
            (all ptr chunks first, then all pin chunks; chunk
            boundaries are arbitrary — the digest is over the logical
            array bytes, so it is chunking-independent)

Cache identity: the canonical graph spec is
``{"stream": {"digest", "n", "m", "pins"}}`` — content-addressed like
every other spec, so a repeat upload (or a later JSON poll of the same
key) is a cache hit on any shard.  The shared-memory descriptor itself
is transport state, never part of the key.

Segments are content-addressed too: a finished upload lives under
``repro_stream_<digest[:24]>`` with a ``ready`` flag set only after the
arrays are complete and digest-verified, so N shard processes on one
host ingesting the same graph share *one* parent-owned segment — the
second shard attaches instead of allocating (the cross-shard half of
the refcounting story; :class:`SegmentRegistry` is the in-process
half).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import struct
from collections import OrderedDict
from typing import Any, Iterator, Mapping

import numpy as np

from ..core.shm import SharedCSR
from ..errors import ReproError, ServeProtocolError, SharedMemoryError
from .http import HttpError, content_length
from .jobs import with_deadline
from .protocol import MAX_PINS, JobRequest, parse_job_request

__all__ = [
    "SegmentRegistry",
    "csr_digest",
    "encode_stream",
    "ingest_stream",
    "request_from_header",
]

MAGIC = b"RMSH1\n"
STREAM_CONTENT_TYPE = "application/x-repro-stream"
CHUNK_PTR = 0
CHUNK_PINS = 1

_STREAM_SEG_PREFIX = "repro_stream_"
_HEADER_MAX_BYTES = 1 << 20
_READ_DEADLINE_S = 30.0

#: Zero-reference segments kept resident for reuse before eviction.
#: Bounds idle /dev/shm usage to a handful of graphs per process; the
#: registry's ``close_all`` (server shutdown) clears even those.
_RETAIN_IDLE_SEGMENTS = 4


# ---------------------------------------------------------------------------
# Codec (client side; also used by the mesh router to peek at headers)
# ---------------------------------------------------------------------------

def csr_digest(ptr: np.ndarray, pins: np.ndarray) -> str:
    """sha256 over the logical array bytes (ptr first, then pins)."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(ptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(pins, dtype=np.int64).tobytes())
    return h.hexdigest()


def stream_graph_spec(digest: str, n: int, m: int, pins: int) -> dict:
    """The canonical (cache-keyed) graph spec for a streamed CSR."""
    return {"stream": {"digest": digest, "n": int(n), "m": int(m),
                       "pins": int(pins)}}


def encode_stream(request: Mapping[str, Any], *, n: int,
                  ptr: np.ndarray, pins: np.ndarray,
                  chunk_bytes: int = 1 << 20,
                  ) -> tuple[Iterator[bytes], int, str]:
    """Frame a job request + CSR arrays for ``POST /v1/stream``.

    Returns ``(chunk iterator, total body length, digest)`` — the
    length is exact so the caller can send a correct ``Content-Length``
    before the iterator runs.  ``request`` carries everything a JSON
    submit would except the graph.
    """
    if "graph" in request:
        raise ServeProtocolError(
            "stream requests carry the graph as binary chunks; "
            "remove 'graph' from the request object")
    ptr_a = np.ascontiguousarray(ptr, dtype=np.int64)
    pins_a = np.ascontiguousarray(pins, dtype=np.int64)
    digest = csr_digest(ptr_a, pins_a)
    header = {"request": dict(request),
              "csr": {"n": int(n), "m": int(len(ptr_a)) - 1,
                      "pins": int(len(pins_a))},
              "digest": digest}
    hjson = json.dumps(header, sort_keys=True).encode()
    chunk_bytes = max(8, int(chunk_bytes))

    def spans(nbytes: int) -> list[tuple[int, int]]:
        return [(off, min(off + chunk_bytes, nbytes))
                for off in range(0, nbytes, chunk_bytes)]

    total = len(MAGIC) + 4 + len(hjson)
    for arr in (ptr_a, pins_a):
        total += sum(9 + (hi - lo) for lo, hi in spans(arr.nbytes))

    def gen() -> Iterator[bytes]:
        yield MAGIC + struct.pack("<I", len(hjson)) + hjson
        for kind, arr in ((CHUNK_PTR, ptr_a), (CHUNK_PINS, pins_a)):
            raw = arr.tobytes()
            for lo, hi in spans(len(raw)):
                yield struct.pack("<BQ", kind, hi - lo) + raw[lo:hi]

    return gen(), total, digest


def request_from_header(header: Mapping[str, Any]) -> JobRequest:
    """Validate a stream frame header into a :class:`JobRequest`.

    Shared by the shard (ingest) and the router (routing key): both
    must derive the *same* cache key from the same header bytes.
    """
    if not isinstance(header, Mapping):
        raise ServeProtocolError("stream header must be a JSON object")
    csr = header.get("csr")
    if not isinstance(csr, Mapping):
        raise ServeProtocolError("stream header needs a 'csr' object")
    dims = {}
    for field in ("n", "m", "pins"):
        v = csr.get(field)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            raise ServeProtocolError(
                f"stream header 'csr.{field}' must be a non-negative "
                f"integer, got {v!r}")
        dims[field] = v
    digest = header.get("digest")
    if (not isinstance(digest, str) or len(digest) != 64
            or any(c not in "0123456789abcdef" for c in digest)):
        raise ServeProtocolError(
            "stream header 'digest' must be 64 lowercase hex chars")
    req = header.get("request", {})
    if not isinstance(req, Mapping):
        raise ServeProtocolError("stream header 'request' must be an object")
    if "graph" in req:
        raise ServeProtocolError(
            "stream header 'request' must not contain 'graph'")
    obj = dict(req)
    obj["graph"] = stream_graph_spec(digest, dims["n"], dims["m"],
                                     dims["pins"])
    return parse_job_request(obj)


# ---------------------------------------------------------------------------
# Segment registry (one per server process)
# ---------------------------------------------------------------------------

class SegmentRegistry:
    """Refcounted shared-memory segments, keyed by content address.

    Keys are ``"csr:<digest>"`` (streamed uploads) and
    ``"spec:<sha256 of canonical JSON>"`` (hoisted inline specs); the
    prefixes keep the two content-address spaces from colliding.  A
    segment is *live* while any in-flight job references it, then
    parked in a small idle LRU so back-to-back batches over the same
    graph reuse one segment and one parse; eviction (and
    :meth:`close_all` at shutdown) closes and — if this process owns
    the segment — unlinks it.  Single-threaded by design: every caller
    runs on the server's event loop.
    """

    def __init__(self, retain: int = _RETAIN_IDLE_SEGMENTS) -> None:
        self._retain = max(0, int(retain))
        self._live: dict[str, list] = {}        # ref -> [handle, refcount]
        self._idle: OrderedDict[str, SharedCSR] = OrderedDict()

    def __contains__(self, ref: str) -> bool:
        return ref in self._live or ref in self._idle

    def __len__(self) -> int:
        return len(self._live) + len(self._idle)

    def adopt(self, ref: str, shared: SharedCSR) -> None:
        """Take ownership of ``shared`` under ``ref`` (zero refs)."""
        if ref in self:
            # content-addressed duplicate (two concurrent uploads of
            # the same graph through different code paths): keep the
            # registered one, drop the newcomer
            shared.close()
            shared.unlink()
            return
        self._idle[ref] = shared
        self._evict()

    def acquire(self, ref: str) -> bool:
        """Pin ``ref`` for one in-flight use; False if unknown."""
        if ref in self._live:
            self._live[ref][1] += 1
            return True
        if ref in self._idle:
            self._live[ref] = [self._idle.pop(ref), 1]
            return True
        return False

    def release(self, ref: str) -> None:
        """Drop one reference; last one parks the segment in the LRU."""
        entry = self._live.get(ref)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            del self._live[ref]
            self._idle[ref] = entry[0]
            self._evict()

    def descriptor(self, ref: str) -> dict | None:
        """Picklable attach descriptor for a registered segment."""
        if ref in self._live:
            return self._live[ref][0].descriptor()
        if ref in self._idle:
            return self._idle[ref].descriptor()
        return None

    def _evict(self) -> None:
        while len(self._idle) > self._retain:
            _ref, shared = self._idle.popitem(last=False)
            shared.close()
            shared.unlink()

    def close_all(self) -> None:
        """Shutdown: close + unlink everything, refcounts be damned."""
        for entry in self._live.values():
            entry[0].close()
            entry[0].unlink()
        self._live.clear()
        for shared in self._idle.values():
            shared.close()
            shared.unlink()
        self._idle.clear()


# ---------------------------------------------------------------------------
# Server-side ingest
# ---------------------------------------------------------------------------

def _csr_fields(n: int, m: int, pins: int) -> dict:
    """Field table matching :meth:`SharedCSR.allocate` exactly."""
    return {"edge_ptr": [[m + 1], "<i8"],
            "edge_pins": [[pins], "<i8"],
            "node_weights": [[n], "<f8"],
            "edge_weights": [[m], "<f8"],
            "ready": [[1], "<i8"]}


def segment_name(digest: str) -> str:
    return _STREAM_SEG_PREFIX + digest[:24]


def _attach_ready(digest: str, n: int, m: int, pins: int) -> SharedCSR | None:
    """Attach a finished upload published by another process, or None."""
    descriptor = {"arrays": {"seg": segment_name(digest),
                             "fields": _csr_fields(n, m, pins)},
                  "n": n, "name": None}
    try:
        shared = SharedCSR.attach(descriptor)
    except SharedMemoryError:
        return None
    if int(shared["ready"][0]) != 1:
        # another writer is mid-fill; don't wait on it — the caller
        # falls back to a private segment
        shared.close()
        return None
    return shared


def _allocate_segment(digest: str, n: int, m: int,
                      pins: int) -> tuple[SharedCSR, bool]:
    """(handle, created) — create the content-addressed segment or
    attach to a ready one; races fall back to an anonymous segment."""
    try:
        return SharedCSR.allocate(n, m, pins,
                                  name=segment_name(digest)), True
    except FileExistsError:
        ready = _attach_ready(digest, n, m, pins)
        if ready is not None:
            return ready, False
        # raced an unfinished writer (or a stale leftover under the
        # name): a private unnamed segment always works
        return SharedCSR.allocate(n, m, pins), True


async def ingest_stream(reader, headers: Mapping[str, str], *,
                        manager, metrics, max_body: int):
    """Consume one ``/v1/stream`` body; return the submitted Job.

    The body is read incrementally: array chunks go straight into the
    shared segment (or into the digest check when the segment already
    exists).  Any framing violation raises ``HttpError(close=True)``
    because the connection's byte position is unrecoverable; errors
    after the full body was consumed keep the connection alive.
    """
    total = content_length(headers, max_body=max_body)
    if total is None:
        raise HttpError(411, "stream requests need a Content-Length")
    consumed = 0

    async def take(n: int) -> bytes:
        nonlocal consumed
        consumed += n
        if consumed > total:
            raise HttpError(400, "stream frame exceeds Content-Length",
                            close=True)
        return await with_deadline(reader.readexactly(n),
                                   _READ_DEADLINE_S)

    magic = await take(len(MAGIC))
    if magic != MAGIC:
        raise HttpError(400, "bad stream magic (expected RMSH1)",
                        close=True)
    (hlen,) = struct.unpack("<I", await take(4))
    if hlen > _HEADER_MAX_BYTES:
        raise HttpError(400, "stream header too large", close=True)
    try:
        header = json.loads(await take(hlen))
    except ValueError:
        raise HttpError(400, "stream header is not valid JSON",
                        close=True) from None
    try:
        request = request_from_header(header)
    except ReproError as exc:
        raise HttpError(400, str(exc), close=True) from exc
    spec = request.params["graph"]["stream"]
    n, m, pins = spec["n"], spec["m"], spec["pins"]
    digest = spec["digest"]
    if pins > MAX_PINS:
        raise HttpError(413, f"{pins} pins exceeds the server limit of "
                             f"{MAX_PINS}", close=True)
    ref = f"csr:{digest}"
    registry = manager.segments

    shared: SharedCSR | None = None
    created = False
    if not registry.acquire(ref):
        reuse = _attach_ready(digest, n, m, pins)
        if reuse is not None:
            shared, created = reuse, False
        else:
            shared, created = _allocate_segment(digest, n, m, pins)
    else:
        metrics.inc("stream_segment_reuse")

    try:
        await _consume_chunks(take, shared if created else None,
                              n=n, m=m, pins=pins, digest=digest)
        if consumed != total:
            raise HttpError(400, "trailing bytes after stream frame",
                            close=True)
        if created:
            _validate_csr(shared, n=n, pins=pins)
            shared["ready"][0] = 1
    except BaseException:
        if shared is not None:
            shared.close()
            shared.unlink()
        registry.release(ref)
        raise
    if shared is not None:
        if not created:
            metrics.inc("stream_segment_reuse")
        registry.adopt(ref, shared)
        registry.acquire(ref)

    metrics.inc("stream_ingests")
    metrics.inc("stream_bytes", by=float(total))
    request = dataclasses.replace(request, shm_ref=ref)
    try:
        return manager.submit(request)
    except BaseException:
        registry.release(ref)        # e.g. QueueFullError -> 429
        raise


async def _consume_chunks(take, shared: SharedCSR | None, *, n: int,
                          m: int, pins: int, digest: str) -> None:
    """Read the chunk sequence, hashing (and writing, if ``shared``)."""
    need = {CHUNK_PTR: (m + 1) * 8, CHUNK_PINS: pins * 8}
    got = {CHUNK_PTR: 0, CHUNK_PINS: 0}
    dests = {}
    if shared is not None:
        dests = {CHUNK_PTR: shared["edge_ptr"].view(np.uint8),
                 CHUNK_PINS: shared["edge_pins"].view(np.uint8)}
    hasher = hashlib.sha256()
    while got[CHUNK_PTR] < need[CHUNK_PTR] or got[CHUNK_PINS] < need[CHUNK_PINS]:
        head = await take(9)
        kind, nbytes = struct.unpack("<BQ", head)
        if kind not in (CHUNK_PTR, CHUNK_PINS):
            raise HttpError(400, f"unknown stream chunk kind {kind}",
                            close=True)
        if kind == CHUNK_PINS and got[CHUNK_PTR] < need[CHUNK_PTR]:
            raise HttpError(400, "pin chunk before ptr array complete",
                            close=True)
        if nbytes == 0 or got[kind] + nbytes > need[kind]:
            raise HttpError(400, "stream chunk overruns its array",
                            close=True)
        data = await take(int(nbytes))
        hasher.update(data)
        if shared is not None:
            lo = got[kind]
            dests[kind][lo:lo + len(data)] = np.frombuffer(data,
                                                           dtype=np.uint8)
        got[kind] += len(data)
    if hasher.hexdigest() != digest:
        # full body consumed: framing is intact, keep the connection
        raise HttpError(400, "stream digest mismatch: payload does not "
                             "match the header's content address")


def _validate_csr(shared: SharedCSR, *, n: int, pins: int) -> None:
    """Structural CSR checks on the filled segment (vectorised)."""
    ptr = shared["edge_ptr"]
    pin_arr = shared["edge_pins"]
    if int(ptr[0]) != 0 or int(ptr[-1]) != pins:
        raise HttpError(400, "stream ptr must start at 0 and end at the "
                             "pin count")
    if len(ptr) > 1 and bool(np.any(np.diff(ptr) < 0)):
        raise HttpError(400, "stream ptr must be nondecreasing")
    if pins and (int(pin_arr.min()) < 0 or int(pin_arr.max()) >= n):
        raise HttpError(400, f"stream pin out of range 0..{n - 1}")
