"""Service metrics: counters, gauges, and latency quantiles.

Pure stdlib, lock-free (the event loop is single-threaded; worker
counters arrive via job results, not shared memory).  Rendered in the
Prometheus text exposition format at ``/metrics`` and as JSON inside
``/healthz``.  Latencies are kept in a bounded ring buffer so memory
stays constant under unbounded traffic; p50/p99 are computed over the
window on demand.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Mapping

__all__ = ["Metrics"]

_LATENCY_WINDOW = 4096


def _percentile(values: list[float], p: float) -> float:
    """Nearest-rank percentile of ``values`` (0 for an empty window)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(p / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class Metrics:
    """Mutable metric registry for one server instance."""

    def __init__(self, prefix: str = "repro_serve_") -> None:
        self.prefix = prefix
        self.counters: dict[str, float] = {}
        self.worker_counters: dict[str, float] = {}
        self.latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self.gauges: dict[str, Callable[[], float]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, by: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def observe_latency(self, seconds: float) -> None:
        self.latencies.append(float(seconds))

    def merge_worker_counters(self, counters: Mapping[str, float]) -> None:
        """Fold one job's :mod:`repro.instrument` snapshot into totals."""
        for name, value in counters.items():
            self.worker_counters[name] = (
                self.worker_counters.get(name, 0) + value)

    def register_gauge(self, name: str, fn: Callable[[], float]) -> None:
        self.gauges[name] = fn

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def latency_quantiles(self) -> dict[str, float]:
        window = list(self.latencies)
        return {
            "p50": _percentile(window, 50),
            "p99": _percentile(window, 99),
            "count": float(len(window)),
        }

    def cache_hit_rate(self) -> float:
        hits = self.counters.get("cache_hits", 0)
        misses = self.counters.get("cache_misses", 0)
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self) -> dict:
        """JSON-able view of everything (used by tests and /healthz)."""
        return {
            "counters": dict(self.counters),
            "worker_counters": dict(self.worker_counters),
            "gauges": {name: fn() for name, fn in self.gauges.items()},
            "latency": self.latency_quantiles(),
            "cache_hit_rate": self.cache_hit_rate(),
        }

    def render_prometheus(self) -> str:
        """Prometheus text format (counters, gauges, quantile gauges)."""
        lines: list[str] = []

        def emit(name: str, value: float, help_: str = "",
                 kind: str = "counter") -> None:
            if help_:
                lines.append(f"# HELP {name} {help_}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name} {value:g}")

        pre = self.prefix
        for name in sorted(self.counters):
            emit(f"{pre}{name}_total", self.counters[name])
        for name in sorted(self.gauges):
            emit(f"{pre}{name}", self.gauges[name](), kind="gauge")
        q = self.latency_quantiles()
        emit(f"{pre}request_latency_p50_seconds", q["p50"],
             "p50 latency of completed requests (bounded window)", "gauge")
        emit(f"{pre}request_latency_p99_seconds", q["p99"],
             "p99 latency of completed requests (bounded window)", "gauge")
        emit(f"{pre}cache_hit_rate", self.cache_hit_rate(),
             "fraction of jobs answered from the content-addressed cache",
             "gauge")
        for name in sorted(self.worker_counters):
            lines.append(f"# TYPE {pre}worker_counter counter")
            lines.append(
                f'{pre}worker_counter{{name="{name}"}} '
                f"{self.worker_counters[name]:g}")
        return "\n".join(lines) + "\n"
