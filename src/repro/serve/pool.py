"""Micro-batched process dispatch for the serving layer.

One dispatch = one worker process running a *batch* of jobs
sequentially (earliest deadline first) and writing one result file per
job, atomically, straight into the content-addressed cache — the same
filesystem worker protocol as :mod:`repro.lab.executor`, whose
``mp_context`` / ``terminate_process`` / ``atomic_write_json``
primitives this module reuses.  The consequences are load-bearing:

* **amortised overhead** — process start + poll rounding costs are paid
  once per batch, not once per job, which is where the batched
  throughput win on small jobs comes from;
* **streaming results** — the parent resolves each member as its file
  appears, so a small job coalesced with slower siblings does not wait
  for the whole batch;
* **crash recovery for free** — results written before a server kill
  are ordinary cache entries; an identical resubmission after restart
  is a cache hit, not a recompute;
* **deadline enforcement by kill** — a member past its deadline gets
  the whole worker killed (cooperative cancellation has no place to
  hook into a busy solver loop); already-written siblings are
  harvested, unexpired unfinished siblings are reported ``lost`` so the
  manager can requeue them.
"""

from __future__ import annotations

import asyncio
import os
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

from .. import instrument
from ..lab.cache import atomic_write_json
from ..lab.executor import mp_context, reap_process, terminate_process

__all__ = ["BatchMember", "MemberOutcome", "run_batch"]

_POLL_S = 0.004


@dataclass
class BatchMember:
    """One job inside a dispatch."""

    key: str
    seed: int
    params: Mapping
    outfile: Path
    errfile: Path
    deadline_mono: float | None     # time.monotonic() deadline, None = no cap


@dataclass
class MemberOutcome:
    """What happened to one member, as seen by the parent."""

    status: str                     # "ok" | "error" | "timeout" | "lost"
    payload: dict | None = None     # worker-written result file content
    error: str | None = None


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _batch_main(payload: dict) -> None:
    """Run every job in the batch; one atomic result file per job.

    A job that raises writes its traceback to the job's error file and
    the loop continues — per-job failure containment *inside* a batch.
    The solver import happens here (worker side) so a fork-started
    child reuses the parent's warm modules.
    """
    from .runner import solve

    for job in payload["jobs"]:
        out = Path(job["outfile"])
        err = Path(job["errfile"])
        try:
            instrument.reset()
            t0 = time.perf_counter()
            result = solve(seed=job["seed"], **job["params"])
            duration = time.perf_counter() - t0
            try:
                import resource
                rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            except Exception:  # analyze: allow(silent-except) — best-effort metric: resource is POSIX-only and a metrics failure must never fail a finished job
                rss_kb = 0
            atomic_write_json(out, {
                "values": result,
                "duration_s": round(duration, 6),
                "peak_rss_kb": int(rss_kb),
                "counters": instrument.snapshot(),
            })
        except BaseException:
            try:
                atomic_write_json(err, {"error": traceback.format_exc()})
            except BaseException:  # analyze: allow(silent-except) — the error channel itself failed (disk full / kill); exiting nonzero is the only signal left
                os._exit(1)
    os._exit(0)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

def _harvest(member: BatchMember) -> MemberOutcome | None:
    """Turn a member's on-disk files into an outcome (None = not done)."""
    import json

    if member.outfile.exists():
        try:
            payload = json.loads(member.outfile.read_text())
        except ValueError:
            payload = None              # torn read: worker mid-replace
        if payload is not None and "values" in payload:
            return MemberOutcome(status="ok", payload=payload)
    if member.errfile.exists():
        try:
            error = json.loads(member.errfile.read_text()).get("error")
        except ValueError:
            error = None
        if error is not None:
            try:
                member.errfile.unlink()
            except OSError:
                pass
            return MemberOutcome(status="error", error=error)
    return None


async def run_batch(
    members: Sequence[BatchMember],
    *,
    on_outcome: Callable[[BatchMember, MemberOutcome], None],
    poll_s: float = _POLL_S,
) -> None:
    """Dispatch ``members`` to one worker process and stream outcomes.

    ``on_outcome`` fires exactly once per member, in completion order.
    Cancellation (server shutdown) kills the worker and reports every
    unresolved member as ``lost``.
    """
    if not members:
        return
    ordered = sorted(
        members,
        key=lambda m: (m.deadline_mono is None,
                       m.deadline_mono if m.deadline_mono is not None
                       else 0.0))
    payload = {"jobs": [{"seed": m.seed, "params": dict(m.params),
                         "outfile": str(m.outfile),
                         "errfile": str(m.errfile)} for m in ordered]}
    for m in ordered:
        m.outfile.parent.mkdir(parents=True, exist_ok=True)
        m.errfile.parent.mkdir(parents=True, exist_ok=True)
    ctx = mp_context()
    proc = ctx.Process(target=_batch_main, args=(payload,), daemon=True)
    proc.start()
    pending = list(ordered)

    def sweep() -> None:
        nonlocal pending
        still: list[BatchMember] = []
        for m in pending:
            outcome = _harvest(m)
            if outcome is not None:
                on_outcome(m, outcome)
            else:
                still.append(m)
        pending = still

    def fail_rest(expired: set[str]) -> None:
        sweep()                      # last chance: files written pre-kill
        for m in pending:
            if m.key in expired:
                on_outcome(m, MemberOutcome(
                    status="timeout", error="deadline exceeded in worker"))
            else:
                on_outcome(m, MemberOutcome(
                    status="lost",
                    error="dispatch aborted before this job ran"))
        pending.clear()

    try:
        while pending:
            sweep()
            if not pending:
                break
            now = time.monotonic()
            expired = {m.key for m in pending
                       if m.deadline_mono is not None
                       and now >= m.deadline_mono}
            if expired:
                terminate_process(proc)
                fail_rest(expired)
                return
            if not proc.is_alive():
                proc.join()
                exitcode = proc.exitcode
                reap_process(proc)
                sweep()
                for m in pending:
                    on_outcome(m, MemberOutcome(
                        status="error",
                        error=f"worker exited with code {exitcode} "
                              "and no result"))
                pending.clear()
                return
            await asyncio.sleep(poll_s)
        # all members resolved; reap the worker (it exits right after
        # its last write, so the grace path in terminate is rarely hit)
        terminate_process(proc)
    except asyncio.CancelledError:
        terminate_process(proc)
        fail_rest(set())
        raise
    except BaseException:
        terminate_process(proc)
        raise
