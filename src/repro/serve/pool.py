"""Micro-batched process dispatch for the serving layer.

One dispatch = one worker process running a *batch* of jobs
sequentially (earliest deadline first) and writing one result file per
job, atomically, straight into the content-addressed cache — the same
filesystem worker protocol as :mod:`repro.lab.executor`, whose
``mp_context`` / ``terminate_process`` / ``atomic_write_json``
primitives this module reuses.  The consequences are load-bearing:

* **amortised overhead** — process start + poll rounding costs are paid
  once per batch, not once per job, which is where the batched
  throughput win on small jobs comes from;
* **streaming results** — the parent resolves each member as its file
  appears, so a small job coalesced with slower siblings does not wait
  for the whole batch;
* **crash recovery for free** — results written before a server kill
  are ordinary cache entries; an identical resubmission after restart
  is a cache hit, not a recompute;
* **deadline enforcement by kill** — a member past its deadline gets
  the whole worker killed (cooperative cancellation has no place to
  hook into a busy solver loop); already-written siblings are
  harvested, unexpired unfinished siblings are reported ``lost`` so the
  manager can requeue them.
"""

from __future__ import annotations

import asyncio
import os
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

from .. import instrument
from ..errors import ReproError, SharedMemoryError
from ..lab.cache import atomic_write_json
from ..lab.executor import (mp_context, reap_process,
                            reset_inherited_signals, terminate_process)

__all__ = ["BatchMember", "MemberOutcome", "run_batch"]

_POLL_S = 0.004

# Inline graph specs at or above this size are hoisted into shared
# memory before dispatch (see _hoist_graphs); below it the pickle is
# cheaper than a segment round-trip.
_SHM_SPEC_MIN_BYTES = 1 << 16


@dataclass
class BatchMember:
    """One job inside a dispatch."""

    key: str
    seed: int
    params: Mapping
    outfile: Path
    errfile: Path
    deadline_mono: float | None     # time.monotonic() deadline, None = no cap
    #: Pre-resident shared segment (streamed graph): the manager pins it
    #: in the registry for the job's lifetime, so dispatch just rewrites
    #: the shipped graph spec to this descriptor — no hoisting needed.
    shm_desc: dict | None = None


@dataclass
class MemberOutcome:
    """What happened to one member, as seen by the parent."""

    status: str                     # "ok" | "error" | "timeout" | "lost"
    payload: dict | None = None     # worker-written result file content
    error: str | None = None


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _batch_main(payload: dict) -> None:
    """Run every job in the batch; one atomic result file per job.

    A job that raises writes its traceback to the job's error file and
    the loop continues — per-job failure containment *inside* a batch.
    The solver import happens here (worker side) so a fork-started
    child reuses the parent's warm modules.
    """
    from .runner import solve

    reset_inherited_signals()

    debug_slow_s = float(payload.get("debug_slow_s", 0.0))
    for job in payload["jobs"]:
        out = Path(job["outfile"])
        err = Path(job["errfile"])
        try:
            if debug_slow_s > 0:
                # mesh chaos harness only: manufactures a slow shard so
                # hedging has something to beat; plumbed through config,
                # never read from the environment (determinism pass)
                time.sleep(debug_slow_s)
            instrument.reset()
            t0 = time.perf_counter()
            result = solve(seed=job["seed"], **job["params"])
            duration = time.perf_counter() - t0
            try:
                import resource
                rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            except Exception:  # analyze: allow(silent-except) — best-effort metric: resource is POSIX-only and a metrics failure must never fail a finished job
                rss_kb = 0
            atomic_write_json(out, {
                "values": result,
                "duration_s": round(duration, 6),
                "peak_rss_kb": int(rss_kb),
                "counters": instrument.snapshot(),
            })
        except BaseException:
            try:
                atomic_write_json(err, {"error": traceback.format_exc()})
            except BaseException:  # analyze: allow(silent-except) — the error channel itself failed (disk full / kill); exiting nonzero is the only signal left
                os._exit(1)
    os._exit(0)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

def _spec_payload_bytes(spec: Mapping) -> int:
    """Rough transport size of an inline graph spec (0 = not inline)."""
    if "hgr" in spec:
        return len(spec["hgr"])
    if "csr" in spec:
        return 8 * len(spec["csr"]["pins"])
    if "edges" in spec:
        return 8 * sum(len(e) for e in spec["edges"])
    return 0                            # generator / shm: already tiny


async def _hoist_graphs(ordered: Sequence[BatchMember],
                        registry=None) -> tuple[list, list, list]:
    """Move large inline graph specs into shared memory, once per graph.

    Returns ``(params_per_member, owned_handles, registry_refs)``.
    Every member whose spec was hoisted gets its ``graph`` rewritten to
    ``{"shm": descriptor}`` — ~100 bytes across the pipe instead of a
    pickled megabyte-scale spec, and members sharing a graph (the
    common case in a micro-batch) share one segment and one parse.  Job
    cache keys are computed from the *original* params at admission, so
    the rewrite is transport-only.  A spec that fails to build here is
    left inline so the worker raises the proper per-job error; a full
    ``/dev/shm`` also falls back to inline.

    With a :class:`~repro.serve.stream.SegmentRegistry` the segment is
    adopted there under its content address (``"spec:<sha256>"``) and
    pinned for this dispatch — back-to-back batches over the same graph
    then reuse one segment and one parse, and the registry's idle LRU
    (not this dispatch) decides when it dies.  Without a registry the
    caller owns the returned handles and must close+unlink them once
    the worker is done.  Members with a pre-resident ``shm_desc``
    (streamed graphs, pinned by the manager) are rewritten directly and
    never hoisted here.
    """
    import hashlib
    import json

    from ..core.shm import SharedCSR
    from .protocol import build_graph

    handles: list = []
    refs: list = []
    by_spec: dict[str, dict | None] = {}
    params_out: list[Mapping] = []
    for m in ordered:
        params = m.params
        if m.shm_desc is not None:
            params = dict(params)
            params["graph"] = {"shm": m.shm_desc}
            params_out.append(params)
            continue
        spec = params.get("graph")
        if (isinstance(spec, Mapping)
                and _spec_payload_bytes(spec) >= _SHM_SPEC_MIN_BYTES):
            key = json.dumps(spec, sort_keys=True)
            if key not in by_spec:
                ref = ("spec:" + hashlib.sha256(key.encode()).hexdigest()
                       if registry is not None else None)
                if ref is not None and registry.acquire(ref):
                    refs.append(ref)
                    by_spec[key] = registry.descriptor(ref)
                else:
                    try:
                        # analyze: allow(serve-timeout) — bounded
                        # transitively: run_batch (the only caller) is
                        # itself awaited under with_deadline(batch
                        # budget) by the job manager, and build_graph is
                        # CPU-bound parsing, not unbounded I/O.
                        graph = await asyncio.to_thread(build_graph,
                                                        params)
                        shared = SharedCSR.from_hypergraph(graph)
                    except (ReproError, SharedMemoryError, MemoryError):
                        by_spec[key] = None  # worker handles it inline
                    else:
                        # ownership first (registry or handles list owns
                        # the segment from here), descriptor after — no
                        # statement sits between acquire and hand-off
                        if ref is not None:
                            registry.adopt(ref, shared)
                            registry.acquire(ref)
                            refs.append(ref)
                        else:
                            handles.append(shared)
                        by_spec[key] = shared.descriptor()
            desc = by_spec[key]
            if desc is not None:
                params = dict(params)
                params["graph"] = {"shm": desc}
        params_out.append(params)
    return params_out, handles, refs


def _harvest(member: BatchMember) -> MemberOutcome | None:
    """Turn a member's on-disk files into an outcome (None = not done)."""
    import json

    if member.outfile.exists():
        try:
            payload = json.loads(member.outfile.read_text())
        except ValueError:
            payload = None              # torn read: worker mid-replace
        if payload is not None and "values" in payload:
            return MemberOutcome(status="ok", payload=payload)
    if member.errfile.exists():
        try:
            error = json.loads(member.errfile.read_text()).get("error")
        except ValueError:
            error = None
        if error is not None:
            try:
                member.errfile.unlink()
            except OSError:
                pass
            return MemberOutcome(status="error", error=error)
    return None


async def run_batch(
    members: Sequence[BatchMember],
    *,
    on_outcome: Callable[[BatchMember, MemberOutcome], None],
    poll_s: float = _POLL_S,
    registry=None,
    debug_slow_s: float = 0.0,
) -> None:
    """Dispatch ``members`` to one worker process and stream outcomes.

    ``on_outcome`` fires exactly once per member, in completion order.
    Cancellation (server shutdown) kills the worker and reports every
    unresolved member as ``lost``.  ``registry`` (a
    :class:`~repro.serve.stream.SegmentRegistry`) makes hoisted graph
    segments outlive this dispatch for reuse by the next one.
    """
    if not members:
        return
    ordered = sorted(
        members,
        key=lambda m: (m.deadline_mono is None,
                       m.deadline_mono if m.deadline_mono is not None
                       else 0.0))
    shipped_params, shm_handles, shm_refs = await _hoist_graphs(
        ordered, registry)
    payload = {"jobs": [{"seed": m.seed, "params": dict(p),
                         "outfile": str(m.outfile),
                         "errfile": str(m.errfile)}
                        for m, p in zip(ordered, shipped_params)],
               "debug_slow_s": float(debug_slow_s)}
    for m in ordered:
        m.outfile.parent.mkdir(parents=True, exist_ok=True)
        m.errfile.parent.mkdir(parents=True, exist_ok=True)
    ctx = mp_context()
    proc = ctx.Process(target=_batch_main, args=(payload,), daemon=True)
    proc.start()
    pending = list(ordered)

    def sweep() -> None:
        nonlocal pending
        still: list[BatchMember] = []
        for m in pending:
            outcome = _harvest(m)
            if outcome is not None:
                on_outcome(m, outcome)
            else:
                still.append(m)
        pending = still

    def fail_rest(expired: set[str]) -> None:
        sweep()                      # last chance: files written pre-kill
        for m in pending:
            if m.key in expired:
                on_outcome(m, MemberOutcome(
                    status="timeout", error="deadline exceeded in worker"))
            else:
                on_outcome(m, MemberOutcome(
                    status="lost",
                    error="dispatch aborted before this job ran"))
        pending.clear()

    try:
        while pending:
            sweep()
            if not pending:
                break
            now = time.monotonic()
            expired = {m.key for m in pending
                       if m.deadline_mono is not None
                       and now >= m.deadline_mono}
            if expired:
                terminate_process(proc)
                fail_rest(expired)
                return
            if not proc.is_alive():
                proc.join()
                exitcode = proc.exitcode
                reap_process(proc)
                sweep()
                for m in pending:
                    on_outcome(m, MemberOutcome(
                        status="error",
                        error=f"worker exited with code {exitcode} "
                              "and no result"))
                pending.clear()
                return
            await asyncio.sleep(poll_s)
        # all members resolved; reap the worker (it exits right after
        # its last write, so the grace path in terminate is rarely hit)
        terminate_process(proc)
    except asyncio.CancelledError:
        terminate_process(proc)
        fail_rest(set())
        raise
    except BaseException:
        terminate_process(proc)
        raise
    finally:
        # parent owns the hoisted segments: drop registry pins (the
        # idle LRU decides when the segment actually dies) and unlink
        # registry-less handles outright, now that the worker is gone
        # (every exit path above kills or joins it first)
        for ref in shm_refs:
            registry.release(ref)
        for shared in shm_handles:
            shared.close()
            shared.unlink()
