"""Shared HTTP/1.1 framing for the serving and mesh layers.

One implementation of the wire subset this project speaks —
``Content-Length``-framed requests and responses, keep-alive
connections, no chunked encoding — used by both the single-shard
server (:mod:`repro.serve.server`) and the mesh router
(:mod:`repro.mesh.router`), which additionally acts as an HTTP
*client* towards its shards and therefore needs the response-side
reader too.

Head and body reads are split so a handler can consume a large binary
body incrementally (the ``/v1/stream`` ingest path) instead of
materialising it; :func:`read_body` is the buffering default for JSON
routes.
"""

from __future__ import annotations

import asyncio
import json

from ..errors import ReproError
from .jobs import with_deadline

__all__ = [
    "HttpError",
    "REASONS",
    "read_body",
    "read_head",
    "read_response",
    "write_response",
]

#: Per-read deadline while parsing a request head or framed body.
HEADER_DEADLINE_S = 30.0

REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
           404: "Not Found", 405: "Method Not Allowed",
           408: "Request Timeout", 411: "Length Required",
           413: "Payload Too Large", 429: "Too Many Requests",
           500: "Internal Server Error", 502: "Bad Gateway",
           503: "Service Unavailable", 504: "Gateway Timeout"}


class HttpError(ReproError):
    """Carries an HTTP status (and optional headers) through handlers.

    ``close=True`` marks errors after which the connection framing is
    unrecoverable (e.g. an abandoned half-read binary body): the
    response is sent and the connection closed.
    """

    def __init__(self, status: int, message: str,
                 headers: dict | None = None, *,
                 close: bool = False) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}
        self.close = close


async def read_head(reader: asyncio.StreamReader,
                    deadline_s: float = HEADER_DEADLINE_S,
                    ) -> tuple[str, str, dict[str, str]] | None:
    """Parse one request line + headers; None on EOF; HttpError on garbage."""
    line = await with_deadline(reader.readline(), deadline_s)
    if not line:
        return None
    try:
        method, target, _version = line.decode("ascii").split()
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    headers = await _read_headers(reader, deadline_s)
    return method.upper(), target, headers


async def _read_headers(reader: asyncio.StreamReader,
                        deadline_s: float) -> dict[str, str]:
    headers: dict[str, str] = {}
    while True:
        raw = await with_deadline(reader.readline(), deadline_s)
        if raw in (b"\r\n", b"\n", b""):
            return headers
        try:
            name, _, value = raw.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise HttpError(400, "undecodable header") from None
        key = name.strip().lower()
        headers[key] = (value.strip().lower() if key == "connection"
                        else value.strip())


def content_length(headers: dict[str, str], *,
                   max_body: int) -> int | None:
    """Validated Content-Length (None when absent)."""
    length = headers.get("content-length")
    if length is None:
        return None
    try:
        n = int(length)
    except ValueError:
        raise HttpError(400, "bad Content-Length") from None
    if n < 0:
        raise HttpError(400, "negative Content-Length")
    if n > max_body:
        raise HttpError(413, f"body of {n} bytes exceeds the "
                             f"{max_body} byte limit")
    return n


async def read_body(reader: asyncio.StreamReader, headers: dict[str, str],
                    *, max_body: int,
                    deadline_s: float = HEADER_DEADLINE_S) -> bytes:
    """Read a whole Content-Length-framed body into memory."""
    n = content_length(headers, max_body=max_body)
    if not n:
        return b""
    return await with_deadline(reader.readexactly(n), deadline_s)


async def read_response(reader: asyncio.StreamReader,
                        deadline_s: float = HEADER_DEADLINE_S,
                        ) -> tuple[int, dict[str, str], bytes]:
    """Parse one HTTP response (status, headers, body) from a peer.

    Used by the mesh router when relaying a streamed upload to a shard
    over a raw asyncio connection.  Responses without a Content-Length
    are treated as framing errors — this project's servers always send
    one.
    """
    line = await with_deadline(reader.readline(), deadline_s)
    if not line:
        raise HttpError(502, "peer closed the connection mid-response")
    try:
        _version, status_text = line.decode("ascii").split(None, 2)[:2]
        status = int(status_text)
    except (ValueError, IndexError):
        raise HttpError(502, "malformed response status line") from None
    headers = await _read_headers(reader, deadline_s)
    n = content_length(headers, max_body=64 * 1024 * 1024)
    if n is None:
        raise HttpError(502, "peer response lacks Content-Length")
    body = (await with_deadline(reader.readexactly(n), deadline_s)
            if n else b"")
    return status, headers, body


async def write_response(writer: asyncio.StreamWriter, status: int,
                         payload: dict, extra: dict | None = None,
                         keep_alive: bool = True) -> None:
    """Serialise and send one response (``_raw`` = preformatted text)."""
    if "_raw" in payload:           # /metrics: Prometheus text format
        body = payload["_raw"].encode()
        ctype = "text/plain; version=0.0.4"
    else:
        body = json.dumps(payload).encode()
        ctype = "application/json"
    reason = REASONS.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    head.extend(f"{k}: {v}" for k, v in (extra or {}).items())
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
    await writer.drain()
