"""Blocking Python client for the serving API.

Built on :mod:`http.client` (stdlib; one persistent keep-alive
connection per :class:`ServeClient`).  Error mapping mirrors the
server's: 429 raises :class:`~repro.errors.QueueFullError` carrying the
``Retry-After`` hint, 400/404 and transport failures raise
:class:`~repro.errors.ServeClientError` — callers catch
:class:`~repro.errors.ReproError` and are done.

The client is what the CLI verbs (``repro submit`` / ``repro jobs``),
the load harness, and the tests all use — there is exactly one encoder
for the wire format.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Mapping

from ..errors import (JobNotFoundError, QueueFullError, ServeClientError,
                      ServeProtocolError)

__all__ = ["ServeClient", "graph_payload"]

# repro: allow[seed-discipline] — transport jitter, not an experiment
# input: desynchronises concurrent pollers so they don't hammer the
# server in lockstep; job results are unaffected by the draw.
_POLL_JITTER = random.Random()


def graph_payload(graph) -> dict:
    """Serialise a :class:`~repro.core.hypergraph.Hypergraph` for the wire.

    Uses the CSR form — it round-trips exactly and is the cheapest to
    validate server-side.
    """
    ptr, pins = graph.csr()
    return {"csr": {"n": int(graph.n),
                    "ptr": [int(v) for v in ptr],
                    "pins": [int(v) for v in pins]}}


class ServeClient:
    """Thin blocking wrapper over the HTTP API."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout_s: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 body: Mapping | None = None) -> tuple[int, Any, dict]:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (1, 2):      # one retry on a stale keep-alive
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
                resp_headers = {k.lower(): v for k, v in
                                resp.getheaders()}
                break
            except (http.client.HTTPException, OSError) as exc:
                self.close()
                if attempt == 2:
                    raise ServeClientError(
                        f"cannot reach server at {self.host}:{self.port}"
                        f": {exc}") from exc
        ctype = resp_headers.get("content-type", "")
        if ctype.startswith("application/json"):
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError as exc:
                raise ServeClientError(
                    f"undecodable response body: {raw[:200]!r}") from exc
        else:
            decoded = raw.decode(errors="replace")
        return resp.status, decoded, resp_headers

    def _checked(self, method: str, path: str,
                 body: Mapping | None = None) -> Any:
        status, decoded, headers = self._request(method, path, body)
        return self._raise_for_status(status, decoded, headers, method,
                                      path)

    def _raise_for_status(self, status: int, decoded: Any, headers: dict,
                          method: str, path: str) -> Any:
        if status in (200, 202):
            return decoded
        error = (decoded.get("error", "") if isinstance(decoded, dict)
                 else str(decoded))
        if status == 429:
            retry_after = float(headers.get("retry-after", 1))
            exc = QueueFullError(error or "server shedding load")
            exc.retry_after_s = retry_after
            raise exc
        if status == 404:
            raise JobNotFoundError(error or f"not found: {path}")
        if status == 400:
            raise ServeProtocolError(error or "bad request")
        raise ServeClientError(f"HTTP {status} on {method} {path}: "
                               f"{error or decoded}")

    # ------------------------------------------------------------------
    # API verbs
    # ------------------------------------------------------------------
    def partition(self, request: Mapping) -> dict:
        """Synchronous solve (server still enforces the deadline)."""
        return self._checked("POST", "/v1/partition", request)

    def submit(self, request: Mapping) -> dict:
        """Asynchronous submit; returns the job handle immediately."""
        return self._checked("POST", "/v1/jobs", request)

    def stream(self, request: Mapping, graph=None, *, n: int | None = None,
               ptr=None, pins=None, chunk_bytes: int = 1 << 20) -> dict:
        """Upload a CSR graph via the binary ``POST /v1/stream`` path.

        ``request`` carries every job field *except* the graph; pass
        either a :class:`~repro.core.hypergraph.Hypergraph` or the raw
        ``(n, ptr, pins)`` arrays.  The body streams over the same
        keep-alive connection as everything else (chunked client-side;
        the server writes it straight into shared memory), and the
        usual stale-socket retry applies — the encoder is re-run per
        attempt, so a reconnect resends a complete frame.
        """
        from .stream import STREAM_CONTENT_TYPE, encode_stream
        if graph is not None:
            ptr, pins = graph.csr()
            n = graph.n
        if n is None or ptr is None or pins is None:
            raise ServeClientError(
                "stream() needs a graph or explicit n/ptr/pins")
        for attempt in (1, 2):      # one retry on a stale keep-alive
            chunks, total, _digest = encode_stream(
                request, n=n, ptr=ptr, pins=pins, chunk_bytes=chunk_bytes)
            conn = self._connection()
            try:
                conn.putrequest("POST", "/v1/stream")
                conn.putheader("Content-Type", STREAM_CONTENT_TYPE)
                conn.putheader("Content-Length", str(total))
                conn.endheaders()
                for chunk in chunks:
                    conn.send(chunk)
                resp = conn.getresponse()
                raw = resp.read()
                headers = {k.lower(): v for k, v in resp.getheaders()}
                break
            except (http.client.HTTPException, OSError) as exc:
                self.close()
                if attempt == 2:
                    raise ServeClientError(
                        f"cannot stream to {self.host}:{self.port}: "
                        f"{exc}") from exc
        try:
            decoded = json.loads(raw) if raw else {}
        except ValueError as exc:
            raise ServeClientError(
                f"undecodable response body: {raw[:200]!r}") from exc
        return self._raise_for_status(resp.status, decoded, headers,
                                      "POST", "/v1/stream")

    def job(self, job_id: str) -> dict:
        return self._checked("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._checked("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._checked("DELETE", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, timeout_s: float = 60.0,
             poll_s: float = 0.05, max_poll_s: float = 1.0) -> dict:
        """Poll until the job reaches a final status.

        The poll interval starts at ``poll_s`` and backs off
        exponentially (jittered, capped at ``max_poll_s``) so long jobs
        aren't hammered at the short-job cadence; the final sleep is
        clipped to the remaining deadline budget.
        """
        end = time.monotonic() + timeout_s
        delay = poll_s
        while True:
            state = self.job(job_id)
            if state["status"] in ("done", "error", "timeout",
                                   "cancelled"):
                return state
            remaining = end - time.monotonic()
            if remaining <= 0:
                raise ServeClientError(
                    f"job {job_id} still {state['status']!r} after "
                    f"{timeout_s:g}s")
            jitter = 0.75 + 0.5 * _POLL_JITTER.random()
            # This client is the *synchronous* transport — blocking here
            # is its contract; the serving layer's coroutines never call
            # into it.
            time.sleep(min(delay * jitter, remaining))  # repro: allow[async-blocking] — sync client, not event-loop code
            delay = min(delay * 2.0, max_poll_s)

    def health(self) -> dict:
        return self._checked("GET", "/healthz")

    def metrics_text(self) -> str:
        """Raw Prometheus exposition from ``/metrics``."""
        return self._checked("GET", "/metrics")
