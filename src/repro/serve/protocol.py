"""Job request schema, validation, and content addressing.

A job request is a JSON object::

    {
      "op":        "partition" | "schedule" | "recognize" | "simulate",
      "graph":     {"hgr": "<hMETIS text>"}
                 | {"n": 4, "edges": [[0,1],[1,2,3]],
                    "node_weights": [...]?, "edge_weights": [...]?}
                 | {"csr": {"n": 4, "ptr": [0,2,5], "pins": [0,1,1,2,3]}}
                 | {"generator": {"kind": "random", "n": 100, "k": 4,
                                  "density": 0.05, "seed": 0}},
      "k":         2,            # parts / processors
      "eps":       0.03,         # balance slack (partition only)
      "metric":    "connectivity" | "cut-net",
      "algorithm": "multilevel" | "recursive" | "greedy" | "spectral"
                 | "random" | "exact",
      "seed":      0,
      # simulate-op extras (what-if planning; see repro.sim):
      "scheduler": "heft" | "cp-list" | "work-steal" | "locked" | "random",
      "imode":     "exact" | "mean" | "blind",
      "dist":      "fixed" | "uniform" | "lognormal",
      "topology":  {"b": [2, 4], "g": [4.0, 1.0]},   # Definition 7.1
      "latency":   0.0,
      # serving controls — NOT part of the cache identity:
      "deadline_s": 10.0,        # per-request budget (queue + compute)
      "mode":      "auto" | "sync" | "async",
      "use_cache": true
    }

Validation failures raise :class:`~repro.errors.ServeProtocolError`
(mapped to HTTP 400); they never surface as bare tracebacks because the
server accepts payloads from untrusted clients.

The *solve parameters* (everything except the serving controls) plus the
seed are content-addressed through :func:`repro.lab.cache.task_key`
with the serve runner's spec, so results land in the same
``.lab-cache/`` store the lab executor uses and survive server
restarts: an identical resubmission is a cache hit, not a recompute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import ServeProtocolError
from ..generators.factory import WORKLOAD_KINDS

__all__ = [
    "ALGORITHMS",
    "JobRequest",
    "OPS",
    "build_graph",
    "estimate_pins",
    "parse_job_request",
]

OPS = ("partition", "schedule", "recognize", "simulate")
ALGORITHMS = ("multilevel", "recursive", "greedy", "spectral", "random",
              "exact")
METRICS = ("connectivity", "cut-net")
MODES = ("auto", "sync", "async")

#: Hard ceiling on instance size accepted by the service (pins).  Keeps a
#: single hostile request from exhausting worker memory.
MAX_PINS = 5_000_000


@dataclass(frozen=True)
class JobRequest:
    """A validated job: solve parameters plus serving controls."""

    params: Mapping[str, Any]       # canonical, cache-keyed solve params
    seed: int
    deadline_s: float | None = None
    mode: str = "auto"
    use_cache: bool = True
    est_pins: int = 0               # admission-time size estimate
    #: Segment-registry reference for a streamed graph (transport
    #: state, never part of the cache key; see repro.serve.stream).
    shm_ref: str | None = None

    @property
    def op(self) -> str:
        return self.params["op"]


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ServeProtocolError(msg)


def _as_int(obj: Any, what: str) -> int:
    _require(isinstance(obj, int) and not isinstance(obj, bool),
             f"{what} must be an integer, got {obj!r}")
    return obj


def _as_num(obj: Any, what: str) -> float:
    _require(isinstance(obj, (int, float)) and not isinstance(obj, bool),
             f"{what} must be a number, got {obj!r}")
    return float(obj)


def _int_list(obj: Any, what: str) -> list[int]:
    _require(isinstance(obj, list), f"{what} must be a list")
    return [_as_int(v, f"{what} entry") for v in obj]


def _num_list(obj: Any, what: str) -> list[float]:
    _require(isinstance(obj, list), f"{what} must be a list")
    return [_as_num(v, f"{what} entry") for v in obj]


def _parse_graph(graph: Any) -> tuple[dict, int]:
    """Validate the graph spec; return (canonical spec, estimated pins)."""
    _require(isinstance(graph, dict), "'graph' must be an object")
    kinds = [k for k in ("hgr", "edges", "csr", "generator", "stream")
             if k in graph]
    _require(len(kinds) == 1,
             "'graph' must contain exactly one of 'hgr', 'edges', 'csr', "
             f"'generator', 'stream'; got {sorted(graph)}")
    kind = kinds[0]
    if kind == "stream":
        return _parse_stream_ref(graph["stream"])
    if kind == "hgr":
        text = graph["hgr"]
        _require(isinstance(text, str) and text.strip() != "",
                 "'graph.hgr' must be non-empty hMETIS text")
        # token count upper-bounds pins; full validation happens in the
        # worker via parse_hgr so a parse error is contained there too
        est = len(text.split())
        return {"hgr": text}, est
    if kind == "edges":
        n = _as_int(graph.get("n"), "'graph.n'")
        _require(n >= 0, "'graph.n' must be >= 0")
        edges = graph["edges"]
        _require(isinstance(edges, list), "'graph.edges' must be a list")
        out = []
        est = 0
        for e in edges:
            pins = _int_list(e, "'graph.edges' hyperedge")
            _require(all(0 <= v < n for v in pins),
                     f"hyperedge pin out of range 0..{n - 1}")
            est += len(pins)
            out.append(pins)
        spec: dict[str, Any] = {"n": n, "edges": out}
        if graph.get("node_weights") is not None:
            w = _num_list(graph["node_weights"], "'graph.node_weights'")
            _require(len(w) == n, "'graph.node_weights' has wrong length")
            spec["node_weights"] = w
        if graph.get("edge_weights") is not None:
            w = _num_list(graph["edge_weights"], "'graph.edge_weights'")
            _require(len(w) == len(out),
                     "'graph.edge_weights' has wrong length")
            spec["edge_weights"] = w
        return spec, est
    if kind == "csr":
        csr = graph["csr"]
        _require(isinstance(csr, dict), "'graph.csr' must be an object")
        n = _as_int(csr.get("n"), "'graph.csr.n'")
        ptr = _int_list(csr.get("ptr"), "'graph.csr.ptr'")
        pins = _int_list(csr.get("pins"), "'graph.csr.pins'")
        _require(n >= 0, "'graph.csr.n' must be >= 0")
        _require(len(ptr) >= 1 and ptr[0] == 0 and ptr[-1] == len(pins),
                 "'graph.csr.ptr' must start at 0 and end at len(pins)")
        _require(all(a <= b for a, b in zip(ptr, ptr[1:])),
                 "'graph.csr.ptr' must be nondecreasing")
        _require(all(0 <= v < n for v in pins),
                 f"'graph.csr.pins' entry out of range 0..{n - 1}")
        return {"csr": {"n": n, "ptr": ptr, "pins": pins}}, len(pins)
    gen = graph["generator"]
    _require(isinstance(gen, dict), "'graph.generator' must be an object")
    g_kind = gen.get("kind")
    _require(g_kind in WORKLOAD_KINDS,
             f"unknown generator kind {g_kind!r}; "
             f"known: {', '.join(WORKLOAD_KINDS)}")
    spec = {"kind": g_kind}
    for key, default in (("n", 100), ("k", 4), ("seed", 0)):
        val = gen.get(key, default)
        spec[key] = _as_int(val, f"'graph.generator.{key}'")
    spec["density"] = _as_num(gen.get("density", 0.05),
                              "'graph.generator.density'")
    _require(spec["n"] > 0, "'graph.generator.n' must be positive")
    _require(spec["n"] <= 500_000, "'graph.generator.n' too large")
    # generators emit O(n)–O(n log n) pins; coarse admission estimate
    est = int(spec["n"]) * 4
    return {"generator": spec}, est


def _parse_stream_ref(ref: Any) -> tuple[dict, int]:
    """Validate a streamed-graph content address (see repro.serve.stream).

    This spec is what a ``/v1/stream`` upload is cache-keyed under; a
    later JSON submit may carry it too (resubmission of a completed
    key), but can only be *answered* from the cache — the binary
    payload itself never travels through this parser.
    """
    _require(isinstance(ref, dict), "'graph.stream' must be an object")
    digest = ref.get("digest")
    _require(isinstance(digest, str) and len(digest) == 64
             and all(c in "0123456789abcdef" for c in digest),
             "'graph.stream.digest' must be 64 lowercase hex chars")
    dims = {}
    for key in ("n", "m", "pins"):
        dims[key] = _as_int(ref.get(key), f"'graph.stream.{key}'")
        _require(dims[key] >= 0, f"'graph.stream.{key}' must be >= 0")
    spec = {"digest": digest, "n": dims["n"], "m": dims["m"],
            "pins": dims["pins"]}
    return {"stream": spec}, dims["pins"]


#: Scheduler / imode / distribution vocabularies for the simulate op.
#: Kept as literals (not imports from repro.sim) so request validation
#: stays import-light in the asyncio server process.
SIM_SCHEDULERS = ("heft", "cp-list", "work-steal", "locked", "random")
SIM_IMODES = ("exact", "mean", "blind")
SIM_DISTS = ("fixed", "uniform", "lognormal")


def _parse_simulate(obj: Any, params: dict[str, Any]) -> None:
    """Validate simulate-op extras into canonical solve params.

    ``k`` (already parsed) is the flat machine size; a ``topology``
    object ``{"b": [...], "g": [...]}`` overrides it with a Definition
    7.1 hierarchy (``k`` then must equal the leaf count, or be
    omitted).
    """
    scheduler = obj.get("scheduler", "heft")
    _require(scheduler in SIM_SCHEDULERS,
             f"unknown scheduler {scheduler!r}; "
             f"known: {', '.join(SIM_SCHEDULERS)}")
    params["scheduler"] = scheduler
    imode = obj.get("imode", "exact")
    _require(imode in SIM_IMODES,
             f"unknown imode {imode!r}; known: {', '.join(SIM_IMODES)}")
    params["imode"] = imode
    dist = obj.get("dist", "lognormal")
    _require(dist in SIM_DISTS,
             f"unknown dist {dist!r}; known: {', '.join(SIM_DISTS)}")
    params["dist"] = dist
    topo = obj.get("topology")
    if topo is not None:
        _require(isinstance(topo, dict), "'topology' must be an object")
        b = _int_list(topo.get("b"), "'topology.b'")
        g = _num_list(topo.get("g"), "'topology.g'")
        _require(1 <= len(b) <= 8 and len(b) == len(g),
                 "'topology' needs 1..8 levels with matching b/g")
        _require(all(x >= 1 for x in b), "'topology.b' entries must be >= 1")
        _require(all(x > 0 for x in g), "'topology.g' entries must be > 0")
        _require(all(g[i] >= g[i + 1] for i in range(len(g) - 1)),
                 "'topology.g' must be monotonically decreasing")
        leaves = 1
        for x in b:
            leaves *= x
        _require(leaves <= 4096, "'topology' has too many leaves (> 4096)")
        _require("k" not in obj or obj["k"] == leaves,
                 f"'k' ({obj.get('k')}) must equal the topology leaf "
                 f"count ({leaves}) when both are given")
        params["k"] = leaves
        params["topology"] = {"b": b, "g": g}
    latency = _as_num(obj.get("latency", 0.0), "'latency'")
    _require(latency >= 0, "'latency' must be >= 0")
    params["latency"] = latency
    algorithm = obj.get("algorithm", "multilevel")
    _require(algorithm in ALGORITHMS,
             f"unknown algorithm {algorithm!r}; "
             f"known: {', '.join(ALGORITHMS)}")
    params["algorithm"] = algorithm


def parse_job_request(obj: Any) -> JobRequest:
    """Validate a decoded JSON payload into a :class:`JobRequest`."""
    _require(isinstance(obj, dict), "request body must be a JSON object")
    op = obj.get("op", "partition")
    _require(op in OPS, f"unknown op {op!r}; known: {', '.join(OPS)}")
    graph_spec, est = _parse_graph(obj.get("graph"))
    _require(est <= MAX_PINS,
             f"instance too large: ~{est} pins exceeds the server "
             f"limit of {MAX_PINS}")
    params: dict[str, Any] = {"op": op, "graph": graph_spec}
    if op in ("partition", "schedule", "simulate"):
        k = _as_int(obj.get("k", 2), "'k'")
        _require(1 <= k <= 4096, "'k' must be in 1..4096")
        params["k"] = k
    if op == "simulate":
        _parse_simulate(obj, params)
    if op == "partition":
        eps = _as_num(obj.get("eps", 0.03), "'eps'")
        _require(0 <= eps <= 1, "'eps' must be in [0, 1]")
        params["eps"] = eps
        metric = obj.get("metric", "connectivity")
        _require(metric in METRICS,
                 f"unknown metric {metric!r}; known: {', '.join(METRICS)}")
        params["metric"] = metric
        algorithm = obj.get("algorithm", "multilevel")
        _require(algorithm in ALGORITHMS,
                 f"unknown algorithm {algorithm!r}; "
                 f"known: {', '.join(ALGORITHMS)}")
        params["algorithm"] = algorithm
    seed = _as_int(obj.get("seed", 0), "'seed'")
    deadline = obj.get("deadline_s")
    if deadline is not None:
        deadline = _as_num(deadline, "'deadline_s'")
        _require(deadline > 0, "'deadline_s' must be positive")
    mode = obj.get("mode", "auto")
    _require(mode in MODES, f"unknown mode {mode!r}; known: "
             f"{', '.join(MODES)}")
    use_cache = obj.get("use_cache", True)
    _require(isinstance(use_cache, bool), "'use_cache' must be a boolean")
    return JobRequest(params=params, seed=seed, deadline_s=deadline,
                      mode=mode, use_cache=use_cache, est_pins=est)


def build_graph(params: Mapping[str, Any]):
    """Materialise the hypergraph named by canonical solve params.

    Runs inside worker processes; raises :class:`ReproError` subclasses
    on anything malformed (an hgr upload is fully validated here).
    """
    from ..core.hypergraph import Hypergraph

    spec = params["graph"]
    if "shm" in spec:
        # parent hoisted the graph into shared memory (pool._hoist_graphs):
        # attach by descriptor for a zero-copy view.  No close here — the
        # returned graph's arrays alias the mapping, which lives until the
        # batch worker exits; the parent owns (and unlinks) the segment.
        from ..core.shm import SharedCSR
        return SharedCSR.attach(spec["shm"]).hypergraph()
    if "stream" in spec:
        # a streamed graph reaches workers only as a rewritten {"shm"}
        # spec (the segment registry holds it while the job is in
        # flight); seeing the bare content address here means the
        # payload is gone — e.g. a cache-miss resubmission by digest
        from ..errors import ServeProtocolError
        raise ServeProtocolError(
            "streamed graph payload is not resident on this shard; "
            "re-upload it via POST /v1/stream")
    if "hgr" in spec:
        from ..io.hmetis import parse_hgr
        return parse_hgr(spec["hgr"], name="upload")
    if "edges" in spec:
        return Hypergraph(spec["n"], spec["edges"],
                          node_weights=spec.get("node_weights"),
                          edge_weights=spec.get("edge_weights"))
    if "csr" in spec:
        import numpy as np
        csr = spec["csr"]
        return Hypergraph.from_csr(
            csr["n"],
            np.asarray(csr["ptr"], dtype=np.int64),
            np.asarray(csr["pins"], dtype=np.int64))
    gen = spec["generator"]
    from ..generators.factory import make_workload
    return make_workload(gen["kind"], n=gen["n"], k=gen["k"],
                         density=gen["density"], seed=gen["seed"])


def estimate_pins(request: JobRequest) -> int:
    """Admission-time size estimate (pins) for batching decisions."""
    return request.est_pins
