"""repro.serve — online partitioning/scheduling service.

An asyncio HTTP service over the same solver and cache layers the lab
executor uses: micro-batched dispatch onto a bounded process-worker
pool, explicit backpressure (bounded admission queue → 429 +
Retry-After), per-request deadlines with worker-kill enforcement, and
content-addressed result caching shared with ``.lab-cache/`` (so a
server restart never recomputes finished work).

Layering (each importable on its own):

- :mod:`repro.serve.protocol` — request schema, validation, cache keys
- :mod:`repro.serve.runner`   — in-worker solve dispatch
- :mod:`repro.serve.pool`     — micro-batched process dispatch
- :mod:`repro.serve.jobs`     — admission queue, batching, deadlines
- :mod:`repro.serve.metrics`  — counters / gauges / latency quantiles
- :mod:`repro.serve.server`   — HTTP/1.1 front end
- :mod:`repro.serve.client`   — blocking Python client
- :mod:`repro.serve.cli`      — ``repro serve|submit|jobs``
"""

from .client import ServeClient, graph_payload
from .jobs import Job, JobManager, with_deadline
from .metrics import Metrics
from .protocol import JobRequest, parse_job_request
from .runner import job_key
from .server import ServeConfig, Server, run_server

__all__ = [
    "Job",
    "JobManager",
    "JobRequest",
    "Metrics",
    "ServeClient",
    "ServeConfig",
    "Server",
    "graph_payload",
    "job_key",
    "parse_job_request",
    "run_server",
    "with_deadline",
]
