"""Job lifecycle: admission, micro-batching, backpressure, deadlines.

The :class:`JobManager` owns the bounded admission queue and the
dispatch loop.  Design invariants:

* **bounded everything** — the queue rejects at ``queue_limit``
  (:class:`~repro.errors.QueueFullError` → HTTP 429), finished jobs are
  purged past a retention window, and latency windows are ring buffers;
  memory stays flat at any offered load.
* **micro-batching** — small jobs arriving within ``batch_window_s``
  coalesce into one worker dispatch (up to ``batch_max``), amortising
  process start and poll rounding; large jobs always dispatch solo so a
  big instance never delays a batch of small ones.
* **deadlines end-to-end** — a job's deadline covers queue wait plus
  compute.  Expired in queue → resolved ``timeout`` without dispatch;
  expired in a worker → the worker is killed and unexpired batch
  siblings are requeued (one retry) — see :mod:`repro.serve.pool`.
* **cache first** — a submit whose key is already in the shared
  ``.lab-cache/`` resolves synchronously without touching the queue.

:func:`with_deadline` is the *only* sanctioned way for serve code to
await work; the ``serve-timeout`` rule in ``repro analyze`` enforces
this (see :mod:`repro.analyze.rules`).
"""

from __future__ import annotations

import asyncio
import itertools
import shutil
import tempfile
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Awaitable, TypeVar

from ..errors import (DeadlineExceededError, JobNotFoundError,
                      QueueFullError, ServeProtocolError)
from ..lab.cache import ResultCache
from ..lab.journal import RunJournal
from .metrics import Metrics
from .pool import BatchMember, MemberOutcome, run_batch
from .protocol import JobRequest
from .runner import job_key

__all__ = ["Job", "JobManager", "with_deadline"]

T = TypeVar("T")

#: Job statuses.  ``queued`` and ``running`` are live; the rest final.
FINAL_STATUSES = ("done", "error", "timeout", "cancelled")

_MAX_ATTEMPTS = 2                  # initial dispatch + one requeue
_RETAIN_JOBS = 1024                # finished jobs kept for polling
_RETAIN_S = 600.0


async def with_deadline(awaitable: Awaitable[T],
                        seconds: float | None) -> T:
    """Await ``awaitable`` under a deadline (None = unbounded).

    The single sanctioned await-wrapper for serve code: raises
    :class:`DeadlineExceededError` instead of ``asyncio.TimeoutError``
    so callers catch one library-rooted type.
    """
    if seconds is None:
        return await awaitable  # analyze: allow(serve-timeout) — this IS the deadline wrapper; None is the explicit opt-out for lifecycle waits
    try:
        return await asyncio.wait_for(awaitable, seconds)  # analyze: allow(serve-timeout) — this IS the deadline wrapper; everything else must call it
    except asyncio.TimeoutError:
        raise DeadlineExceededError(
            f"deadline of {seconds:g}s exceeded") from None


@dataclass
class Job:
    """One submitted request and everything known about its progress."""

    id: str
    request: JobRequest
    key: str
    future: asyncio.Future
    submitted_ts: float             # wall clock, for reporting
    submitted_mono: float           # monotonic, for latency math
    deadline_mono: float | None
    status: str = "queued"
    cached: bool = False
    result: Any = None
    error: str | None = None
    counters: dict = field(default_factory=dict)
    duration_s: float = 0.0         # worker-side compute time
    latency_s: float = 0.0          # submit → resolve, queue included
    attempts: int = 0
    finished_ts: float | None = None

    @property
    def done(self) -> bool:
        return self.status in FINAL_STATUSES

    def describe(self, with_result: bool = True) -> dict:
        out = {
            "job_id": self.id,
            "op": self.request.op,
            "status": self.status,
            "cached": self.cached,
            "attempts": self.attempts,
            "submitted_ts": round(self.submitted_ts, 3),
            "duration_s": round(self.duration_s, 6),
            "latency_s": round(self.latency_s, 6),
        }
        if self.error is not None:
            out["error"] = self.error
        if self.finished_ts is not None:
            out["finished_ts"] = round(self.finished_ts, 3)
        if with_result and self.status == "done":
            out["result"] = self.result
            out["counters"] = self.counters
        return out


class JobManager:
    """Owns the queue, the jobs table, and the dispatch loop."""

    def __init__(
        self,
        *,
        workers: int = 2,
        batch_max: int = 8,
        batch_window_s: float = 0.01,
        queue_limit: int = 128,
        default_deadline_s: float = 60.0,
        small_pins: int = 20_000,
        cache: ResultCache | None = None,
        journal: RunJournal | None = None,
        metrics: Metrics | None = None,
        debug_slow_s: float = 0.0,
    ) -> None:
        # local import: stream.py needs with_deadline from this module
        from .stream import SegmentRegistry
        self.workers = max(1, int(workers))
        self.batch_max = max(1, int(batch_max))
        self.batch_window_s = max(0.0, float(batch_window_s))
        self.queue_limit = max(1, int(queue_limit))
        self.default_deadline_s = float(default_deadline_s)
        self.small_pins = int(small_pins)
        self.cache = cache
        self.journal = journal
        self.metrics = metrics if metrics is not None else Metrics()
        self.debug_slow_s = max(0.0, float(debug_slow_s))
        #: Refcounted shared-memory segments (streamed graphs + hoisted
        #: inline specs).  Owned here so its lifetime matches the jobs
        #: that reference it; emptied at stop().
        self.segments = SegmentRegistry()
        self.jobs: dict[str, Job] = {}
        self._queue: asyncio.Queue = asyncio.Queue()
        self._queued_count = 0      # admission depth (queue + coalescing)
        self._in_flight = 0         # jobs inside worker dispatches
        self._slots = asyncio.Semaphore(self.workers)
        self._dispatch_tasks: set[asyncio.Task] = set()
        self._batcher_task: asyncio.Task | None = None
        self._stopping = False
        self._scratch = Path(tempfile.mkdtemp(prefix="repro-serve-"))
        self._seq = itertools.count()
        self.metrics.register_gauge("queue_depth",
                                    lambda: float(self._queued_count))
        self.metrics.register_gauge("in_flight",
                                    lambda: float(self._in_flight))
        self.metrics.register_gauge("jobs_tracked",
                                    lambda: float(len(self.jobs)))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        from .runner import warm_solver_modules
        warm_solver_modules()       # forked workers inherit warm imports
        self._batcher_task = asyncio.get_running_loop().create_task(
            self._batcher())

    async def stop(self) -> None:
        """Cancel the batcher and every dispatch; kill their workers."""
        self._stopping = True
        tasks = list(self._dispatch_tasks)
        if self._batcher_task is not None:
            self._batcher_task.cancel()
            tasks.append(self._batcher_task)
        for t in tasks:
            t.cancel()
        for t in tasks:
            try:
                await with_deadline(asyncio.shield(t), 5.0)
            except BaseException:  # analyze: allow(silent-except) — shutdown must drain every task even if some died screaming; their workers were already killed by run_batch's finally
                pass
        self.segments.close_all()
        shutil.rmtree(self._scratch, ignore_errors=True)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> Job:
        """Admit one request: cache hit, queue, or shed (429)."""
        self._purge_finished()
        key = job_key(request)
        job_id = f"j-{next(self._seq):06d}-{uuid.uuid4().hex[:8]}"
        now_mono = time.monotonic()
        deadline_s = (request.deadline_s if request.deadline_s is not None
                      else self.default_deadline_s)
        job = Job(
            id=job_id, request=request, key=key,
            future=asyncio.get_running_loop().create_future(),
            submitted_ts=time.time(), submitted_mono=now_mono,
            deadline_mono=now_mono + deadline_s if deadline_s else None)
        hit = self.cache.get(key) if (self.cache is not None
                                      and request.use_cache) else None
        if hit is not None and "values" in hit:
            self.metrics.inc("cache_hits")
            self.jobs[job_id] = job
            self._resolve(job, status="done", result=hit.get("values"),
                          counters=hit.get("counters", {}),
                          duration_s=hit.get("duration_s", 0.0),
                          cached=True)
            return job
        self.metrics.inc("cache_misses")
        if (request.shm_ref is None
                and "stream" in request.params.get("graph", {})):
            # a by-digest resubmission can only be answered from the
            # cache: the binary payload is not on this shard
            raise ServeProtocolError(
                "no cached result for this streamed graph; re-upload "
                "it via POST /v1/stream")
        if self._queued_count >= self.queue_limit:
            self.metrics.inc("shed")
            raise QueueFullError(
                f"admission queue full ({self.queue_limit} queued); "
                "retry later")
        self.jobs[job_id] = job
        self._queued_count += 1
        self._queue.put_nowait(job)
        self._journal("submit", job)
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise JobNotFoundError(f"unknown job {job_id!r}") from None

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (running jobs finish or hit deadlines)."""
        job = self.get(job_id)
        if job.status == "queued":
            self._resolve(job, status="cancelled",
                          error="cancelled by client")
        return job

    def retry_after_hint(self) -> int:
        """Seconds a shed client should wait before retrying."""
        q = self.metrics.latency_quantiles()
        per_job = max(0.05, q["p50"])
        backlog = self._queued_count + self._in_flight
        return max(1, int(backlog * per_job / self.workers))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _is_small(self, job: Job) -> bool:
        return (job.request.est_pins <= self.small_pins
                and job.request.op != "schedule")

    async def _batcher(self) -> None:
        """Pull jobs, coalesce compatible small ones, dispatch batches.

        A surprise exception fails the jobs of the current beat and
        keeps the loop alive: a dead batcher strands every queued job
        with no error, forever, which is strictly worse than failing
        one beat loudly.
        """
        loop = asyncio.get_running_loop()
        while not self._stopping:
            job = await self._queue.get()
            batch: list[Job] = []
            solo: list[Job] = []
            groups: list[list[Job]] = []
            try:
                batch, solo = self._coalesce_start(job)
                if self._is_small(job) and self.batch_window_s > 0:
                    window_end = loop.time() + self.batch_window_s
                    while batch and len(batch) < self.batch_max:
                        remaining = window_end - loop.time()
                        if remaining <= 0:
                            break
                        try:
                            nxt = await with_deadline(self._queue.get(),
                                                      remaining)
                        except DeadlineExceededError:
                            break
                        more, solo_extra = self._coalesce_start(nxt)
                        solo.extend(solo_extra)
                        for j in more:
                            if self._is_small(j):
                                batch.append(j)
                            else:
                                solo.append(j)
                groups = ([batch] if batch else []) + [[j] for j in solo]
                while groups:
                    group = groups[0]
                    await self._slots.acquire()
                    try:
                        if group is batch:
                            self._top_up(group)
                        task = asyncio.get_running_loop().create_task(
                            self._run_dispatch(group))
                    except BaseException:
                        self._slots.release()
                        raise
                    self._dispatch_tasks.add(task)
                    task.add_done_callback(self._dispatch_tasks.discard)
                    groups.pop(0)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # analyze: allow(silent-except) — not silent: every stranded job of the beat is failed with the error and batcher_errors counts the beat; the batcher surviving is the point
                self.metrics.inc("batcher_errors")
                stranded: dict[int, Job] = {id(job): job}
                for j in (*batch, *solo,
                          *(x for g in groups for x in g)):
                    stranded.setdefault(id(j), j)
                for j in stranded.values():
                    if not j.done:
                        self._queued_count -= 1
                        self._resolve(j, status="error",
                                      error=f"batcher error: {exc!r}")

    def _top_up(self, batch: list[Job]) -> None:
        """Fill a batch from jobs that queued while it awaited a slot.

        Under saturation the coalescing window closes long before a
        worker frees up; without this, everything arriving during the
        slot wait dispatches in fragments.  Non-batchable jobs go back
        to the queue for their own dispatch.
        """
        while len(batch) < self.batch_max:
            try:
                nxt = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            more, solo = self._coalesce_start(nxt)
            small = [j for j in more if self._is_small(j)]
            solo.extend(j for j in more if not self._is_small(j))
            batch.extend(small)
            if solo:
                # put it back at the tail and stop: draining further
                # would re-pull it and spin
                self._queue.put_nowait(solo[0])
                break

    def _coalesce_start(self, job: Job) -> tuple[list[Job], list[Job]]:
        """Filter one dequeued job into (batchable, solo) lists.

        Drops jobs that finished while queued (cancelled) and resolves
        jobs whose deadline already passed — they never reach a worker.
        """
        if job.done:
            self._queued_count -= 1
            return [], []
        if (job.deadline_mono is not None
                and time.monotonic() >= job.deadline_mono):
            self._queued_count -= 1
            self._resolve(job, status="timeout",
                          error="deadline exceeded while queued")
            return [], []
        if self._is_small(job):
            return [job], []
        return [], [job]

    async def _run_dispatch(self, batch: list[Job]) -> None:
        members: dict[str, tuple[BatchMember, Job]] = {}
        try:
            for job in batch:
                self._queued_count -= 1
                if job.done:        # cancelled while awaiting a slot
                    continue
                self._in_flight += 1
                job.status = "running"
                job.attempts += 1
                outfile = (self.cache.path(job.key)
                           if self.cache is not None
                           and job.request.use_cache
                           else self._scratch / f"{job.key}.json")
                shm_desc = (self.segments.descriptor(job.request.shm_ref)
                            if job.request.shm_ref is not None else None)
                member = BatchMember(
                    key=job.id, seed=job.request.seed,
                    params=job.request.params, outfile=outfile,
                    errfile=self._scratch / f"{job.id}.err.json",
                    deadline_mono=job.deadline_mono,
                    shm_desc=shm_desc)
                members[job.id] = (member, job)
            self._journal_batch(batch)
            await with_deadline(
                run_batch([m for m, _ in members.values()],
                          on_outcome=self._on_outcome,
                          registry=self.segments,
                          debug_slow_s=self.debug_slow_s),
                self._batch_budget(batch))
        except DeadlineExceededError:
            # backstop only: run_batch enforces per-member deadlines
            # itself; reaching here means the dispatch wedged entirely
            for _member, job in members.values():
                if not job.done:
                    self._in_flight -= 1
                    self._resolve(job, status="timeout",
                                  error="dispatch wedged past its budget")
        except asyncio.CancelledError:
            for _member, job in members.values():
                if not job.done:
                    self._in_flight -= 1
                    self._resolve(job, status="cancelled",
                                  error="server shutting down")
            raise
        except Exception as exc:  # analyze: allow(silent-except) — not silent: the error is recorded on every affected job and returned to its client; the batcher itself must survive
            # dispatch failed before the worker ran (bad scratch dir,
            # journal disk error, ...): fail the jobs, keep the batcher
            for _member, job in members.values():
                if not job.done:
                    self._in_flight -= 1
                    self._resolve(job, status="error",
                                  error=f"dispatch failed: {exc}")
        finally:
            self._slots.release()

    def _batch_budget(self, batch: list[Job]) -> float:
        """Hard wall-clock cap for one dispatch (backstop, not policy)."""
        now = time.monotonic()
        spans = [(j.deadline_mono - now) for j in batch
                 if j.deadline_mono is not None]
        worst = max(spans) if spans else self.default_deadline_s
        return max(1.0, worst) + 10.0

    def _on_outcome(self, member: BatchMember,
                    outcome: MemberOutcome) -> None:
        job = self.jobs.get(member.key)
        if job is None or job.done:
            return
        self._in_flight -= 1
        if outcome.status == "ok":
            payload = outcome.payload or {}
            self._resolve(job, status="done",
                          result=payload.get("values"),
                          counters=payload.get("counters", {}),
                          duration_s=payload.get("duration_s", 0.0))
        elif outcome.status == "timeout":
            self._resolve(job, status="timeout", error=outcome.error)
        elif (outcome.status == "lost"
              and job.attempts < _MAX_ATTEMPTS
              and not self._stopping
              and (job.deadline_mono is None
                   or time.monotonic() < job.deadline_mono)):
            # collateral of a sibling's deadline kill: requeue once
            job.status = "queued"
            self._queued_count += 1
            self.metrics.inc("requeued")
            self._queue.put_nowait(job)
        else:
            self._resolve(job, status="error",
                          error=outcome.error or "job lost")

    # ------------------------------------------------------------------
    # Resolution & bookkeeping
    # ------------------------------------------------------------------
    def _resolve(self, job: Job, *, status: str, result: Any = None,
                 counters: dict | None = None, duration_s: float = 0.0,
                 error: str | None = None, cached: bool = False) -> None:
        job.status = status
        job.result = result
        job.counters = counters or {}
        job.duration_s = float(duration_s)
        job.error = error
        job.cached = cached
        job.finished_ts = time.time()
        job.latency_s = time.monotonic() - job.submitted_mono
        if job.request.shm_ref is not None:
            # the job's pin on its streamed segment ends with the job;
            # the registry parks (and eventually evicts) the segment
            self.segments.release(job.request.shm_ref)
        self.metrics.inc(f"jobs_{status}")
        if status == "done":
            self.metrics.observe_latency(job.latency_s)
            self.metrics.merge_worker_counters(job.counters)
        if not job.future.done():
            job.future.set_result(job)
        self._journal("finish", job)

    def _purge_finished(self) -> None:
        """Bound the jobs table: drop old finished jobs past retention."""
        if len(self.jobs) <= _RETAIN_JOBS:
            return
        now = time.time()
        finished = [j for j in self.jobs.values()
                    if j.done and j.finished_ts is not None]
        finished.sort(key=lambda j: j.finished_ts)
        excess = len(self.jobs) - _RETAIN_JOBS
        for job in finished:
            if excess <= 0 and now - (job.finished_ts or now) < _RETAIN_S:
                break
            del self.jobs[job.id]
            excess -= 1

    def _journal(self, event: str, job: Job) -> None:
        if self.journal is None:
            return
        self.journal.record(
            f"serve_{event}", job_id=job.id, key=job.key,
            op=job.request.op, status=job.status, cached=job.cached,
            attempts=job.attempts, duration_s=round(job.duration_s, 6),
            latency_s=round(job.latency_s, 6), error=job.error)

    def _journal_batch(self, batch: list[Job]) -> None:
        if self.journal is not None:
            self.journal.record("serve_dispatch",
                                jobs=[j.id for j in batch],
                                size=len(batch))

    # ------------------------------------------------------------------
    # Introspection (HTTP layer)
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._queued_count

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def job_summaries(self, limit: int = 100) -> list[dict]:
        jobs = sorted(self.jobs.values(), key=lambda j: j.submitted_ts,
                      reverse=True)
        return [j.describe(with_result=False) for j in jobs[:limit]]
