"""In-worker job execution for the serving layer.

:func:`solve` follows the lab runner contract ``run(*, seed, **params)``
so a serve job is content-addressed exactly like a lab task:
:data:`SERVE_SPEC` names this module, and
:func:`repro.lab.cache.task_key` folds this file's bytes into the key —
editing the solver invalidates cached serve results the same way it
invalidates lab results.  Results are plain JSON-able dicts.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..lab.cache import task_key
from ..lab.spec import ExperimentSpec
from .protocol import JobRequest, build_graph

__all__ = ["SERVE_SPEC", "job_key", "solve", "warm_solver_modules"]


def warm_solver_modules() -> None:
    """Import the solver stack in the parent before any fork.

    :func:`solve` imports partitioners/scheduling lazily; without this,
    every forked batch worker pays those imports (~300 ms) itself —
    which is exactly the per-dispatch overhead micro-batching exists to
    amortise.  Called once at server start.
    """
    from .. import generators, io, partitioners, scheduling, sim  # noqa: F401

#: Spec under which serve jobs are cached.  ``version`` bumps invalidate
#: every cached serve result (on top of the code-fingerprint keying).
SERVE_SPEC = ExperimentSpec(
    name="serve.job",
    artifact="serve",
    title="serve.job",
    module="repro.serve.runner",
    func="solve",
    version=1,
)


def job_key(request: JobRequest) -> str:
    """Content address of a job (shared ``.lab-cache/`` key space)."""
    return task_key(SERVE_SPEC, request.params, request.seed)


def _solve_partition(graph, *, seed: int, params: Mapping[str, Any]) -> dict:
    from ..core import Metric, connectivity_cost, cut_net_cost, is_balanced

    k = params["k"]
    eps = params["eps"]
    metric = (Metric.CONNECTIVITY if params["metric"] == "connectivity"
              else Metric.CUT_NET)
    algorithm = params["algorithm"]
    if algorithm == "multilevel":
        from ..partitioners import multilevel_partition
        part = multilevel_partition(graph, k, eps, metric, rng=seed)
    elif algorithm == "recursive":
        from ..partitioners import recursive_partition
        part = recursive_partition(graph, k, eps, metric, rng=seed,
                                   relaxed=True)
    elif algorithm == "greedy":
        from ..partitioners import greedy_sequential_partition
        part = greedy_sequential_partition(graph, k, eps, metric, rng=seed,
                                           relaxed=True)
    elif algorithm == "spectral":
        from ..partitioners import spectral_partition
        part = spectral_partition(graph, k, eps, metric, rng=seed)
    elif algorithm == "random":
        from ..partitioners import random_balanced_partition
        part = random_balanced_partition(graph, k, eps, rng=seed,
                                         relaxed=True)
    else:  # exact (size-guarded; raises ProblemTooLargeError when huge)
        from ..partitioners import exact_partition
        part = exact_partition(graph, k, eps, metric, relaxed=True).partition
    return {
        "labels": part.labels.tolist(),
        "sizes": part.sizes().tolist(),
        "connectivity": float(connectivity_cost(graph, part.labels, k)),
        "cut_net": float(cut_net_cost(graph, part.labels, k)),
        "balanced": bool(is_balanced(part, eps, relaxed=True)),
        "algorithm": algorithm,
        "metric": params["metric"],
        "k": k,
        "eps": eps,
    }


def _solve_schedule(graph, *, params: Mapping[str, Any]) -> dict:
    from ..core import recognize, to_dag
    from ..errors import NotAHyperDAGError
    from ..scheduling import list_schedule, trivial_lower_bound

    cert = recognize(graph)
    if cert is None:
        raise NotAHyperDAGError(
            "scheduling requires a hyperDAG payload (Lemma B.1 fails)")
    dag = to_dag(graph, cert)
    k = params["k"]
    schedule = list_schedule(dag, k)
    return {
        "k": k,
        "makespan": int(schedule.makespan),
        "lower_bound": int(trivial_lower_bound(dag, k)),
        "procs": schedule.procs.tolist(),
        "times": schedule.times.tolist(),
    }


def _sim_partition_labels(graph, k: int, algorithm: str, seed: int):
    from ..core import Metric

    eps = 0.1
    if algorithm == "spectral":
        from ..partitioners import spectral_partition
        part = spectral_partition(graph, k, eps, Metric.CONNECTIVITY,
                                  rng=seed)
    elif algorithm == "random":
        from ..partitioners import random_balanced_partition
        part = random_balanced_partition(graph, k, eps, rng=seed,
                                         relaxed=True)
    else:
        from ..partitioners import multilevel_partition
        part = multilevel_partition(graph, k, eps, Metric.CONNECTIVITY,
                                    rng=seed)
    return part.labels


def _solve_simulate(graph, *, seed: int, params: Mapping[str, Any]) -> dict:
    from ..hierarchy.topology import HierarchyTopology
    from ..sim import DurationSpec, SimPlan, simulate

    plan = SimPlan.from_hypergraph(graph)
    topo_spec = params.get("topology")
    if topo_spec is not None:
        topo = HierarchyTopology(tuple(topo_spec["b"]),
                                 tuple(topo_spec["g"]))
    else:
        topo = HierarchyTopology.flat(params["k"])
    labels = _sim_partition_labels(graph, topo.k, params["algorithm"],
                                   seed)
    trace = simulate(plan, topo, params["scheduler"], seed=seed,
                     imode=params["imode"],
                     duration=DurationSpec(kind=params["dist"]),
                     latency=params["latency"], partition=labels)
    return {
        "scheduler": trace.scheduler,
        "imode": trace.imode,
        "k": trace.k,
        "tasks": plan.n,
        "makespan": float(trace.makespan),
        "lower_bound": float(trace.lower_bound),
        "makespan_ratio": float(trace.makespan_ratio),
        "transfers": len(trace.transfers),
        "n_events": trace.n_events,
        "digest": trace.digest(),
        "task_worker": trace.task_worker.tolist(),
    }


def _solve_recognize(graph) -> dict:
    from ..core import recognize

    cert = recognize(graph)
    return {
        "is_hyperdag": cert is not None,
        "generators": list(cert.generators) if cert is not None else None,
    }


def solve(*, seed: int, **params: Any) -> dict:
    """Execute one job; returns a JSON-able result dict.

    Raises :class:`~repro.errors.ReproError` subclasses for anything the
    client got wrong (malformed hgr upload, non-hyperDAG scheduling
    input, oversized exact instance); the pool maps those to a per-job
    error result rather than a worker crash.
    """
    graph = build_graph(params)
    op = params["op"]
    if op == "partition":
        result = _solve_partition(graph, seed=seed, params=params)
    elif op == "schedule":
        result = _solve_schedule(graph, params=params)
    elif op == "simulate":
        result = _solve_simulate(graph, seed=seed, params=params)
    else:
        result = _solve_recognize(graph)
    result["op"] = op
    result["n"] = graph.n
    result["m"] = graph.num_edges
    result["pins"] = graph.num_pins
    return result
