"""The discrete-event simulator core.

:func:`simulate` executes a :class:`~repro.sim.plan.SimPlan` on the
machine described by a :class:`~repro.hierarchy.topology.HierarchyTopology`
under a pluggable scheduler, and returns a :class:`SimTrace` whose
content — every start/finish instant, every transfer, the event count
— is a pure function of ``(plan, topology, scheduler, imode,
duration spec, seed)``.  Determinism is load-bearing: trace digests
are committed in ``BENCH_sim.json`` and gated by
``check_bench_regression.py --suite sim``.

Engine rules
------------
* A task may be assigned once, to one worker, only after it is ready
  (all predecessors finished).  Violations raise
  :class:`~repro.errors.SimulationError` — a scheduler bug, not user
  input, so it must not be silent.
* An assigned task first fetches every input it is missing; transfers
  contend FIFO on the hierarchy links (:mod:`repro.sim.network`) and
  are deduplicated per ``(producer, worker)``.
* A worker runs at most ``slots`` tasks at once; runnable tasks queue
  FIFO in assignment order.
* The scheduler is called once at start and once after every event,
  with the news of that event (readiness, completions, idle state).

All time is the simulated clock; the engine never reads the wall
clock or any global RNG (the analyze determinism pass enforces this
transitively).
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SimulationError
from ..hierarchy.topology import HierarchyTopology
from .durations import DurationSpec
from .events import TASK_FINISHED, TRANSFER_FINISHED, EventQueue
from .network import NetworkModel, Transfer
from .plan import SimPlan, weighted_lower_bound
from .schedulers import (
    Scheduler,
    SimContext,
    Update,
    make_scheduler,
)

__all__ = ["SimTrace", "simulate"]

_UNASSIGNED, _ASSIGNED, _QUEUED, _RUNNING, _DONE = range(5)


@dataclass(frozen=True)
class SimTrace:
    """The full, canonical record of one simulation run."""

    scheduler: str
    imode: str
    seed: int
    k: int
    makespan: float
    lower_bound: float
    task_worker: np.ndarray
    task_start: np.ndarray
    task_finish: np.ndarray
    transfers: tuple
    n_events: int

    @property
    def makespan_ratio(self) -> float:
        """Simulated makespan over the static (communication-free)
        lower bound — >= 1, and the headline quality number."""
        return self.makespan / self.lower_bound if self.lower_bound else 1.0

    def to_json(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "imode": self.imode,
            "seed": self.seed,
            "k": self.k,
            "makespan": self.makespan,
            "lower_bound": self.lower_bound,
            "task_worker": self.task_worker.tolist(),
            "task_start": self.task_start.tolist(),
            "task_finish": self.task_finish.tolist(),
            "transfers": [list(t) for t in self.transfers],
            "n_events": self.n_events,
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON trace.

        Floats serialise via their shortest round-trip repr, so two
        runs agree on the digest iff they agree bit-for-bit on every
        simulated instant.
        """
        payload = json.dumps(self.to_json(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()


class _Engine:
    def __init__(self, plan: SimPlan, topology: HierarchyTopology,
                 scheduler: Scheduler, *, seed: int, imode: str,
                 duration: DurationSpec, latency, slots: int,
                 partition, schedule) -> None:
        self.plan = plan
        self.topology = topology
        self.scheduler = scheduler
        self.k = topology.k
        self.slots = int(slots)
        if self.slots < 1:
            raise SimulationError("slots must be >= 1")
        self.seed_value = int(seed)
        rng = np.random.default_rng(seed)
        self.durations = duration.sample(plan.base_costs, rng)
        est = duration.estimates(plan.base_costs, self.durations, imode)
        self.network = NetworkModel(topology, latency=latency)
        part = None
        if partition is not None:
            part = np.asarray(partition, dtype=np.int64)
            if part.shape != (plan.n,):
                raise SimulationError(
                    f"partition must have shape ({plan.n},)")
            if plan.n and (part.min() < 0 or part.max() >= self.k):
                raise SimulationError(
                    f"partition labels outside 0..{self.k - 1}")
        self.ctx = SimContext(
            plan=plan, topology=topology, network=self.network,
            k=self.k, slots=self.slots, est=est, imode=imode, rng=rng,
            partition=part, schedule=schedule)
        n = plan.n
        self.status = np.full(n, _UNASSIGNED, dtype=np.int64)
        self.worker_of = np.full(n, -1, dtype=np.int64)
        self.pending = np.fromiter(
            (plan.dag.in_degree(v) for v in range(n)),
            dtype=np.int64, count=n)
        self.missing = np.zeros(n, dtype=np.int64)
        self.start_t = np.zeros(n, dtype=np.float64)
        self.finish_t = np.zeros(n, dtype=np.float64)
        self.free_slots = [self.slots] * self.k
        self.backlog = [0] * self.k
        self.queues: list[deque[int]] = [deque() for _ in range(self.k)]
        #: producer -> workers holding its output
        self.locations: list[set[int]] = [set() for _ in range(n)]
        #: (producer, dst worker) -> consumers awaiting that transfer
        self.in_flight: dict[tuple[int, int], list[int]] = {}
        self.transfers: list[Transfer] = []
        self.events = EventQueue()
        self.n_events = 0
        self.done = 0

    # -- scheduler protocol ---------------------------------------------

    def _dispatch(self, now: float, new_ready: list[int],
                  finished: list[int]) -> None:
        msg = Update(time=now, new_ready=new_ready, finished=finished,
                     backlog=list(self.backlog),
                     free_slots=list(self.free_slots))
        for v, w in self.scheduler.update(msg):
            self._assign(int(v), int(w), now)

    def _assign(self, v: int, w: int, now: float) -> None:
        if not (0 <= v < self.plan.n and 0 <= w < self.k):
            raise SimulationError(
                f"scheduler assigned out-of-range task/worker ({v}, {w})")
        if self.status[v] != _UNASSIGNED or self.pending[v] != 0:
            raise SimulationError(
                f"scheduler assigned task {v} which is "
                f"{'not ready' if self.pending[v] else 'already placed'}")
        self.status[v] = _ASSIGNED
        self.worker_of[v] = w
        self.backlog[w] += 1
        self._stage_inputs(v, w, now)

    def _stage_inputs(self, v: int, w: int, now: float) -> None:
        missing = 0
        for u in self.plan.dag.predecessors(v):
            if w in self.locations[u]:
                continue
            key = (u, w)
            waiters = self.in_flight.get(key)
            if waiters is not None:
                waiters.append(v)
                missing += 1
                continue
            tr = self.network.request(
                u, v, src=int(self.worker_of[u]), dst=w,
                size=float(self.plan.sizes[u]), now=now)
            self.transfers.append(tr)
            self.in_flight[key] = [v]
            self.events.push(tr.finish, TRANSFER_FINISHED, key)
            missing += 1
        if missing:
            self.missing[v] = missing
        else:
            self._enqueue(v, w, now)

    # -- worker execution -----------------------------------------------

    def _enqueue(self, v: int, w: int, now: float) -> None:
        self.status[v] = _QUEUED
        self.queues[w].append(v)
        self._drain_worker(w, now)

    def _drain_worker(self, w: int, now: float) -> None:
        while self.free_slots[w] > 0 and self.queues[w]:
            v = self.queues[w].popleft()
            self.free_slots[w] -= 1
            self.status[v] = _RUNNING
            self.start_t[v] = now
            finish = now + float(self.durations[v])
            self.finish_t[v] = finish
            self.events.push(finish, TASK_FINISHED, v)

    # -- event handlers --------------------------------------------------

    def _on_task_finished(self, v: int, now: float) -> list[int]:
        w = int(self.worker_of[v])
        self.status[v] = _DONE
        self.done += 1
        self.free_slots[w] += 1
        self.backlog[w] -= 1
        self.locations[v].add(w)
        new_ready: list[int] = []
        for s in self.plan.dag.successors(v):
            self.pending[s] -= 1
            if self.pending[s] == 0:
                new_ready.append(int(s))
        self._drain_worker(w, now)
        return new_ready

    def _on_transfer_finished(self, key: tuple[int, int],
                              now: float) -> None:
        u, w = key
        self.locations[u].add(w)
        for v in self.in_flight.pop(key):
            self.missing[v] -= 1
            if self.missing[v] == 0:
                self._enqueue(v, int(self.worker_of[v]), now)

    # -- main loop --------------------------------------------------------

    def run(self) -> SimTrace:
        self.scheduler.start(self.ctx)
        roots = [v for v in range(self.plan.n) if self.pending[v] == 0]
        self._dispatch(0.0, roots, [])
        now = 0.0
        while self.events:
            ev = self.events.pop()
            self.n_events += 1
            now = ev.time
            if ev.kind == TASK_FINISHED:
                ready = self._on_task_finished(ev.payload, now)
                self._dispatch(now, ready, [ev.payload])
            else:
                self._on_transfer_finished(ev.payload, now)
                self._dispatch(now, [], [])
        if self.done != self.plan.n:
            stuck = int(np.sum(self.status != _DONE))
            raise SimulationError(
                f"simulation deadlocked with {stuck} unfinished task(s); "
                f"the '{self.scheduler.NAME}' scheduler stopped assigning")
        lb = weighted_lower_bound(self.plan, self.k, self.durations)
        return SimTrace(
            scheduler=self.scheduler.NAME, imode=self.ctx.imode,
            seed=int(self.seed_value), k=self.k, makespan=now,
            lower_bound=lb, task_worker=self.worker_of,
            task_start=self.start_t, task_finish=self.finish_t,
            transfers=tuple(tuple(t.to_record()) for t in self.transfers),
            n_events=self.n_events)


def simulate(plan: SimPlan, topology: HierarchyTopology,
             scheduler: str | Scheduler = "heft", *, seed: int = 0,
             imode: str = "exact",
             duration: DurationSpec | None = None,
             latency: Sequence[float] | float = 0.0, slots: int = 1,
             partition=None, schedule=None) -> SimTrace:
    """Run one deterministic simulation and return its trace."""
    sched = (make_scheduler(scheduler) if isinstance(scheduler, str)
             else scheduler)
    engine = _Engine(plan, topology, sched, seed=int(seed), imode=imode,
                     duration=duration or DurationSpec(), latency=latency,
                     slots=slots, partition=partition, schedule=schedule)
    return engine.run()
