"""Hierarchical network model derived from a :class:`HierarchyTopology`.

Definition 7.1 prices a value moved between two leaves whose lowest
common ancestor sits on level ``i`` at ``g_i``.  The simulator reads
that statically-priced tree as a *dynamic* machine:

* a transfer of ``size`` units between leaves with LCA level ``i``
  takes ``latency_i + size * g_i`` simulated seconds (``g_i`` is the
  per-unit inverse bandwidth of a level-``i`` link, so the paper's
  static hierarchical cost is exactly the total transfer time a
  partition's traffic would take with no contention);
* every internal tree node is one shared link (a bus): transfers whose
  LCA is that node serialise FIFO on it.  Links near the root are both
  slow (``g_1`` largest) and shared by the most leaf pairs, which is
  what makes cross-root traffic the dominant simulated cost — the
  dynamic analogue of why partitioners weight ``λ^{(1)}`` hardest.

All state is per-link ``free_at`` times; requesting a transfer is
deterministic given request order, which the event queue fixes.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import SimulationError
from ..hierarchy.topology import HierarchyTopology

__all__ = ["NetworkModel", "Transfer"]


class Transfer:
    """One in-flight data movement between two leaves."""

    __slots__ = ("producer", "consumer", "src", "dst", "level",
                 "size", "start", "finish")

    def __init__(self, producer: int, consumer: int, src: int, dst: int,
                 level: int, size: float, start: float,
                 finish: float) -> None:
        self.producer = producer
        self.consumer = consumer
        self.src = src
        self.dst = dst
        self.level = level
        self.size = size
        self.start = start
        self.finish = finish

    def to_record(self) -> list:
        return [self.producer, self.consumer, self.src, self.dst,
                self.level, self.size, self.start, self.finish]


class NetworkModel:
    """FIFO-contended links over the topology tree."""

    def __init__(self, topology: HierarchyTopology,
                 latency: Sequence[float] | float = 0.0) -> None:
        self.topology = topology
        d = topology.depth
        if isinstance(latency, (int, float)):
            lat = (float(latency),) * d
        else:
            lat = tuple(float(x) for x in latency)
        if len(lat) != d or any(x < 0 for x in lat):
            raise SimulationError(
                f"latency must be one non-negative value per level ({d})")
        self.latency = lat
        #: (level, lca-node-id) -> earliest time the link is free
        self._free_at: dict[tuple[int, int], float] = {}

    def reset(self) -> None:
        self._free_at.clear()

    def request(self, producer: int, consumer: int, src: int, dst: int,
                size: float, now: float) -> Transfer:
        """Schedule a transfer; returns it with start/finish decided.

        The link is the LCA of ``src``/``dst``; the transfer starts as
        soon as both ``now`` and the link's FIFO queue allow.
        """
        topo = self.topology
        if src == dst:
            raise SimulationError("no transfer needed on the same leaf")
        lca = topo.lca_level(src, dst)          # in 1..depth
        g = topo.g[lca - 1]
        key = (lca, topo.ancestor(dst, lca - 1))
        start = max(now, self._free_at.get(key, 0.0))
        finish = start + self.latency[lca - 1] + size * g
        self._free_at[key] = finish
        return Transfer(producer, consumer, src, dst, lca, size, start,
                        finish)

    def transfer_time(self, src: int, dst: int, size: float) -> float:
        """Contention-free duration estimate (what schedulers plan with)."""
        if src == dst:
            return 0.0
        lca = self.topology.lca_level(src, dst)
        return self.latency[lca - 1] + size * self.topology.g[lca - 1]
