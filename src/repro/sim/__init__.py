"""``repro.sim`` — discrete-event scheduling simulation (Section 7).

Executes (hyper)DAG plans on hierarchical machines (Definition 7.1)
under pluggable schedulers with imperfect duration information, and
answers the question static schedules cannot: *how does this
partition actually perform under network contention and noisy
runtimes?*

Entry points: :func:`simulate` (one deterministic run),
:class:`SimPlan` (task graphs), :data:`SCHEDULERS` (the zoo),
``repro sim run|compare`` (CLI) and the serve ``simulate`` op.
"""

from .durations import DURATION_KINDS, INFORMATION_MODES, DurationSpec
from .network import NetworkModel
from .plan import SimPlan, weighted_lower_bound
from .schedulers import (
    SCHEDULERS,
    Scheduler,
    SimContext,
    Update,
    make_scheduler,
    register_scheduler,
)
from .simulator import SimTrace, simulate

__all__ = [
    "DURATION_KINDS",
    "INFORMATION_MODES",
    "DurationSpec",
    "NetworkModel",
    "SCHEDULERS",
    "Scheduler",
    "SimContext",
    "SimPlan",
    "SimTrace",
    "Update",
    "make_scheduler",
    "register_scheduler",
    "simulate",
    "weighted_lower_bound",
]
