"""Stochastic task durations and scheduler information modes.

The simulator separates what a task *actually* costs from what the
scheduler *believes* it costs (estee's ``imode`` idea):

* actual durations are drawn once, up front, from a seeded
  ``np.random.Generator`` — sampling is independent of event order, so
  a trace is a pure function of ``(plan, topology, scheduler, seed)``;
* the scheduler only ever sees the estimate vector for its information
  mode: ``exact`` (the sampled truth), ``mean`` (distribution means —
  a calibrated profile), or ``blind`` (unit guesses — no profile at
  all).

Distribution kinds: ``fixed`` (no noise), ``uniform`` (multiplicative
``[1-jitter, 1+jitter]`` noise), ``lognormal`` (multiplicative
``exp(N(0, sigma))`` noise, normalised to mean ``base``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError

__all__ = ["DURATION_KINDS", "INFORMATION_MODES", "DurationSpec"]

INFORMATION_MODES = ("exact", "mean", "blind")
DURATION_KINDS = ("fixed", "uniform", "lognormal")


@dataclass(frozen=True)
class DurationSpec:
    """Distribution of task durations around per-task base costs."""

    kind: str = "fixed"
    jitter: float = 0.3        # uniform half-width (fraction of base)
    sigma: float = 0.25        # lognormal shape

    def __post_init__(self) -> None:
        if self.kind not in DURATION_KINDS:
            raise SimulationError(
                f"unknown duration kind {self.kind!r}; "
                f"known: {', '.join(DURATION_KINDS)}")
        if not 0 <= self.jitter < 1:
            raise SimulationError("jitter must be in [0, 1)")
        if self.sigma < 0:
            raise SimulationError("sigma must be >= 0")

    def sample(self, base: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        """Actual durations for one simulation run."""
        base = np.asarray(base, dtype=np.float64)
        if self.kind == "fixed":
            return base.copy()
        if self.kind == "uniform":
            noise = rng.uniform(1.0 - self.jitter, 1.0 + self.jitter,
                                size=base.shape)
            return base * noise
        noise = np.exp(rng.normal(0.0, self.sigma, size=base.shape))
        # normalise so E[duration] == base (lognormal mean correction)
        return base * noise / float(np.exp(0.5 * self.sigma**2))

    def mean(self, base: np.ndarray) -> np.ndarray:
        """Expected durations (what a calibrated profile would report)."""
        return np.asarray(base, dtype=np.float64).copy()

    def estimates(self, base: np.ndarray, actual: np.ndarray,
                  imode: str) -> np.ndarray:
        """The duration vector a scheduler in ``imode`` gets to see."""
        if imode == "exact":
            return np.asarray(actual, dtype=np.float64).copy()
        if imode == "mean":
            return self.mean(base)
        if imode == "blind":
            return np.ones(np.asarray(base).shape, dtype=np.float64)
        raise SimulationError(
            f"unknown information mode {imode!r}; "
            f"known: {', '.join(INFORMATION_MODES)}")
