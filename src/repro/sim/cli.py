"""``repro sim`` — simulate partition+schedule plans from the shell.

``repro sim run FILE.hgr``
    One deterministic simulation of the hyperDAG in ``FILE.hgr`` on a
    Definition 7.1 topology; prints makespan, the static lower bound,
    the ratio, transfer stats, and the trace digest.

``repro sim compare FILE.hgr``
    Cross a set of schedulers with a set of information modes on the
    same plan and print the paper-style makespan matrix.

The machine is given either as ``--topology b1,b2,.. --g g1,g2,..``
(branching factors and per-level transfer costs) or as a flat ``-k``.
Partition-aware schedulers (``locked``, ``work-steal``) get their home
map from ``--algorithm`` (a partitioner run on the same hypergraph).
"""

from __future__ import annotations

import sys

import numpy as np

from ..errors import ReproError

__all__ = ["add_sim_parser", "sim_main"]

_DEFAULT_SCHEDULERS = "heft,cp-list,work-steal,locked,random"


def _csv_floats(text: str) -> tuple[float, ...]:
    return tuple(float(x) for x in text.split(",") if x.strip())


def _csv_ints(text: str) -> tuple[int, ...]:
    return tuple(int(x) for x in text.split(",") if x.strip())


def add_sim_parser(sub) -> None:
    p = sub.add_parser(
        "sim", help="discrete-event scheduling simulation (repro.sim)")
    ssub = p.add_subparsers(dest="sim_command", required=True)

    def common(q) -> None:
        q.add_argument("hgr", help="hyperDAG input (.hgr)")
        q.add_argument("-k", type=int, default=4,
                       help="flat machine size (ignored with --topology)")
        q.add_argument("--topology", default=None,
                       help="branching factors, e.g. '2,4' (Def 7.1)")
        q.add_argument("--g", default=None,
                       help="per-level transfer costs, e.g. '4,1'")
        q.add_argument("--latency", type=float, default=0.0,
                       help="per-level link latency (single value)")
        q.add_argument("--dist", default="lognormal",
                       choices=("fixed", "uniform", "lognormal"),
                       help="task duration distribution")
        q.add_argument("--jitter", type=float, default=0.3)
        q.add_argument("--sigma", type=float, default=0.25)
        q.add_argument("--size", type=float, default=1.0,
                       help="output data size per task")
        q.add_argument("--slots", type=int, default=1,
                       help="CPU slots per leaf worker")
        q.add_argument("--algorithm", default="multilevel",
                       help="partitioner feeding partition-aware "
                            "schedulers (multilevel|spectral|random)")
        q.add_argument("--seed", type=int, default=0)

    r = ssub.add_parser("run", help="simulate one scheduler/imode")
    common(r)
    r.add_argument("--scheduler", default="heft")
    r.add_argument("--imode", default="exact",
                   choices=("exact", "mean", "blind"))

    c = ssub.add_parser("compare",
                        help="makespan matrix: schedulers x imodes")
    common(c)
    c.add_argument("--schedulers", default=_DEFAULT_SCHEDULERS,
                   help="comma-separated scheduler names")
    c.add_argument("--imodes", default="exact,mean,blind",
                   help="comma-separated information modes")
    return None


def _load(args):
    """(plan, topology, duration spec, partition labels) from args."""
    from ..io import read_hgr
    from .durations import DurationSpec
    from .plan import SimPlan

    graph = read_hgr(args.hgr)
    if args.topology is not None:
        from ..hierarchy.topology import HierarchyTopology
        b = _csv_ints(args.topology)
        g = (_csv_floats(args.g) if args.g is not None
             else tuple(float(2 ** (len(b) - 1 - i))
                        for i in range(len(b))))
        topo = HierarchyTopology(b, g)
    else:
        from ..hierarchy.topology import HierarchyTopology
        topo = HierarchyTopology.flat(args.k)
    dag = _to_dag(graph)
    plan = SimPlan.from_dag(dag, sizes=np.full(dag.n, float(args.size)))
    spec = DurationSpec(kind=args.dist, jitter=args.jitter,
                        sigma=args.sigma)
    labels = _partition_labels(graph, topo.k, args)
    return plan, topo, spec, labels


def _to_dag(graph):
    from ..core.hyperdag import recognize, to_dag
    from ..errors import NotAHyperDAGError

    cert = recognize(graph)
    if cert is None:
        raise NotAHyperDAGError(
            f"{graph.name or 'input'} is not a hyperDAG; "
            "`repro sim` needs a schedulable plan (Lemma B.1)")
    return to_dag(graph, cert)


def _partition_labels(graph, k: int, args) -> np.ndarray:
    from ..core import Metric

    eps = 0.1
    if args.algorithm == "spectral":
        from ..partitioners import spectral_partition
        part = spectral_partition(graph, k, eps, Metric.CONNECTIVITY,
                                  rng=args.seed)
    elif args.algorithm == "random":
        from ..partitioners import random_balanced_partition
        part = random_balanced_partition(graph, k, eps, rng=args.seed,
                                         relaxed=True)
    else:
        from ..partitioners import multilevel_partition
        part = multilevel_partition(graph, k, eps, Metric.CONNECTIVITY,
                                    rng=args.seed)
    return part.labels


def _run_one(plan, topo, spec, labels, scheduler: str, imode: str,
             args):
    from .simulator import simulate

    return simulate(plan, topo, scheduler, seed=args.seed, imode=imode,
                    duration=spec, latency=args.latency,
                    slots=args.slots, partition=labels)


def _sim_run(args) -> int:
    plan, topo, spec, labels = _load(args)
    trace = _run_one(plan, topo, spec, labels, args.scheduler,
                     args.imode, args)
    print(f"scheduler     : {trace.scheduler}")
    print(f"imode         : {trace.imode}")
    print(f"machine       : b={topo.b} g={topo.g} (k={topo.k})")
    print(f"tasks         : {plan.n}")
    print(f"makespan      : {trace.makespan:.4f}")
    print(f"lower bound   : {trace.lower_bound:.4f}")
    print(f"ratio         : {trace.makespan_ratio:.4f}")
    print(f"transfers     : {len(trace.transfers)}")
    print(f"events        : {trace.n_events}")
    print(f"digest        : {trace.digest()[:16]}")
    return 0


def _sim_compare(args) -> int:
    from ..lab.report import format_table

    plan, topo, spec, labels = _load(args)
    imodes = [s.strip() for s in args.imodes.split(",") if s.strip()]
    rows = []
    for name in (s.strip() for s in args.schedulers.split(",")):
        if not name:
            continue
        row: list = [name]
        for imode in imodes:
            trace = _run_one(plan, topo, spec, labels, name, imode, args)
            row.append(round(trace.makespan, 3))
        rows.append(row)
    text, _ = format_table(
        f"repro sim: makespan by scheduler x imode "
        f"(k={topo.k}, seed={args.seed})",
        ["scheduler"] + [f"{m} makespan" for m in imodes], rows)
    print(text)
    return 0


def sim_main(args) -> int:
    try:
        if args.sim_command == "run":
            return _sim_run(args)
        return _sim_compare(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
