"""Simulation plans: a DAG of tasks with costs and output sizes.

A :class:`SimPlan` is what the simulator executes: the precedence
structure of a computational DAG (Definition 3.2 / 5.3), a base cost
per task (unit by default, matching the paper's unit-time model), and
an output-data size per task (how much each consumer must fetch when
it runs on a different leaf — the "one value per node" hyperDAG
convention makes 1.0 the natural default).

Plans are built either directly from a :class:`~repro.core.dag.DAG`
or from a hyperDAG hypergraph via its recognition certificate, which
is how the CLI and the serve op accept ``.hgr`` payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.dag import DAG
from ..errors import NotAHyperDAGError, SimulationError
from ..scheduling.list_scheduler import priority_from_csr

__all__ = ["SimPlan", "weighted_lower_bound"]


@dataclass(frozen=True)
class SimPlan:
    """An immutable task graph ready for simulation."""

    dag: DAG
    base_costs: np.ndarray        # expected compute cost per task
    sizes: np.ndarray             # output data size per task

    def __post_init__(self) -> None:
        costs = np.asarray(self.base_costs, dtype=np.float64).copy()
        sizes = np.asarray(self.sizes, dtype=np.float64).copy()
        if costs.shape != (self.dag.n,) or sizes.shape != (self.dag.n,):  # analyze: allow(float-cost-eq) — shape tuple comparison, not a float-value comparison
            raise SimulationError(
                f"base_costs/sizes must have shape ({self.dag.n},)")
        if costs.size and (costs.min() <= 0 or sizes.min() < 0):
            raise SimulationError(
                "base costs must be positive and sizes non-negative")
        costs.setflags(write=False)
        sizes.setflags(write=False)
        object.__setattr__(self, "base_costs", costs)
        object.__setattr__(self, "sizes", sizes)

    @property
    def n(self) -> int:
        return self.dag.n

    @staticmethod
    def from_dag(dag: DAG,
                 base_costs: Sequence[float] | np.ndarray | None = None,
                 sizes: Sequence[float] | np.ndarray | None = None,
                 ) -> "SimPlan":
        costs = (np.ones(dag.n) if base_costs is None
                 else np.asarray(base_costs, dtype=np.float64))
        out = (np.ones(dag.n) if sizes is None
               else np.asarray(sizes, dtype=np.float64))
        return SimPlan(dag=dag, base_costs=costs, sizes=out)

    @staticmethod
    def from_hypergraph(graph, **kwargs) -> "SimPlan":
        """Recognise ``graph`` as a hyperDAG and plan its DAG."""
        from ..core.hyperdag import recognize, to_dag

        cert = recognize(graph)
        if cert is None:
            raise NotAHyperDAGError(
                "simulation requires a hyperDAG input (Lemma B.1 fails)")
        return SimPlan.from_dag(to_dag(graph, cert), **kwargs)

    def successor_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Successor CSR ``(ptr, adj)`` shared by priority computations."""
        dag = self.dag
        counts = np.fromiter((dag.out_degree(v) for v in range(dag.n)),
                             dtype=np.int64, count=dag.n)
        ptr = np.zeros(dag.n + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        adj = np.fromiter(
            (w for v in range(dag.n) for w in dag.successors(v)),
            dtype=np.int64, count=int(ptr[-1]))
        return ptr, adj


def weighted_lower_bound(plan: SimPlan, k: int,
                         durations: np.ndarray) -> float:
    """``max(total work / k, weighted critical path)`` — the static
    makespan lower bound the simulated makespan is reported against
    (the Definition 5.3 bound generalised to weighted durations,
    ignoring all communication)."""
    if plan.n == 0:
        return 0.0
    dur = np.asarray(durations, dtype=np.float64)
    ptr, adj = plan.successor_csr()
    prio = priority_from_csr(ptr, adj, plan.dag.asap_layers(), weights=dur)
    return max(float(dur.sum()) / k, float(prio.max()))
