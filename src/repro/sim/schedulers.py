"""The scheduler zoo — pluggable policies behind an update/assign API.

A scheduler never touches simulator internals: it receives a
:class:`SimContext` once at start (the task graph, the topology, the
duration *estimates* for its information mode, a seeded RNG) and then
a stream of :class:`Update` messages — one per simulation event —
answering each with a list of ``(task, worker)`` assignments drawn
from the ready pool.  This is estee's ``Update``/assign protocol
specialised to hierarchical machines.

Determinism contract: a scheduler decision may depend only on the
context and the message stream (both deterministic) and on
``ctx.rng`` (seeded per run).  Wall-clock time, global RNG state and
the environment are off limits — the analyze determinism pass walks
every registered scheduler and flags violations.

Zoo members (``SCHEDULERS``):

``heft``        HEFT-style earliest-finish-time onto the estimated
                machine state, ranked by weighted critical path.
``cp-list``     Critical-path list scheduling: highest level first,
                least-loaded worker, partition-agnostic.
``work-steal``  Per-worker queues seeded by a partition (or round
                robin); idle workers steal from the longest queue.
``locked``      μ_p (Section 5.2): every task runs on its partition's
                leaf, FIFO by critical path.
``random``      Seeded uniform worker choice — the sanity baseline.
``static``      Replays a fixed Definition 5.3 :class:`Schedule`
                verbatim (the simulator ⇄ static-model bridge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..errors import SimulationError
from ..scheduling.list_scheduler import priority_from_csr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hierarchy.topology import HierarchyTopology
    from ..scheduling.schedule import Schedule
    from .network import NetworkModel
    from .plan import SimPlan

__all__ = ["Assignment", "SCHEDULERS", "SimContext", "Scheduler",
           "Update", "make_scheduler", "register_scheduler"]

Assignment = tuple[int, int]            # (task, worker)


@dataclass
class SimContext:
    """Everything a scheduler is allowed to know at start time."""

    plan: "SimPlan"
    topology: "HierarchyTopology"
    network: "NetworkModel"
    k: int
    slots: int
    est: np.ndarray                     # imode-filtered duration estimates
    imode: str
    rng: np.random.Generator            # seeded per run
    partition: np.ndarray | None = None
    schedule: "Schedule | None" = None

    def critical_path_rank(self, weighted: bool) -> np.ndarray:
        ptr, adj = self.plan.successor_csr()
        layers = self.plan.dag.asap_layers()
        if weighted:
            return priority_from_csr(ptr, adj, layers, weights=self.est)
        return priority_from_csr(ptr, adj, layers)


@dataclass
class Update:
    """One step of world news delivered to the scheduler."""

    time: float
    new_ready: list[int] = field(default_factory=list)
    finished: list[int] = field(default_factory=list)
    #: tasks assigned to each worker and not yet finished
    backlog: list[int] = field(default_factory=list)
    free_slots: list[int] = field(default_factory=list)


class Scheduler:
    """Base class; subclasses implement :meth:`update`."""

    NAME = "?"

    def start(self, ctx: SimContext) -> None:
        self.ctx = ctx

    def update(self, msg: Update) -> list[Assignment]:
        raise NotImplementedError


SCHEDULERS: dict[str, type[Scheduler]] = {}


def register_scheduler(name: str, cls: type[Scheduler]) -> type[Scheduler]:
    """Register a scheduler class under ``name``.

    Registered classes become analyze entrypoints: the determinism
    pass walks their methods for wall-clock / global-RNG sinks.
    """
    if name in SCHEDULERS:
        raise ValueError(f"duplicate scheduler {name!r}")
    cls.NAME = name
    SCHEDULERS[name] = cls
    return cls


def make_scheduler(name: str) -> Scheduler:
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise SimulationError(
            f"unknown scheduler {name!r}; known: "
            f"{', '.join(sorted(SCHEDULERS))}") from None
    return cls()


class HeftScheduler(Scheduler):
    """Earliest estimated finish time, ranked by weighted critical path.

    Keeps its own estimated machine state (per-worker free times, task
    finish estimates, task placements) and greedily maps each ready
    task, highest upward rank first, onto the worker minimising its
    estimated finish — including the estimated cost of fetching every
    input across the hierarchy.
    """

    def start(self, ctx: SimContext) -> None:
        super().start(ctx)
        self.rank = ctx.critical_path_rank(weighted=True)
        self.est_free = [0.0] * ctx.k
        self.est_finish: dict[int, float] = {}
        self.placed: dict[int, int] = {}
        self.pool: list[int] = []

    def update(self, msg: Update) -> list[Assignment]:
        ctx = self.ctx
        self.pool.extend(msg.new_ready)
        self.pool.sort(key=lambda v: (-float(self.rank[v]), v))
        out: list[Assignment] = []
        for v in self.pool:
            preds = ctx.plan.dag.predecessors(v)
            best: tuple[float, int] | None = None
            for w in range(ctx.k):
                arrival = msg.time
                for u in preds:
                    src = self.placed.get(u, w)
                    arrival = max(
                        arrival,
                        self.est_finish.get(u, msg.time)
                        + ctx.network.transfer_time(
                            src, w, float(ctx.plan.sizes[u])))
                fin = max(self.est_free[w], arrival) + float(ctx.est[v])
                if best is None or (fin, w) < best:
                    best = (fin, w)
            fin, w = best if best is not None else (msg.time, 0)
            self.est_free[w] = fin
            self.est_finish[v] = fin
            self.placed[v] = w
            out.append((v, w))
        self.pool = []
        return out


class CriticalPathScheduler(Scheduler):
    """List scheduling: highest critical-path level first, onto the
    least-backlogged worker (reusing the vectorised unit-weight
    priority kernel)."""

    def start(self, ctx: SimContext) -> None:
        super().start(ctx)
        self.prio = ctx.critical_path_rank(weighted=False)
        self.pool: list[int] = []

    def update(self, msg: Update) -> list[Assignment]:
        self.pool.extend(msg.new_ready)
        self.pool.sort(key=lambda v: (-int(self.prio[v]), v))
        backlog = list(msg.backlog)
        limit = self.ctx.slots
        out: list[Assignment] = []
        kept: list[int] = []
        for v in self.pool:
            w = min(range(self.ctx.k), key=lambda i: (backlog[i], i))
            if backlog[w] >= limit:
                kept.append(v)          # every worker full; hold the rest
                continue
            backlog[w] += 1
            out.append((v, w))
        self.pool = kept
        return out


class WorkStealingScheduler(Scheduler):
    """Partition-homed queues with deterministic stealing.

    Ready tasks enqueue at their home worker (the partition label when
    one is provided, round robin otherwise).  A worker whose backlog
    is below its slot count serves its own queue first and otherwise
    steals from the back of the longest queue (ties to the lowest
    worker id).
    """

    def start(self, ctx: SimContext) -> None:
        super().start(ctx)
        self.queues: list[list[int]] = [[] for _ in range(ctx.k)]

    def _home(self, v: int) -> int:
        part = self.ctx.partition
        return int(part[v]) if part is not None else v % self.ctx.k

    def update(self, msg: Update) -> list[Assignment]:
        for v in msg.new_ready:
            self.queues[self._home(v)].append(v)
        backlog = list(msg.backlog)
        limit = self.ctx.slots
        out: list[Assignment] = []
        progress = True
        while progress:
            progress = False
            for w in range(self.ctx.k):
                if backlog[w] >= limit:
                    continue
                if self.queues[w]:
                    v = self.queues[w].pop(0)
                elif any(self.queues):
                    victim = max(range(self.ctx.k),
                                 key=lambda i: (len(self.queues[i]), -i))
                    if not self.queues[victim]:
                        continue
                    v = self.queues[victim].pop()
                else:
                    continue
                backlog[w] += 1
                out.append((v, w))
                progress = True
        return out


class RandomScheduler(Scheduler):
    """Uniform seeded worker choice the moment a task becomes ready."""

    def update(self, msg: Update) -> list[Assignment]:
        k = self.ctx.k
        return [(v, int(self.ctx.rng.integers(k))) for v in msg.new_ready]


class PartitionLockedScheduler(Scheduler):
    """μ_p: each task may only run on its partition's leaf worker."""

    def start(self, ctx: SimContext) -> None:
        super().start(ctx)
        if ctx.partition is None:
            raise SimulationError(
                "the 'locked' scheduler requires a partition")

    def update(self, msg: Update) -> list[Assignment]:
        part = self.ctx.partition
        assert part is not None
        return [(v, int(part[v])) for v in msg.new_ready]


class StaticScheduler(Scheduler):
    """Replays a fixed :class:`Schedule`: task ``v`` is released to
    processor ``procs[v]`` exactly at simulated time ``times[v] - 1``
    (static slot ``t`` occupies ``[t-1, t)`` under unit durations)."""

    def start(self, ctx: SimContext) -> None:
        super().start(ctx)
        if ctx.schedule is None:
            raise SimulationError(
                "the 'static' scheduler requires a schedule to replay")
        self.pool: list[int] = []

    def update(self, msg: Update) -> list[Assignment]:
        sched = self.ctx.schedule
        assert sched is not None
        self.pool.extend(msg.new_ready)
        due = [v for v in self.pool
               if msg.time >= float(sched.times[v] - 1)]
        self.pool = [v for v in self.pool
                     if msg.time < float(sched.times[v] - 1)]
        due.sort(key=lambda v: (int(sched.times[v]), v))
        return [(v, int(sched.procs[v])) for v in due]


register_scheduler("heft", HeftScheduler)
register_scheduler("cp-list", CriticalPathScheduler)
register_scheduler("work-steal", WorkStealingScheduler)
register_scheduler("random", RandomScheduler)
register_scheduler("locked", PartitionLockedScheduler)
register_scheduler("static", StaticScheduler)
