"""Deterministic discrete-event queue.

Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
increasing insertion counter: two events at the same simulated instant
fire in the order they were scheduled.  Because every insertion in the
simulator is itself a deterministic function of the run inputs, the
full event order — and therefore the trace — is byte-reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "EventQueue", "TASK_FINISHED", "TRANSFER_FINISHED"]

TASK_FINISHED = "task-finished"
TRANSFER_FINISHED = "transfer-finished"


@dataclass(order=True)
class Event:
    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A heap of :class:`Event` with a stable insertion tiebreak."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        ev = Event(time=float(time), seq=self._seq, kind=kind,
                   payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
