"""The two-step (hierarchy-agnostic) method (Section 7.2).

Step (i): find a good *standard* k-way partitioning, ignoring the
hierarchy.  Step (ii): assign the k parts to the k leaf positions
optimally.  Lemma 7.3 bounds its cost by ``g_1 ×`` the hierarchical
optimum; Theorem 7.4 shows the bound is nearly tight.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.cost import Metric
from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..errors import ProblemTooLargeError
from .assignment import apply_assignment, contract_partition, optimal_assignment
from .cost import hierarchical_cost
from .topology import HierarchyTopology

__all__ = ["two_step_from_partition", "two_step_partition",
           "exact_hierarchical_partition"]


def two_step_from_partition(
    graph: Hypergraph,
    partition: Partition,
    topology: HierarchyTopology,
    max_assignments: int = 500_000,
) -> tuple[Partition, float]:
    """Step (ii) only: optimally place an existing partition's parts on
    the hierarchy leaves.  Returns the leaf-aligned partition and its
    hierarchical cost on ``graph``."""
    contracted = contract_partition(graph, partition)
    assignment, _ = optimal_assignment(contracted, topology, max_assignments)
    placed = apply_assignment(partition, assignment)
    return placed, hierarchical_cost(graph, placed, topology)


def two_step_partition(
    graph: Hypergraph,
    topology: HierarchyTopology,
    eps: float = 0.0,
    metric: Metric = Metric.CONNECTIVITY,
    partition_fn: Callable[[Hypergraph, int], Partition] | None = None,
    rng: int | np.random.Generator | None = None,
    max_assignments: int = 500_000,
) -> tuple[Partition, float]:
    """Full two-step method.

    ``partition_fn(graph, k)`` supplies step (i); defaults to the
    multilevel heuristic.  Pass an exact partitioner to study the
    paper's idealised setting where *both* steps are optimal
    (Theorem 7.4's analysis).
    """
    k = topology.k
    if partition_fn is None:
        from ..partitioners.multilevel import multilevel_partition

        def partition_fn(g: Hypergraph, kk: int) -> Partition:
            return multilevel_partition(g, kk, eps=eps, metric=metric, rng=rng)

    flat = partition_fn(graph, k)
    return two_step_from_partition(graph, flat, topology, max_assignments)


def exact_hierarchical_partition(
    graph: Hypergraph,
    topology: HierarchyTopology,
    eps: float = 0.0,
    relaxed: bool = False,
    max_nodes: int = 12,
) -> tuple[Partition, float]:
    """Certified-optimal *hierarchical* partitioning by enumeration.

    Enumerates all ε-balanced leaf assignments of the nodes (with
    first-node symmetry pinned inside the first subtree) and minimises
    Definition 7.1 cost.  Exponential — tiny instances only.
    """
    from ..core.balance import balance_threshold

    n = graph.n
    if n > max_nodes:
        raise ProblemTooLargeError(
            f"exact_hierarchical_partition guards at {max_nodes} nodes")
    k = topology.k
    cap = balance_threshold(n, k, eps, relaxed=relaxed)
    best_cost = np.inf
    best: np.ndarray | None = None
    labels = np.zeros(n, dtype=np.int64)
    sizes = np.zeros(k, dtype=np.int64)

    def rec(v: int) -> None:
        nonlocal best_cost, best
        if v == n:
            c = hierarchical_cost(graph, labels, topology)
            if c < best_cost:
                best_cost = c
                best = labels.copy()
            return
        for p in range(k):
            if sizes[p] >= cap:
                continue
            labels[v] = p
            sizes[p] += 1
            rec(v + 1)
            sizes[p] -= 1

    rec(0)
    if best is None:
        raise ProblemTooLargeError("no balanced assignment exists")
    return Partition(best, k), float(best_cost)
