"""Hierarchy-aware FM refinement: local search on Definition 7.1 itself.

Section 7's message is that hierarchy-agnostic partitioning can lose a
factor ≈ g₁ (Theorem 7.4).  The constructive counterpart is a refiner
whose move gains are measured in *hierarchical* cost: starting from any
placement (e.g. the two-step output) it walks out of the Figure 9 trap,
because regrouping the B_i blocks onto sibling leaves has a large
negative hierarchical gain even though the flat gain is zero.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Sequence

import numpy as np

from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..core.tolerance import GAIN_ATOL, geq, gt, leq, lt
from ..partitioners.base import weight_caps
from .topology import HierarchyTopology

__all__ = ["hierarchical_fm_refine", "direct_hierarchical_partition"]


class _HierState:
    """Incremental hierarchical cost of single-node moves.

    Per hyperedge we keep pin counts per leaf; an edge's cost is
    recomputed from those counts (O(|parts touched| · d)), which keeps
    move deltas exact without a per-level counting structure.
    """

    def __init__(self, graph: Hypergraph, labels: np.ndarray,
                 topology: HierarchyTopology) -> None:
        self.g = graph
        self.topo = topology
        self.labels = labels
        k = topology.k
        self.anc = topology.ancestors_matrix()
        self.pin_counts = np.zeros((graph.num_edges, k), dtype=np.int64)
        for j, e in enumerate(graph.edges):
            for v in e:
                self.pin_counts[j, labels[v]] += 1
        self.part_weight = np.zeros(k, dtype=np.float64)
        np.add.at(self.part_weight, labels, graph.node_weights)

    def edge_cost(self, j: int) -> float:
        leaves = np.flatnonzero(self.pin_counts[j])
        if leaves.size <= 1:
            return 0.0
        total = 0.0
        prev = 1
        for level in range(1, self.topo.depth + 1):
            lam = len(set(self.anc[level][leaves].tolist()))
            total += self.topo.g[level - 1] * (lam - prev)
            prev = lam
        return float(self.g.edge_weights[j]) * total

    def move_delta(self, v: int, b: int) -> float:
        a = int(self.labels[v])
        if a == b:
            return 0.0
        delta = 0.0
        for j in self.g.incident_edges(v):
            j = int(j)
            before = self.edge_cost(j)
            self.pin_counts[j, a] -= 1
            self.pin_counts[j, b] += 1
            delta += self.edge_cost(j) - before
            self.pin_counts[j, a] += 1
            self.pin_counts[j, b] -= 1
        return delta

    def apply(self, v: int, b: int) -> None:
        a = int(self.labels[v])
        for j in self.g.incident_edges(v):
            j = int(j)
            self.pin_counts[j, a] -= 1
            self.pin_counts[j, b] += 1
        w = self.g.node_weights[v]
        self.part_weight[a] -= w
        self.part_weight[b] += w
        self.labels[v] = b

    def best_move(self, v: int, caps: np.ndarray) -> tuple[float, int] | None:
        a = int(self.labels[v])
        w = self.g.node_weights[v]
        best: tuple[float, int] | None = None
        for b in range(self.topo.k):
            if b == a or gt(self.part_weight[b] + w, caps[b]):
                continue
            d = self.move_delta(v, b)
            if best is None or d < best[0]:
                best = (d, b)
        return best


def hierarchical_fm_refine(
    graph: Hypergraph,
    partition: Partition | Sequence[int] | np.ndarray,
    topology: HierarchyTopology,
    eps: float = 0.0,
    caps: np.ndarray | None = None,
    max_passes: int = 6,
    relaxed: bool = True,
    max_swap_nodes: int = 300,
) -> Partition:
    """FM-style refinement whose gain function is Definition 7.1.

    Same pass structure as :func:`repro.partitioners.fm_refine`
    (best-gain moves with one-node slack, best-feasible-prefix
    rollback), but leaves are *not* interchangeable: the heap considers
    all ``k`` leaf targets per node under the hierarchical cost.  A
    pairwise-swap sweep finishes the job at tight balance, where single
    moves cannot pass between feasible states.
    """
    k = topology.k
    if isinstance(partition, Partition):
        if partition.k != k:
            raise ValueError("partition k must equal topology k")
        labels = partition.labels.copy()
    else:
        labels = np.asarray(partition, dtype=np.int64).copy()
    if caps is None:
        caps = weight_caps(graph, k, eps, relaxed=relaxed)
    # An infeasible start would poison the best-prefix rule (any
    # improving prefix would be acceptable); repair it first.
    from ..partitioners.base import rebalance

    labels = rebalance(graph, labels, caps)
    state = _HierState(graph, labels, topology)
    slack = float(graph.node_weights.max(initial=0.0))
    pass_caps = caps + slack

    def feasible() -> bool:
        return bool(np.all(leq(state.part_weight, caps)))

    start_feasible = feasible()
    tick = count()

    def neighbours(v: int) -> set[int]:
        out: set[int] = set()
        for j in graph.incident_edges(v):
            out.update(graph.edges[int(j)])
        out.discard(v)
        return out

    for _ in range(max_passes):
        locked = np.zeros(graph.n, dtype=bool)
        heap: list[tuple[float, int, int]] = []
        for v in range(graph.n):
            mv = state.best_move(v, pass_caps)
            if mv is not None:
                heapq.heappush(heap, (mv[0], next(tick), v))
        moves: list[tuple[int, int]] = []
        cum = 0.0
        best_cum = 0.0
        best_len = 0
        while heap:
            d, _, v = heapq.heappop(heap)
            if locked[v]:
                continue
            mv = state.best_move(v, pass_caps)
            if mv is None:
                continue
            if gt(mv[0], d, atol=GAIN_ATOL):
                heapq.heappush(heap, (mv[0], next(tick), v))
                continue
            d, b = mv
            moves.append((v, int(state.labels[v])))
            state.apply(v, b)
            locked[v] = True
            cum += d
            if ((feasible() or not start_feasible)
                    and lt(cum, best_cum, atol=GAIN_ATOL)):
                best_cum = cum
                best_len = len(moves)
            for u in neighbours(v):
                if not locked[u]:
                    umv = state.best_move(u, pass_caps)
                    if umv is not None:
                        heapq.heappush(heap, (umv[0], next(tick), u))
        for v, prev in reversed(moves[best_len:]):
            state.apply(v, prev)
        if geq(best_cum, 0.0, atol=GAIN_ATOL):
            break
    # Swap phase: at tight balance (ε ≈ 0) single moves pass through
    # infeasible states and can stall on ties; pairwise exchanges keep
    # part weights intact and break them.  O(n²·deg) — guarded by size.
    if graph.n <= max_swap_nodes:
        improved = True
        sweeps = 0
        while improved and sweeps < max_passes:
            improved = False
            sweeps += 1
            for v in range(graph.n):
                for u in range(v + 1, graph.n):
                    lv, lu = int(state.labels[v]), int(state.labels[u])
                    if lv == lu:
                        continue
                    wv, wu = graph.node_weights[v], graph.node_weights[u]
                    if (gt(state.part_weight[lu] - wu + wv, caps[lu]) or
                            gt(state.part_weight[lv] - wv + wu, caps[lv])):
                        continue
                    d1 = state.move_delta(v, lu)
                    state.apply(v, lu)
                    d2 = state.move_delta(u, lv)
                    if lt(d1 + d2, 0.0, atol=GAIN_ATOL):
                        state.apply(u, lv)
                        improved = True
                    else:
                        state.apply(v, lv)  # revert
    return Partition(state.labels, k)


def direct_hierarchical_partition(
    graph: Hypergraph,
    topology: HierarchyTopology,
    eps: float = 0.0,
    rng: int | np.random.Generator | None = None,
    relaxed: bool = True,
) -> tuple[Partition, float]:
    """Hierarchy-*aware* partitioning: recursive top-down construction
    followed by hierarchical-gain FM.  Returns ``(partition, cost)``.

    The direct answer to Section 7: unlike the two-step method, its
    local search sees the g_i structure and cannot be led into the
    Theorem 7.4 trap by a flat-cost tie.
    """
    from .cost import hierarchical_cost
    from .recursive import recursive_hierarchical_partition

    start = recursive_hierarchical_partition(graph, topology, eps=eps,
                                             rng=rng, relaxed=relaxed)
    refined = hierarchical_fm_refine(graph, start, topology, eps=eps,
                                     relaxed=relaxed)
    return refined, hierarchical_cost(graph, refined, topology)
