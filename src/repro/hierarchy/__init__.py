"""Hierarchical (NUMA-aware) partitioning (paper Section 7, App. G–I)."""

from .assignment import (
    apply_assignment,
    brute_force_assignment,
    canonical_assignments,
    contract_partition,
    matching_assignment,
    optimal_assignment,
)
from .cost import (
    hierarchical_cost,
    hierarchical_lambdas,
    steiner_hyperedge_cost,
    steiner_tree_cost,
)
from .recursive import recursive_hierarchical_partition
from .refine import direct_hierarchical_partition, hierarchical_fm_refine
from .topology import HierarchyTopology
from .two_step import (
    exact_hierarchical_partition,
    two_step_from_partition,
    two_step_partition,
)

__all__ = [
    "HierarchyTopology",
    "apply_assignment",
    "brute_force_assignment",
    "canonical_assignments",
    "contract_partition",
    "direct_hierarchical_partition",
    "exact_hierarchical_partition",
    "hierarchical_cost",
    "hierarchical_fm_refine",
    "hierarchical_lambdas",
    "matching_assignment",
    "optimal_assignment",
    "recursive_hierarchical_partition",
    "steiner_hyperedge_cost",
    "steiner_tree_cost",
    "two_step_from_partition",
    "two_step_partition",
]
