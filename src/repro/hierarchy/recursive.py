"""Recursive hierarchical partitioning (Section 7.1).

Split the hypergraph into ``b_1`` parts, each of those into ``b_2``,
and so on down the tree — the "intuitive" method whose worst case
Lemma 7.2 (Figure 8) pins at a Θ(n) factor from optimal even when each
individual step is optimal.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.balance import balance_threshold
from ..core.cost import Metric
from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..partitioners.fm import fm_refine
from ..partitioners.greedy import greedy_sequential_partition
from ..partitioners.recursive import restrict_to_nodes
from .topology import HierarchyTopology

__all__ = ["recursive_hierarchical_partition"]

#: Splits a sub-hypergraph into ``parts`` groups under per-group weight
#: ``cap``; returns a label vector in [0, parts).
LevelSplitFn = Callable[[Hypergraph, int, float, np.random.Generator], np.ndarray]


def _default_level_split(sub: Hypergraph, parts: int, cap: float,
                         rng: np.random.Generator) -> np.ndarray:
    start = greedy_sequential_partition(sub, parts, eps=0.0, rng=rng,
                                        relaxed=True)
    caps = np.full(parts, cap)
    refined = fm_refine(sub, start, caps=caps, metric=Metric.CONNECTIVITY)
    return refined.labels


def recursive_hierarchical_partition(
    graph: Hypergraph,
    topology: HierarchyTopology,
    eps: float = 0.0,
    rng: int | np.random.Generator | None = None,
    split_fn: LevelSplitFn | None = None,
    relaxed: bool = False,
) -> Partition:
    """Partition level by level down the hierarchy tree.

    At level ``i`` each current group is split into ``b_i`` subgroups,
    each allowed the weight of its whole subtree (subtree-leaf count ×
    the per-leaf ε-cap).  Leaves inherit the recursion order, so the
    output partition is already hierarchy-aligned: part ``x`` *is* leaf
    ``x``.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if split_fn is None:
        split_fn = _default_level_split
    k = topology.k
    if float(graph.total_node_weight).is_integer():
        leaf_cap = float(balance_threshold(int(graph.total_node_weight), k,
                                           eps, relaxed=relaxed))
    else:
        leaf_cap = (1 + eps) * graph.total_node_weight / k
    labels = np.zeros(graph.n, dtype=np.int64)

    def rec(node_ids: list[int], level: int, leaf_offset: int) -> None:
        if level == topology.depth:
            for v in node_ids:
                labels[v] = leaf_offset
            return
        b = topology.b[level]
        subtree = topology.subtree_leaves(level + 1)
        cap = subtree * leaf_cap
        if node_ids:
            sub = restrict_to_nodes(graph, node_ids)
            side = split_fn(sub, b, cap, gen)
        else:
            side = np.zeros(0, dtype=np.int64)
        for child in range(b):
            ids = [node_ids[i] for i in range(len(node_ids))
                   if side[i] == child]
            rec(ids, level + 1, leaf_offset + child * subtree)

    rec(list(range(graph.n)), 0, 0)
    return Partition(labels, k)
