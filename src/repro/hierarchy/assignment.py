"""The hierarchy assignment problem (Section 7.3, Appendix H).

Given an already fixed k-way partitioning, assign the k parts to the k
leaf positions of the hierarchy to minimise hierarchical cost.  The
contracted instance is a multi-hypergraph on k nodes (Appendix H.1).

* :func:`contract_partition` builds that instance;
* :func:`brute_force_assignment` enumerates the ``f(k)`` non-equivalent
  assignments (Appendix H.1) — exact for small k;
* :func:`matching_assignment` is the polynomial algorithm of Lemma H.1
  for ``d = 2, b_2 = 2`` via maximum-weight perfect matching;
* :func:`optimal_assignment` dispatches.

For ``b_2 = 3`` the problem is NP-hard (Lemma H.2, via 3-dimensional
matching — see :mod:`repro.reductions.hierarchy_hard`), so brute force
is the only exact option there.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Sequence

import networkx as nx
import numpy as np

from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..core.tolerance import GAIN_ATOL, lt
from ..errors import ProblemTooLargeError
from .cost import hierarchical_cost
from .topology import HierarchyTopology

__all__ = [
    "contract_partition",
    "canonical_assignments",
    "brute_force_assignment",
    "matching_assignment",
    "optimal_assignment",
    "apply_assignment",
]


def contract_partition(graph: Hypergraph, partition: Partition) -> Hypergraph:
    """Contract each part to a single node (Appendix H.1).

    Uncut hyperedges collapse to singletons and are dropped; duplicates
    are kept, so the result is a multi-hypergraph on ``k`` nodes.
    """
    return graph.contract(partition.labels, num_groups=partition.k)


def canonical_assignments(topology: HierarchyTopology,
                          max_assignments: int = 500_000,
                          ) -> Iterator[tuple[int, ...]]:
    """Yield the ``f(k)`` non-equivalent leaf assignments.

    An assignment maps leaf position → part id.  Two assignments related
    by permuting sibling subtrees are equivalent; we break the symmetry
    by requiring each internal node's child subtrees to be ordered by
    their minimal contained part id.
    """
    count = topology.num_assignments()
    if count > max_assignments:
        raise ProblemTooLargeError(
            f"f(k) = {count} assignments exceed limit {max_assignments}")

    def rec(parts: tuple[int, ...], level: int) -> Iterator[tuple[int, ...]]:
        if level == topology.depth:
            assert len(parts) == 1
            yield parts
            return
        b = topology.b[level]
        group_size = len(parts) // b

        def split(remaining: tuple[int, ...]) -> Iterator[tuple[tuple[int, ...], ...]]:
            if not remaining:
                yield ()
                return
            # Canonical: the first group contains the smallest remaining id.
            head = remaining[0]
            rest = remaining[1:]
            for others in combinations(rest, group_size - 1):
                group = (head, *others)
                left = tuple(x for x in rest if x not in others)
                for tail in split(left):
                    yield (group, *tail)

        for groups in split(parts):
            subs = [list(rec(g, level + 1)) for g in groups]

            def cross(i: int) -> Iterator[tuple[int, ...]]:
                if i == len(subs):
                    yield ()
                    return
                for choice in subs[i]:
                    for tail in cross(i + 1):
                        yield choice + tail

            yield from cross(0)

    yield from rec(tuple(range(topology.k)), 0)


def apply_assignment(partition: Partition,
                     leaf_to_part: Sequence[int]) -> Partition:
    """Relabel a partition so part ``leaf_to_part[x]`` lands on leaf ``x``."""
    leaf_of_part = np.empty(partition.k, dtype=np.int64)
    for leaf, part in enumerate(leaf_to_part):
        leaf_of_part[part] = leaf
    return Partition(leaf_of_part[partition.labels], partition.k)


def brute_force_assignment(
    contracted: Hypergraph,
    topology: HierarchyTopology,
    max_assignments: int = 500_000,
) -> tuple[tuple[int, ...], float]:
    """Exact hierarchy assignment by enumerating canonical assignments.

    Returns ``(leaf_to_part, cost)`` where ``leaf_to_part[x]`` is the
    part placed on leaf ``x`` and ``cost`` is the hierarchical cost of
    the contracted hypergraph.
    """
    if contracted.n != topology.k:
        raise ValueError("contracted instance size must equal topology k")
    best: tuple[int, ...] | None = None
    best_cost = np.inf
    for assignment in canonical_assignments(topology, max_assignments):
        part_to_leaf = np.empty(topology.k, dtype=np.int64)
        for leaf, part in enumerate(assignment):
            part_to_leaf[part] = leaf
        c = hierarchical_cost(contracted, part_to_leaf, topology)
        if lt(c, best_cost, atol=GAIN_ATOL):
            best_cost = c
            best = assignment
    assert best is not None
    return best, float(best_cost)


def matching_assignment(
    contracted: Hypergraph,
    topology: HierarchyTopology,
) -> tuple[tuple[int, ...], float]:
    """Lemma H.1: polynomial optimal assignment for ``d = 2, b_2 = 2``.

    Pairing parts ``u, v`` on bottom-level siblings saves
    ``w_{(u,v)} = Σ_{e ⊇ {u,v}} w_e`` versus fully scattering, so a
    maximum-weight perfect matching on the k parts is optimal (Edmonds).
    """
    if topology.depth != 2 or topology.b[1] != 2:
        raise ValueError("matching_assignment requires d = 2 and b_2 = 2")
    k = topology.k
    if contracted.n != k:
        raise ValueError("contracted instance size must equal topology k")
    weights: dict[tuple[int, int], float] = {}
    for j, e in enumerate(contracted.edges):
        for u, v in combinations(e, 2):
            weights[(u, v)] = weights.get((u, v), 0.0) + float(
                contracted.edge_weights[j])
    G = nx.Graph()
    G.add_nodes_from(range(k))
    for (u, v), w in weights.items():
        G.add_edge(u, v, weight=w)
    # Complete the graph with zero-weight edges so a perfect matching
    # always exists.
    for u, v in combinations(range(k), 2):
        if not G.has_edge(u, v):
            G.add_edge(u, v, weight=0.0)
    matching = nx.max_weight_matching(G, maxcardinality=True)
    leaf_to_part: list[int] = []
    for u, v in sorted((min(p), max(p)) for p in matching):
        leaf_to_part.extend((u, v))
    assignment = tuple(leaf_to_part)
    part_to_leaf = np.empty(k, dtype=np.int64)
    for leaf, part in enumerate(assignment):
        part_to_leaf[part] = leaf
    return assignment, hierarchical_cost(contracted, part_to_leaf, topology)


def optimal_assignment(
    contracted: Hypergraph,
    topology: HierarchyTopology,
    max_assignments: int = 500_000,
) -> tuple[tuple[int, ...], float]:
    """Best available exact method: Lemma H.1 matching when applicable,
    otherwise canonical brute force."""
    if topology.depth == 2 and topology.b[1] == 2:
        return matching_assignment(contracted, topology)
    return brute_force_assignment(contracted, topology, max_assignments)
