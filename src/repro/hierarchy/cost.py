"""Hierarchical and topology-aware cost functions (Def. 7.1, App. I.2).

For a hyperedge ``e`` let ``λ_e^{(i)}`` be the number of level-``i``
parts it intersects (``λ_e^{(0)} = 1``).  Its hierarchical cost is
``Σ_i g_i · (λ_e^{(i)} − λ_e^{(i−1)})``; the partition cost is the sum
over hyperedges (weighted).

For an arbitrary processor topology (a metric on the k units), the
analogous cost of a hyperedge is the weight of a minimum Steiner tree
spanning the processors it touches (Appendix I.2); we provide both the
exact Dreyfus–Wagner computation and the 2-approximate metric-closure
MST.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import numpy as np
import scipy.sparse.csgraph as csgraph

from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..errors import ProblemTooLargeError
from .topology import HierarchyTopology

__all__ = [
    "hierarchical_lambdas",
    "hierarchical_cost",
    "steiner_tree_cost",
    "steiner_hyperedge_cost",
]


def _leaf_labels(partition: Partition | Sequence[int] | np.ndarray,
                 k: int) -> np.ndarray:
    if isinstance(partition, Partition):
        if partition.k != k:
            raise ValueError(f"partition has k={partition.k}, topology k={k}")
        return partition.labels
    return np.asarray(partition, dtype=np.int64)


def hierarchical_lambdas(
    graph: Hypergraph,
    partition: Partition | Sequence[int] | np.ndarray,
    topology: HierarchyTopology,
) -> np.ndarray:
    """Matrix of λ_e^{(i)}: shape ``(d+1, m)``; row 0 is all ones.

    ``partition`` assigns nodes directly to *leaves* ``0..k-1`` of the
    topology (canonical order).
    """
    k = topology.k
    labels = _leaf_labels(partition, k)
    anc = topology.ancestors_matrix()  # (d+1, k)
    m = graph.num_edges
    out = np.ones((topology.depth + 1, m), dtype=np.int64)
    ptr, pins = graph.csr()
    if m == 0:
        return out
    pin_leaf = labels[pins]
    edge_ids = np.repeat(np.arange(m, dtype=np.int64), np.diff(ptr))
    for level in range(1, topology.depth + 1):
        width = int(anc[level].max()) + 1
        codes = edge_ids * width + anc[level][pin_leaf]
        uniq = np.unique(codes)
        lam = np.zeros(m, dtype=np.int64)
        np.add.at(lam, uniq // width, 1)
        out[level] = lam
    # Empty hyperedges have no pins: force λ^{(i)} = 1 so the cost is 0.
    sizes = np.diff(ptr)
    out[:, sizes == 0] = 1
    return out


def _reference_hierarchical_lambdas(
    graph: Hypergraph,
    partition: Partition | Sequence[int] | np.ndarray,
    topology: HierarchyTopology,
) -> np.ndarray:
    """Pure-Python oracle twin of :func:`hierarchical_lambdas`.

    λ_e^{(i)} is, by Definition 7.1, the number of distinct level-``i``
    ancestors among the leaves a hyperedge's pins land on — computed
    here with literal set-building per edge, one level at a time.
    """
    k = topology.k
    labels = _leaf_labels(partition, k)
    anc = topology.ancestors_matrix()
    out = np.ones((topology.depth + 1, graph.num_edges), dtype=np.int64)
    for j, edge in enumerate(graph.edges):
        if len(edge) == 0:
            continue
        for level in range(1, topology.depth + 1):
            groups = {int(anc[level][labels[v]]) for v in edge}
            out[level, j] = len(groups)
    return out


def hierarchical_cost(
    graph: Hypergraph,
    partition: Partition | Sequence[int] | np.ndarray,
    topology: HierarchyTopology,
) -> float:
    """Total hierarchical cost (Definition 7.1), edge-weighted.

    For the depth-1 topology this reduces to ``g_1 ×`` the connectivity
    metric — the paper's "standard partitioning as a special case".
    """
    lam = hierarchical_lambdas(graph, partition, topology)
    g = np.asarray(topology.g, dtype=np.float64)
    per_edge = (g[:, None] * np.diff(lam, axis=0)).sum(axis=0)
    return float((graph.edge_weights * per_edge).sum())


# ---------------------------------------------------------------------------
# Arbitrary processor topologies (Appendix I.2)
# ---------------------------------------------------------------------------

def steiner_tree_cost(
    dist: np.ndarray,
    terminals: Sequence[int],
    exact: bool = True,
    max_terminals: int = 12,
) -> float:
    """Minimum Steiner tree weight in a metric given by ``dist``.

    ``dist`` is a symmetric (k × k) metric-closure distance matrix.
    ``exact=True`` runs Dreyfus–Wagner (O(3^t·k + 2^t·k²)); guarded at
    ``max_terminals``.  ``exact=False`` returns the metric-closure MST,
    a 2-approximation.
    """
    terms = sorted(set(int(v) for v in terminals))
    t = len(terms)
    if t <= 1:
        return 0.0
    k = dist.shape[0]
    if t == 2:
        return float(dist[terms[0], terms[1]])
    if not exact or t > max_terminals:
        if exact and t > max_terminals:
            raise ProblemTooLargeError(
                f"{t} terminals exceed exact Steiner guard {max_terminals}")
        # MST over the terminal metric closure.
        sub = dist[np.ix_(terms, terms)]
        mst = csgraph.minimum_spanning_tree(sub)
        return float(mst.sum())
    # Dreyfus–Wagner over terminal subsets.
    idx = {v: i for i, v in enumerate(terms)}
    full = (1 << t) - 1
    INF = np.inf
    # dp[mask][v]: min tree connecting terminal set `mask` and node v.
    dp = np.full((full + 1, k), INF)
    for v in terms:
        dp[1 << idx[v], :] = dist[v, :]
    for mask in range(1, full + 1):
        if mask & (mask - 1) == 0:
            continue
        # combine sub-masks
        sub = (mask - 1) & mask
        while sub:
            if sub < (mask ^ sub):  # each unordered pair once
                cand = dp[sub] + dp[mask ^ sub]
                np.minimum(dp[mask], cand, out=dp[mask])
            sub = (sub - 1) & mask
        # re-root through the metric
        dp[mask] = np.min(dp[mask][None, :] + dist, axis=1)
    root = terms[0]
    return float(dp[full ^ (1 << idx[root]), root])


def steiner_hyperedge_cost(
    graph: Hypergraph,
    partition: Partition | Sequence[int] | np.ndarray,
    dist: np.ndarray,
    exact: bool = True,
) -> float:
    """Appendix I.2 cost: per hyperedge, the min Steiner tree spanning
    the processors it touches, under an arbitrary metric ``dist``."""
    k = dist.shape[0]
    labels = _leaf_labels(partition, k)
    total = 0.0
    for j, e in enumerate(graph.edges):
        procs = {int(labels[v]) for v in e}
        total += graph.edge_weights[j] * steiner_tree_cost(dist, procs,
                                                           exact=exact)
    return float(total)
