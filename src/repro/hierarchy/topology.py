"""Hierarchical processor topologies (paper Section 7, Definition 7.1).

A machine is a rooted tree of depth ``d`` with fixed per-level branching
factors ``b_1, ..., b_d`` (so ``k = Π b_i`` compute units at the leaves)
and monotonically decreasing transfer costs ``g_1 ≥ g_2 ≥ ... ≥ g_d``:
moving a value between two leaves whose lowest common ancestor sits on
level ``i`` costs ``g_i``.  By the paper's normalisation ``g_d = 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import reduce

import numpy as np

__all__ = ["HierarchyTopology"]


@dataclass(frozen=True)
class HierarchyTopology:
    """A depth-``d`` tree topology with branching ``b`` and costs ``g``.

    ``b[i]`` / ``g[i]`` are the paper's ``b_{i+1}`` / ``g_{i+1}``
    (0-indexed).  Leaves are numbered ``0..k-1`` in canonical tree order:
    the level-``i`` ancestor of leaf ``x`` is ``x // Π_{j>i} b_j``.
    """

    b: tuple[int, ...]
    g: tuple[float, ...]

    def __init__(self, b: tuple[int, ...] | list[int],
                 g: tuple[float, ...] | list[float]) -> None:
        bb = tuple(int(x) for x in b)
        gg = tuple(float(x) for x in g)
        if len(bb) != len(gg):
            raise ValueError("b and g must have equal length (one per level)")
        if not bb:
            raise ValueError("topology needs at least one level")
        if any(x < 1 for x in bb):
            raise ValueError("branching factors must be >= 1")
        if any(gg[i] < gg[i + 1] for i in range(len(gg) - 1)):
            raise ValueError("costs g must be monotonically decreasing")
        if any(x <= 0 for x in gg):
            raise ValueError("costs g must be positive")
        object.__setattr__(self, "b", bb)
        object.__setattr__(self, "g", gg)

    @staticmethod
    def flat(k: int) -> "HierarchyTopology":
        """Depth-1 topology: the standard partitioning problem
        (Section 7: "the standard partitioning problem is obtained as a
        special case ... when our hierarchy has depth d = 1")."""
        return HierarchyTopology((k,), (1.0,))

    @staticmethod
    def uniform_binary(depth: int, g1: float = 4.0) -> "HierarchyTopology":
        """Binary tree of the given depth with geometrically decreasing
        costs ending at 1."""
        if depth < 1:
            raise ValueError("depth must be >= 1")
        ratio = g1 ** (1.0 / max(depth - 1, 1)) if depth > 1 else 1.0
        g = tuple(g1 / ratio**i for i in range(depth))
        g = g[:-1] + (1.0,) if depth > 1 else (g1,)
        return HierarchyTopology((2,) * depth, g)

    @property
    def depth(self) -> int:
        return len(self.b)

    @property
    def k(self) -> int:
        """Total number of leaves ``Π b_i``."""
        return reduce(lambda a, x: a * x, self.b, 1)

    def subtree_leaves(self, level: int) -> int:
        """Leaves under one level-``level`` node (levels 1-based;
        ``level = 0`` is the root covering all k leaves)."""
        out = 1
        for i in range(level, self.depth):
            out *= self.b[i]
        return out

    def ancestor(self, leaf: int, level: int) -> int:
        """Id of the level-``level`` ancestor of a leaf (1-based level;
        level ``d`` returns the leaf itself, level 0 returns 0)."""
        return leaf // self.subtree_leaves(level)

    def ancestors_matrix(self) -> np.ndarray:
        """(d+1) × k matrix: row ``i`` is each leaf's level-i ancestor."""
        k = self.k
        out = np.empty((self.depth + 1, k), dtype=np.int64)
        leaves = np.arange(k)
        for level in range(self.depth + 1):
            out[level] = leaves // self.subtree_leaves(level)
        return out

    def lca_level(self, leaf_a: int, leaf_b: int) -> int:
        """Level of the lowest common ancestor of two leaves
        (``d`` if equal, i.e. "no transfer"; 1 = crossing the root)."""
        if leaf_a == leaf_b:
            return self.depth
        level = self.depth
        while self.ancestor(leaf_a, level) != self.ancestor(leaf_b, level):
            level -= 1
        return level + 1

    def transfer_cost(self, leaf_a: int, leaf_b: int) -> float:
        """g_{lca level}: cost of moving one value between two leaves."""
        if leaf_a == leaf_b:
            return 0.0
        return self.g[self.lca_level(leaf_a, leaf_b) - 1]

    def distance_matrix(self) -> np.ndarray:
        """k × k matrix of pairwise transfer costs ``g_{lca(a,b)}``.

        This is the processor metric of Appendix I.2; since it is an
        ultrametric, the minimum Steiner tree over any terminal set
        equals the Definition 7.1 hierarchical cost of a hyperedge
        touching those leaves — a cross-check the tests exploit.
        """
        k = self.k
        out = np.zeros((k, k), dtype=np.float64)
        for a in range(k):
            for b in range(a + 1, k):
                out[a, b] = out[b, a] = self.transfer_cost(a, b)
        return out

    def num_assignments(self) -> int:
        """f(k): non-equivalent hierarchy assignments (Appendix H.1):
        ``k! / Π_i (b_i!)^{Π_{j<i} b_j}``."""
        denom = 1
        prefix = 1
        for bi in self.b:
            denom *= math.factorial(bi) ** prefix
            prefix *= bi
        return math.factorial(self.k) // denom

    def __repr__(self) -> str:
        return f"HierarchyTopology(b={self.b}, g={self.g}, k={self.k})"
