"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
partition
    Partition an hMETIS ``.hgr`` file into k ε-balanced parts and report
    both cost metrics; optionally write the partition file.
evaluate
    Evaluate an existing partition file against a hypergraph (both
    metrics, balance check, per-part sizes, optional hierarchical cost).
recognize
    Decide whether an ``.hgr`` file is a hyperDAG (Lemma B.2) and print
    a generator certificate.
info
    Basic statistics of an ``.hgr`` file (n, m, ρ, Δ, components).
lab
    Experiment orchestration: ``lab list|run|status|report`` regenerate
    the EXPERIMENTS.md tables via :mod:`repro.lab` (process-parallel,
    cached, journaled).
analyze
    Static invariant checks over the codebase (seed discipline, silent
    excepts, kernel-oracle parity, runner signatures, float tolerance,
    error hierarchy, serve-timeout) via :mod:`repro.analyze`.
serve / submit / jobs
    Online partitioning service (:mod:`repro.serve`): ``serve`` runs the
    HTTP server (micro-batching, backpressure, shared result cache);
    ``submit`` sends one job; ``jobs`` lists/polls/cancels jobs.
mesh
    Sharded serving (:mod:`repro.mesh`): ``mesh up`` spawns N shard
    processes plus a consistent-hash router (hedged dispatch, stream
    relay, requeue-on-failure); ``mesh route`` is an offline ring
    lookup; ``mesh status`` scrapes a router.
sim
    Discrete-event scheduling simulation (:mod:`repro.sim`):
    ``sim run`` executes one hyperDAG plan on a Definition 7.1
    topology under a chosen scheduler/information mode; ``sim
    compare`` prints the scheduler x imode makespan matrix.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core import (
    Metric,
    connectivity_cost,
    cut_net_cost,
    is_balanced,
    recognize,
)
from .io import read_hgr, read_partition, write_partition

__all__ = ["main"]

_ALGORITHMS = ("multilevel", "recursive", "greedy", "spectral", "random",
               "exact")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Balanced hypergraph partitioning "
                    "(Papp–Anegg–Yzelman SPAA 2023 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition", help="partition an .hgr file")
    p.add_argument("hgr", help="input hypergraph (.hgr)")
    p.add_argument("-k", type=int, default=2, help="number of parts")
    p.add_argument("--eps", type=float, default=0.03,
                   help="balance slack ε (default 0.03)")
    p.add_argument("--algorithm", choices=_ALGORITHMS, default="multilevel")
    p.add_argument("--metric", choices=["connectivity", "cut-net"],
                   default="connectivity")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--repetitions", type=int, default=1,
                   help="independent multilevel V-cycles, best kept "
                        "(multilevel only)")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="worker processes for independent V-cycles / "
                        "initial candidates (multilevel only)")
    p.add_argument("-o", "--output", help="write partition file here")

    e = sub.add_parser("evaluate", help="evaluate a partition file")
    e.add_argument("hgr")
    e.add_argument("partition")
    e.add_argument("-k", type=int, default=None,
                   help="number of parts (default: max label + 1)")
    e.add_argument("--eps", type=float, default=0.03)

    r = sub.add_parser("recognize", help="hyperDAG recognition (Lemma B.2)")
    r.add_argument("hgr")

    i = sub.add_parser("info", help="hypergraph statistics")
    i.add_argument("hgr")

    g = sub.add_parser("generate",
                       help="generate a workload as an .hgr file")
    from .generators.factory import WORKLOAD_KINDS
    g.add_argument("kind", choices=list(WORKLOAD_KINDS))
    g.add_argument("output", help="output .hgr path")
    g.add_argument("-n", type=int, default=100,
                   help="size parameter (nodes / grid side / stages)")
    g.add_argument("-k", type=int, default=4,
                   help="planted parts (planted/blockdiag only)")
    g.add_argument("--density", type=float, default=0.05,
                   help="nonzero density (spmv-random)")
    g.add_argument("--seed", type=int, default=0)

    from .analyze.cli import add_analyze_parser
    from .lab.cli import add_lab_parser
    from .mesh.cli import add_mesh_parser
    from .serve.cli import add_serve_parser
    from .sim.cli import add_sim_parser
    add_lab_parser(sub)
    add_analyze_parser(sub)
    add_serve_parser(sub)
    add_mesh_parser(sub)
    add_sim_parser(sub)
    return parser


def _partition(args) -> int:
    graph = read_hgr(args.hgr)
    metric = (Metric.CONNECTIVITY if args.metric == "connectivity"
              else Metric.CUT_NET)
    if args.algorithm == "multilevel":
        from .partitioners import multilevel_partition
        part = multilevel_partition(graph, args.k, args.eps, metric,
                                    rng=args.seed,
                                    repetitions=args.repetitions,
                                    n_jobs=args.jobs)
    elif args.algorithm == "recursive":
        from .partitioners import recursive_partition
        part = recursive_partition(graph, args.k, args.eps, metric,
                                   rng=args.seed, relaxed=True)
    elif args.algorithm == "greedy":
        from .partitioners import greedy_sequential_partition
        part = greedy_sequential_partition(graph, args.k, args.eps, metric,
                                           rng=args.seed, relaxed=True)
    elif args.algorithm == "spectral":
        from .partitioners import spectral_partition
        part = spectral_partition(graph, args.k, args.eps, metric,
                                  rng=args.seed)
    elif args.algorithm == "random":
        from .partitioners import random_balanced_partition
        part = random_balanced_partition(graph, args.k, args.eps,
                                         rng=args.seed, relaxed=True)
    else:  # exact
        from .partitioners import exact_partition
        part = exact_partition(graph, args.k, args.eps, metric,
                               relaxed=True).partition
    conn = connectivity_cost(graph, part.labels, args.k)
    cut = cut_net_cost(graph, part.labels, args.k)
    print(f"algorithm     : {args.algorithm}")
    print(f"k / eps       : {args.k} / {args.eps}")
    print(f"connectivity  : {conn:g}")
    print(f"cut-net       : {cut:g}")
    print(f"part sizes    : {part.sizes().tolist()}")
    print(f"eps-balanced  : {is_balanced(part, args.eps, relaxed=True)}")
    if args.output:
        write_partition(part, args.output)
        print(f"wrote partition to {args.output}")
    return 0


def _evaluate(args) -> int:
    graph = read_hgr(args.hgr)
    part = read_partition(args.partition, k=args.k)
    if part.n != graph.n:
        print(f"error: partition has {part.n} labels for {graph.n} nodes",
              file=sys.stderr)
        return 2
    print(f"k             : {part.k}")
    print(f"connectivity  : {connectivity_cost(graph, part.labels, part.k):g}")
    print(f"cut-net       : {cut_net_cost(graph, part.labels, part.k):g}")
    print(f"part sizes    : {part.sizes().tolist()}")
    print(f"eps-balanced  : {is_balanced(part, args.eps, relaxed=True)} "
          f"(eps={args.eps})")
    return 0


def _recognize(args) -> int:
    graph = read_hgr(args.hgr)
    cert = recognize(graph)
    if cert is None:
        print("NOT a hyperDAG (Lemma B.1 condition fails)")
        return 1
    print("hyperDAG: yes")
    print(f"generators (hyperedge -> node): "
          f"{list(cert.generators)[:20]}"
          f"{' ...' if len(cert.generators) > 20 else ''}")
    return 0


def _info(args) -> int:
    graph = read_hgr(args.hgr)
    comps = graph.connected_components()
    print(f"nodes n       : {graph.n}")
    print(f"hyperedges m  : {graph.num_edges}")
    print(f"pins rho      : {graph.num_pins}")
    print(f"max degree Δ  : {graph.max_degree}")
    print(f"components    : {len(comps)}")
    sizes = sorted((len(e) for e in graph.edges), reverse=True)
    if sizes:
        print(f"edge sizes    : max={sizes[0]} "
              f"median={sizes[len(sizes) // 2]} min={sizes[-1]}")
    return 0


def _generate(args) -> int:
    from .generators import make_workload
    from .io import write_hgr

    graph = make_workload(args.kind, n=args.n, k=args.k,
                          density=args.density, seed=args.seed)
    write_hgr(graph, args.output)
    print(f"wrote {args.kind}: n={graph.n} m={graph.num_edges} "
          f"pins={graph.num_pins} Δ={graph.max_degree} -> {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "lab":
        from .lab.cli import lab_main
        return lab_main(args)
    if args.command == "analyze":
        from .analyze.cli import analyze_main
        return analyze_main(args)
    if args.command in ("serve", "submit", "jobs"):
        from .serve.cli import serve_main
        return serve_main(args)
    if args.command == "mesh":
        from .mesh.cli import mesh_main
        return mesh_main(args)
    if args.command == "sim":
        from .sim.cli import sim_main
        return sim_main(args)
    handlers = {"partition": _partition, "evaluate": _evaluate,
                "recognize": _recognize, "info": _info,
                "generate": _generate}
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
