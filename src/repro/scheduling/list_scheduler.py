"""Greedy list scheduling — upper bounds for μ and μ_p.

List scheduling with critical-path priority is the standard heuristic:
at each unit time step, the ≤ k ready nodes of highest priority execute.
With a fixed partition (the μ_p setting of Section 5.2) each processor
may only execute its own nodes — one per step.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.dag import DAG
from .schedule import Schedule

__all__ = ["critical_path_priority", "list_schedule",
           "list_schedule_fixed_partition"]


def critical_path_priority(dag: DAG) -> np.ndarray:
    """Length (in nodes) of the longest path starting at each node —
    the classic "highest level first" priority (Hu's levels)."""
    prio = np.ones(dag.n, dtype=np.int64)
    for v in reversed(dag.topological_order()):
        for w in dag.successors(v):
            prio[v] = max(prio[v], prio[w] + 1)
    return prio


def list_schedule(dag: DAG, k: int,
                  priority: Sequence[int] | np.ndarray | None = None) -> Schedule:
    """Time-stepped list scheduling on ``k`` identical processors.

    Optimal for in-/out-forests with the default critical-path priority
    (Hu's algorithm) and a (2 − 1/k)-approximation in general.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    prio = (critical_path_priority(dag) if priority is None
            else np.asarray(priority, dtype=np.int64))
    n = dag.n
    indeg = np.array([dag.in_degree(v) for v in range(n)], dtype=np.int64)
    ready = sorted((v for v in range(n) if indeg[v] == 0),
                   key=lambda v: (-prio[v], v))
    procs = np.zeros(n, dtype=np.int64)
    times = np.zeros(n, dtype=np.int64)
    t = 0
    done = 0
    while done < n:
        t += 1
        batch = ready[:k]
        ready = ready[k:]
        newly: list[int] = []
        for slot, v in enumerate(batch):
            procs[v] = slot
            times[v] = t
            done += 1
            for w in dag.successors(v):
                indeg[w] -= 1
                if indeg[w] == 0:
                    newly.append(w)
        if newly:
            ready = sorted(ready + newly, key=lambda v: (-prio[v], v))
    return Schedule(procs, times, k)


def list_schedule_fixed_partition(dag: DAG, labels: Sequence[int] | np.ndarray,
                                  k: int,
                                  priority: Sequence[int] | np.ndarray | None = None,
                                  ) -> Schedule:
    """Greedy schedule honouring a fixed processor assignment — an upper
    bound on μ_p (Section 5.2; computing μ_p exactly is NP-hard,
    Theorem 5.5)."""
    arr = np.asarray(labels, dtype=np.int64)
    if arr.shape != (dag.n,):
        raise ValueError("labels has wrong length")
    prio = (critical_path_priority(dag) if priority is None
            else np.asarray(priority, dtype=np.int64))
    n = dag.n
    indeg = np.array([dag.in_degree(v) for v in range(n)], dtype=np.int64)
    ready: list[list[int]] = [[] for _ in range(k)]
    for v in range(n):
        if indeg[v] == 0:
            ready[arr[v]].append(v)
    for q in ready:
        q.sort(key=lambda v: (-prio[v], v))
    procs = arr.copy()
    times = np.zeros(n, dtype=np.int64)
    t = 0
    done = 0
    while done < n:
        t += 1
        newly: list[int] = []
        executed = 0
        for p in range(k):
            if ready[p]:
                v = ready[p].pop(0)
                times[v] = t
                done += 1
                executed += 1
                for w in dag.successors(v):
                    indeg[w] -= 1
                    if indeg[w] == 0:
                        newly.append(w)
        # With unit tasks a step always executes something: any minimal
        # unexecuted node is ready on its own processor.
        assert executed > 0, "deadlock: no ready node on any processor"
        for w in newly:
            ready[arr[w]].append(w)
        for p in range(k):
            ready[p].sort(key=lambda v: (-prio[v], v))
    return Schedule(procs, times, k)
