"""Greedy list scheduling — upper bounds for μ and μ_p.

List scheduling with critical-path priority is the standard heuristic:
at each unit time step, the ≤ k ready nodes of highest priority execute.
With a fixed partition (the μ_p setting of Section 5.2) each processor
may only execute its own nodes — one per step.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.dag import DAG
from .schedule import Schedule

__all__ = ["critical_path_priority", "priority_from_csr",
           "list_schedule", "list_schedule_fixed_partition"]


def priority_from_csr(ptr: np.ndarray, adj: np.ndarray,
                      layers: np.ndarray,
                      weights: np.ndarray | None = None) -> np.ndarray:
    """Vectorised critical-path priorities from a successor CSR.

    ``ptr``/``adj`` encode each node's successor list;  ``layers`` is
    any layering with ``layers[u] < layers[w]`` along every edge (ASAP
    layers qualify).  Edges are reduced one source layer at a time,
    deepest first, with ``np.maximum.at`` — every successor lives in a
    strictly later layer, so its priority is already final when its
    predecessors' layer is processed.

    Without ``weights`` this is the unit-time priority (int64, the
    node count of the longest downward path).  With per-node
    ``weights`` it is the weighted critical path (float64):
    ``prio[v] = w[v] + max(prio[succ], default 0)`` — HEFT's upward
    rank with zero communication cost.
    """
    ptr = np.asarray(ptr, dtype=np.int64)
    adj = np.asarray(adj, dtype=np.int64)
    n = ptr.shape[0] - 1
    if weights is None:
        prio = np.ones(n, dtype=np.int64)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n,):
            raise ValueError(f"weights must have shape ({n},)")
        prio = w.copy()
    if n == 0 or adj.shape[0] == 0:
        return prio
    layers = np.asarray(layers, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(ptr))
    order = np.argsort(layers[src], kind="stable")
    depth = int(layers.max())
    bounds = np.searchsorted(layers[src][order],
                             np.arange(depth + 2, dtype=np.int64))
    for level in range(depth, -1, -1):
        sel = order[bounds[level]:bounds[level + 1]]
        if sel.shape[0]:
            if weights is None:
                np.maximum.at(prio, src[sel], prio[adj[sel]] + 1)
            else:
                np.maximum.at(prio, src[sel],
                              w[src[sel]] + prio[adj[sel]])
    return prio


def _reference_priority_from_csr(ptr, adj, layers,
                                 weights=None) -> np.ndarray:
    """Pure-Python oracle twin of :func:`priority_from_csr`."""
    ptr = np.asarray(ptr, dtype=np.int64)
    adj = np.asarray(adj, dtype=np.int64)
    layers = np.asarray(layers, dtype=np.int64)
    n = ptr.shape[0] - 1
    if weights is None:
        prio = [1] * n
        for v in sorted(range(n), key=lambda u: -int(layers[u])):
            for w in adj[ptr[v]:ptr[v + 1]]:
                prio[v] = max(prio[v], prio[int(w)] + 1)
        return np.asarray(prio, dtype=np.int64)
    wts = [float(x) for x in np.asarray(weights, dtype=np.float64)]
    prio = list(wts)
    for v in sorted(range(n), key=lambda u: -int(layers[u])):
        for w in adj[ptr[v]:ptr[v + 1]]:
            prio[v] = max(prio[v], wts[v] + prio[int(w)])
    return np.asarray(prio, dtype=np.float64)


def critical_path_priority(dag: DAG) -> np.ndarray:
    """Length (in nodes) of the longest path starting at each node —
    the classic "highest level first" priority (Hu's levels)."""
    counts = np.fromiter((dag.out_degree(v) for v in range(dag.n)),
                         dtype=np.int64, count=dag.n)
    ptr = np.zeros(dag.n + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    adj = np.fromiter((w for v in range(dag.n) for w in dag.successors(v)),
                      dtype=np.int64, count=int(ptr[-1]))
    return priority_from_csr(ptr, adj, dag.asap_layers())


def list_schedule(dag: DAG, k: int,
                  priority: Sequence[int] | np.ndarray | None = None) -> Schedule:
    """Time-stepped list scheduling on ``k`` identical processors.

    Optimal for in-/out-forests with the default critical-path priority
    (Hu's algorithm) and a (2 − 1/k)-approximation in general.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    prio = (critical_path_priority(dag) if priority is None
            else np.asarray(priority, dtype=np.int64))
    n = dag.n
    indeg = np.array([dag.in_degree(v) for v in range(n)], dtype=np.int64)
    ready = sorted((v for v in range(n) if indeg[v] == 0),
                   key=lambda v: (-prio[v], v))
    procs = np.zeros(n, dtype=np.int64)
    times = np.zeros(n, dtype=np.int64)
    t = 0
    done = 0
    while done < n:
        t += 1
        batch = ready[:k]
        ready = ready[k:]
        newly: list[int] = []
        for slot, v in enumerate(batch):
            procs[v] = slot
            times[v] = t
            done += 1
            for w in dag.successors(v):
                indeg[w] -= 1
                if indeg[w] == 0:
                    newly.append(w)
        if newly:
            ready = sorted(ready + newly, key=lambda v: (-prio[v], v))
    return Schedule(procs, times, k)


def list_schedule_fixed_partition(dag: DAG, labels: Sequence[int] | np.ndarray,
                                  k: int,
                                  priority: Sequence[int] | np.ndarray | None = None,
                                  ) -> Schedule:
    """Greedy schedule honouring a fixed processor assignment — an upper
    bound on μ_p (Section 5.2; computing μ_p exactly is NP-hard,
    Theorem 5.5)."""
    arr = np.asarray(labels, dtype=np.int64)
    if arr.shape != (dag.n,):
        raise ValueError("labels has wrong length")
    prio = (critical_path_priority(dag) if priority is None
            else np.asarray(priority, dtype=np.int64))
    n = dag.n
    indeg = np.array([dag.in_degree(v) for v in range(n)], dtype=np.int64)
    ready: list[list[int]] = [[] for _ in range(k)]
    for v in range(n):
        if indeg[v] == 0:
            ready[arr[v]].append(v)
    for q in ready:
        q.sort(key=lambda v: (-prio[v], v))
    procs = arr.copy()
    times = np.zeros(n, dtype=np.int64)
    t = 0
    done = 0
    while done < n:
        t += 1
        newly: list[int] = []
        executed = 0
        for p in range(k):
            if ready[p]:
                v = ready[p].pop(0)
                times[v] = t
                done += 1
                executed += 1
                for w in dag.successors(v):
                    indeg[w] -= 1
                    if indeg[w] == 0:
                        newly.append(w)
        # With unit tasks a step always executes something: any minimal
        # unexecuted node is ready on its own processor.
        assert executed > 0, "deadlock: no ready node on any processor"
        for w in newly:
            ready[arr[w]].append(w)
        for p in range(k):
            ready[p].sort(key=lambda v: (-prio[v], v))
    return Schedule(procs, times, k)
