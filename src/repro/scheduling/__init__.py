"""DAG scheduling (paper Definition 5.3, Section 5.2, Appendix F)."""

from .constraints import (
    schedule_based_feasible,
    schedule_based_feasible_heuristic,
)
from .list_scheduler import (
    critical_path_priority,
    list_schedule,
    list_schedule_fixed_partition,
)
from .optimal import (
    chain_decomposition,
    chain_fixed_makespan,
    chain_fixed_schedule,
    coffman_graham_makespan,
    coffman_graham_schedule,
    exact_fixed_makespan,
    exact_makespan,
    exact_schedule,
    fixed_makespan,
    hu_makespan,
    is_forest,
    optimal_makespan,
)
from .schedule import Schedule, trivial_lower_bound

__all__ = [
    "Schedule",
    "chain_decomposition",
    "chain_fixed_makespan",
    "chain_fixed_schedule",
    "coffman_graham_makespan",
    "coffman_graham_schedule",
    "critical_path_priority",
    "exact_fixed_makespan",
    "exact_makespan",
    "exact_schedule",
    "fixed_makespan",
    "hu_makespan",
    "is_forest",
    "list_schedule",
    "list_schedule_fixed_partition",
    "optimal_makespan",
    "schedule_based_feasible",
    "schedule_based_feasible_heuristic",
    "trivial_lower_bound",
]
