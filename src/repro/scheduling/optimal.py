"""Exact and polynomial-special-case makespan computation.

The paper (Section 5.2, Appendix F) contrasts:

* computing μ (the unconstrained optimal makespan) — polynomial for
  ``k = 2`` (Coffman–Graham [13]), for in-/out-forests (Hu's level
  algorithm [22]) and a few other classes;
* computing μ_p for a *fixed partition* — NP-hard even in those same
  special cases (Theorem 5.5).

Accordingly this module provides polynomial algorithms for μ where they
exist, exponential-but-certified search for μ and μ_p in general, and a
fast progress-vector search for μ_p on chain graphs (the shape of the
Theorem 5.5 constructions).
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import networkx as nx
import numpy as np

from ..core.dag import DAG
from ..errors import ProblemTooLargeError
from .list_scheduler import list_schedule

__all__ = [
    "is_forest",
    "hu_makespan",
    "coffman_graham_makespan",
    "coffman_graham_schedule",
    "exact_makespan",
    "exact_schedule",
    "optimal_makespan",
    "exact_fixed_makespan",
    "chain_decomposition",
    "chain_fixed_makespan",
    "chain_fixed_schedule",
    "fixed_makespan",
]


def is_forest(dag: DAG, direction: str = "out") -> bool:
    """Whether the DAG is an out-forest (all indegrees ≤ 1) or an
    in-forest (all outdegrees ≤ 1)."""
    if direction == "out":
        return dag.max_in_degree() <= 1
    if direction == "in":
        return all(dag.out_degree(v) <= 1 for v in range(dag.n))
    raise ValueError("direction must be 'in' or 'out'")


def hu_makespan(dag: DAG, k: int) -> int:
    """Hu's level algorithm: optimal makespan for in- or out-forests.

    List scheduling with critical-path ("level") priority is optimal for
    in-forests [22]; by time reversal the same value is optimal for
    out-forests (we schedule the reversed DAG, which is then an
    in-forest).  Raises if the input is neither.
    """
    if is_forest(dag, "in"):
        return list_schedule(dag, k).makespan
    if is_forest(dag, "out"):
        reversed_dag = DAG(dag.n, [(v, u) for u, v in dag.edges])
        return list_schedule(reversed_dag, k).makespan
    raise ValueError("hu_makespan requires an in- or out-forest")


def coffman_graham_schedule(dag: DAG):
    """Optimal 2-processor schedule by Coffman–Graham [13].

    Labels nodes on the transitive reduction in reverse lexicographic
    order of successor label sets, then list-schedules by decreasing
    label.  Optimal for ``k = 2`` with unit tasks; returns the
    :class:`~repro.scheduling.schedule.Schedule` witness.
    """
    n = dag.n
    nxg = nx.DiGraph()
    nxg.add_nodes_from(range(n))
    nxg.add_edges_from(dag.edges)
    red = nx.transitive_reduction(nxg)
    succ = {v: set(red.successors(v)) for v in range(n)}
    label = [0] * n
    unlabeled = set(range(n))
    for next_label in range(1, n + 1):
        candidates = [v for v in unlabeled if all(w not in unlabeled
                                                  for w in succ[v])]
        # Pick the candidate whose decreasing successor-label sequence is
        # lexicographically smallest.
        def key(v: int) -> list[int]:
            return sorted((label[w] for w in succ[v]), reverse=True)
        v = min(candidates, key=key)
        label[v] = next_label
        unlabeled.discard(v)
    return list_schedule(dag, 2, priority=label)


def coffman_graham_makespan(dag: DAG) -> int:
    """Optimal 2-processor makespan (see :func:`coffman_graham_schedule`)."""
    if dag.n == 0:
        return 0
    return coffman_graham_schedule(dag).makespan


def _exact_search(dag: DAG, k: int, max_nodes: int, state_limit: int,
                  want_witness: bool):
    """Shared BFS over executed-node bitmasks; optionally tracks parents
    so a witness schedule can be reconstructed."""
    n = dag.n
    if n > max_nodes:
        raise ProblemTooLargeError(
            f"exact makespan search guards at {max_nodes} nodes, got {n}")
    full = (1 << n) - 1
    preds_mask = [0] * n
    for u, v in dag.edges:
        preds_mask[v] |= 1 << u
    frontier = {0}
    t = 0
    seen = {0}
    parent: dict[int, tuple[int, tuple[int, ...]]] = {}
    while True:
        if full in frontier:
            return t, parent
        t += 1
        nxt: set[int] = set()
        for state in frontier:
            ready = [v for v in range(n)
                     if not (state >> v) & 1
                     and (preds_mask[v] & state) == preds_mask[v]]
            if len(ready) <= k:
                batches = [tuple(ready)] if ready else []
            else:
                batches = list(combinations(ready, k))
            for batch in batches:
                new = state
                for v in batch:
                    new |= 1 << v
                if new not in seen:
                    seen.add(new)
                    nxt.add(new)
                    if want_witness:
                        parent[new] = (state, batch)
                    if len(seen) > state_limit:
                        raise ProblemTooLargeError(
                            "exact makespan search exceeded state limit")
        frontier = nxt
        assert frontier, "search exhausted without completing the DAG"


def exact_makespan(dag: DAG, k: int, max_nodes: int = 20,
                   state_limit: int = 2_000_000) -> int:
    """Certified optimal makespan μ by BFS over executed-node sets.

    Exponential; guarded by ``max_nodes``/``state_limit``.
    """
    if dag.n == 0:
        return 0
    t, _ = _exact_search(dag, k, max_nodes, state_limit, want_witness=False)
    return t


def exact_schedule(dag: DAG, k: int, max_nodes: int = 20,
                   state_limit: int = 2_000_000):
    """Certified optimal schedule (a witness for :func:`exact_makespan`)."""
    from .schedule import Schedule

    n = dag.n
    if n == 0:
        return Schedule(np.zeros(0, dtype=np.int64),
                        np.zeros(0, dtype=np.int64), k)
    t, parent = _exact_search(dag, k, max_nodes, state_limit,
                              want_witness=True)
    procs = np.zeros(n, dtype=np.int64)
    times = np.zeros(n, dtype=np.int64)
    state = (1 << n) - 1
    step = t
    while state:
        prev, batch = parent[state]
        for slot, v in enumerate(batch):
            procs[v] = slot
            times[v] = step
        state = prev
        step -= 1
    sched = Schedule(procs, times, k)
    assert sched.is_valid(dag)
    # analyze: allow(float-cost-eq) — exact integer equality: makespans here are int64 step counts, no float arithmetic
    assert sched.makespan == t
    return sched


def optimal_makespan(dag: DAG, k: int, **kwargs) -> int:
    """μ via the cheapest applicable method: Hu for forests,
    Coffman–Graham for ``k = 2``, exact search otherwise."""
    if k >= dag.n:
        return dag.longest_path_length()
    try:
        return hu_makespan(dag, k)
    except ValueError:
        pass
    if k == 2:
        return coffman_graham_makespan(dag)
    return exact_makespan(dag, k, **kwargs)


# ---------------------------------------------------------------------------
# μ_p: makespan for a fixed partition (Section 5.2)
# ---------------------------------------------------------------------------

def exact_fixed_makespan(dag: DAG, labels: Sequence[int] | np.ndarray, k: int,
                         max_nodes: int = 18,
                         state_limit: int = 2_000_000) -> int:
    """Certified μ_p by BFS over executed-node sets, each step executing
    at most one ready node per processor.  Exponential; guarded."""
    arr = np.asarray(labels, dtype=np.int64)
    n = dag.n
    if arr.shape != (n,):
        raise ValueError("labels has wrong length")
    if n == 0:
        return 0
    if n > max_nodes:
        raise ProblemTooLargeError(
            f"exact_fixed_makespan guards at {max_nodes} nodes, got {n}")
    full = (1 << n) - 1
    preds_mask = [0] * n
    for u, v in dag.edges:
        preds_mask[v] |= 1 << u
    frontier = {0}
    seen = {0}
    t = 0
    while True:
        if full in frontier:
            return t
        t += 1
        nxt: set[int] = set()
        for state in frontier:
            ready_by_proc: list[list[int]] = [[] for _ in range(k)]
            for v in range(n):
                if not (state >> v) & 1 and (preds_mask[v] & state) == preds_mask[v]:
                    ready_by_proc[arr[v]].append(v)
            # Choice per processor: one ready node or idle.
            choices = [q + [-1] for q in ready_by_proc]
            def expand(p: int, acc: int) -> None:
                if p == k:
                    if acc != state and acc not in seen:
                        seen.add(acc)
                        nxt.add(acc)
                    return
                for v in choices[p]:
                    expand(p + 1, acc | (1 << v) if v >= 0 else acc)
            expand(0, state)
            if len(seen) > state_limit:
                raise ProblemTooLargeError(
                    "exact_fixed_makespan exceeded state limit")
        frontier = nxt
        if not frontier:
            raise AssertionError("search exhausted without completion")


def chain_decomposition(dag: DAG) -> list[list[int]] | None:
    """If the DAG is a chain graph (all in/out degrees ≤ 1), return its
    chains as node lists in path order; otherwise ``None``."""
    if dag.max_in_degree() > 1 or any(dag.out_degree(v) > 1
                                      for v in range(dag.n)):
        return None
    chains = []
    seen = [False] * dag.n
    for v in range(dag.n):
        if dag.in_degree(v) == 0 and not seen[v]:
            chain = [v]
            seen[v] = True
            cur = v
            while dag.successors(cur):
                cur = dag.successors(cur)[0]
                chain.append(cur)
                seen[cur] = True
            chains.append(chain)
    return chains


def _chain_search(dag: DAG, labels: Sequence[int] | np.ndarray, k: int,
                  state_limit: int, want_witness: bool):
    chains = chain_decomposition(dag)
    if chains is None:
        raise ValueError("chain μ_p solvers require a chain graph")
    arr = np.asarray(labels, dtype=np.int64)
    colour = [[int(arr[v]) for v in chain] for chain in chains]
    lens = tuple(len(c) for c in chains)
    start = (0,) * len(chains)
    goal = lens
    frontier = {start}
    seen = {start}
    parent: dict[tuple[int, ...], tuple[int, ...]] = {}
    t = 0
    while True:
        if goal in frontier:
            return t, chains, parent
        t += 1
        nxt: set[tuple[int, ...]] = set()
        for state in frontier:
            # Per processor, the set of chains whose next node is theirs.
            options: list[list[int]] = [[] for _ in range(k)]
            for ci, prog in enumerate(state):
                if prog < lens[ci]:
                    options[colour[ci][prog]].append(ci)

            def expand(p: int, state_now: tuple[int, ...], used: frozenset[int]) -> None:
                if p == k:
                    if state_now != state and state_now not in seen:
                        seen.add(state_now)
                        nxt.add(state_now)
                        if want_witness:
                            parent[state_now] = state
                    return
                expand(p + 1, state_now, used)  # idle
                for ci in options[p]:
                    if ci in used:
                        continue
                    lst = list(state_now)
                    lst[ci] += 1
                    expand(p + 1, tuple(lst), used | {ci})

            expand(0, state, frozenset())
            if len(seen) > state_limit:
                raise ProblemTooLargeError(
                    "chain μ_p search exceeded state limit")
        frontier = nxt
        assert frontier, "search exhausted without completion"


def chain_fixed_makespan(dag: DAG, labels: Sequence[int] | np.ndarray, k: int,
                         state_limit: int = 5_000_000) -> int:
    """Exact μ_p for chain graphs via progress-vector BFS.

    A chain's execution state is just how many of its nodes are done, so
    the state space is ``Π (len_i + 1)`` instead of ``2^n`` — this is
    what makes the Theorem 5.5 experiment (3-PARTITION instances encoded
    as coloured chains) tractable.
    """
    t, _, _ = _chain_search(dag, labels, k, state_limit, want_witness=False)
    return t


def chain_fixed_schedule(dag: DAG, labels: Sequence[int] | np.ndarray, k: int,
                         state_limit: int = 5_000_000):
    """Exact μ_p witness schedule for chain graphs (see
    :func:`chain_fixed_makespan`)."""
    from .schedule import Schedule

    arr = np.asarray(labels, dtype=np.int64)
    t, chains, parent = _chain_search(dag, labels, k, state_limit,
                                      want_witness=True)
    lens = tuple(len(c) for c in chains)
    times = np.zeros(dag.n, dtype=np.int64)
    state = lens
    step = t
    while step > 0:
        prev = parent[state]
        for ci in range(len(chains)):
            if state[ci] != prev[ci]:
                node = chains[ci][prev[ci]]
                times[node] = step
        state = prev
        step -= 1
    sched = Schedule(arr.copy(), times, k)
    assert sched.is_valid(dag)
    # analyze: allow(float-cost-eq) — exact integer equality: makespans here are int64 step counts, no float arithmetic
    assert sched.makespan == t
    return sched


def fixed_makespan(dag: DAG, labels: Sequence[int] | np.ndarray, k: int,
                   **kwargs) -> int:
    """μ_p via the cheapest applicable exact method."""
    if chain_decomposition(dag) is not None:
        return chain_fixed_makespan(dag, labels, k, **kwargs)
    return exact_fixed_makespan(dag, labels, k, **kwargs)
