"""DAG schedules (paper Definition 5.3).

A scheduling assigns every node a processor ``p(v) ∈ [k]`` and a time
step ``t(v) ∈ Z⁺`` such that no two nodes share a (processor, time) slot
and precedence constraints are respected (``t(u) < t(v)`` for every edge
``(u, v)``).  The makespan is ``max_v t(v)``; all tasks are unit-time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dag import DAG

__all__ = ["Schedule", "trivial_lower_bound"]


@dataclass(frozen=True)
class Schedule:
    """A (processor, time) assignment for every DAG node.

    ``procs[v] ∈ [0, k)``; ``times[v] ≥ 1`` (1-based as in the paper).
    """

    procs: np.ndarray
    times: np.ndarray
    k: int

    def __post_init__(self) -> None:
        procs = np.asarray(self.procs, dtype=np.int64).copy()
        times = np.asarray(self.times, dtype=np.int64).copy()
        procs.setflags(write=False)
        times.setflags(write=False)
        object.__setattr__(self, "procs", procs)
        object.__setattr__(self, "times", times)

    @property
    def makespan(self) -> int:
        """``max_v t(v)`` — the quantity minimised in Definition 5.3."""
        return int(self.times.max()) if self.times.size else 0

    def is_valid(self, dag: DAG) -> bool:
        """Check both Definition 5.3 conditions plus range validity."""
        n = dag.n
        if self.procs.shape != (n,) or self.times.shape != (n,):
            return False
        if n == 0:
            return True
        if self.procs.min() < 0 or self.procs.max() >= self.k:
            return False
        if self.times.min() < 1:
            return False
        # correctness: distinct (processor, time) slots — encode each
        # slot as one integer so uniqueness is a single np.unique pass
        codes = self.procs * (self.times.max() + 1) + self.times
        if np.unique(codes).shape[0] != n:
            return False
        # precedence, vectorised over the edge arrays
        if not dag.edges:
            return True
        e = np.asarray(dag.edges, dtype=np.int64)
        return bool(np.all(self.times[e[:, 0]] < self.times[e[:, 1]]))

    def _reference_is_valid(self, dag: DAG) -> bool:
        """Pure-Python oracle twin of :meth:`is_valid` (parity-tested)."""
        n = dag.n
        if self.procs.shape != (n,) or self.times.shape != (n,):
            return False
        if n == 0:
            return True
        if self.procs.min() < 0 or self.procs.max() >= self.k:
            return False
        if self.times.min() < 1:
            return False
        slots = set(zip(self.procs.tolist(), self.times.tolist()))
        if len(slots) != n:
            return False
        return all(self.times[u] < self.times[v] for u, v in dag.edges)

    def respects_partition(self, labels: np.ndarray) -> bool:
        """Whether the schedule's processor assignment equals ``labels``
        (the μ_p setting of Section 5.2)."""
        return bool(np.array_equal(self.procs, np.asarray(labels)))


def trivial_lower_bound(dag: DAG, k: int) -> int:
    """``max(⌈n/k⌉, longest path length)`` — the standard makespan LB."""
    if dag.n == 0:
        return 0
    return max(-(-dag.n // k), dag.longest_path_length())
