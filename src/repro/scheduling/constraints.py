"""Schedule-based balance constraints (Definition 5.4).

A partitioning ``p`` is feasible iff ``μ_p ≤ (1+ε)·μ``: its best
achievable makespan is within a ``(1+ε)`` factor of the DAG's optimal
parallelisation.  Theorem 5.5 shows that *checking* this is NP-hard even
where μ itself is polynomial — the library therefore exposes both the
exact check (small instances) and the heuristic upper-bound check used
in practice.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.dag import DAG
from ..core.tolerance import leq
from .list_scheduler import list_schedule_fixed_partition
from .optimal import fixed_makespan, optimal_makespan

__all__ = ["schedule_based_feasible", "schedule_based_feasible_heuristic"]


def schedule_based_feasible(
    dag: DAG,
    labels: Sequence[int] | np.ndarray,
    k: int,
    eps: float,
    mu: int | None = None,
    **kwargs,
) -> bool:
    """Exact Definition 5.4 check: ``μ_p ≤ (1+ε)·μ``.

    Computes μ (polynomially where possible) and μ_p (exact search —
    exponential in general, Theorem 5.5).  Pass ``mu`` if already known.
    """
    if mu is None:
        mu = optimal_makespan(dag, k)
    mup = fixed_makespan(dag, labels, k, **kwargs)
    return bool(leq(mup, (1.0 + eps) * mu))


def schedule_based_feasible_heuristic(
    dag: DAG,
    labels: Sequence[int] | np.ndarray,
    k: int,
    eps: float,
    mu: int | None = None,
) -> bool:
    """One-sided check via list scheduling: if even the greedy μ_p upper
    bound satisfies the constraint, the partition is certainly feasible.
    (A ``False`` here is inconclusive — the gap Theorem 5.5 exploits.)"""
    if mu is None:
        mu = optimal_makespan(dag, k)
    ub = list_schedule_fixed_partition(dag, labels, k).makespan
    return bool(leq(ub, (1.0 + eps) * mu))
