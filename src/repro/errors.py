"""Exception types shared across the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidHypergraphError(ReproError):
    """Raised when a hypergraph violates a structural requirement."""


class InvalidPartitionError(ReproError):
    """Raised when a partition vector is malformed for its hypergraph."""


class BalanceViolationError(ReproError):
    """Raised when a partition violates a balance constraint it must satisfy."""


class ProblemTooLargeError(ReproError):
    """Raised by exact solvers when an instance exceeds their size guard.

    Exact (exponential-time) solvers in this library refuse instances that
    would take unreasonably long, instead of silently hanging.  Callers can
    raise the guard explicitly when they know what they are doing.
    """


class InfeasibleError(ReproError):
    """Raised when no solution satisfying the given constraints exists."""


class NotAHyperDAGError(ReproError):
    """Raised when an operation requiring a hyperDAG receives a non-hyperDAG."""


class ServeError(ReproError):
    """Base class for errors raised by the :mod:`repro.serve` subsystem."""


class ServeProtocolError(ServeError):
    """Raised when a job request payload is malformed or unsupported."""


class QueueFullError(ServeError):
    """Raised when the serve admission queue is at capacity.

    The HTTP layer maps this to ``429 Too Many Requests`` with a
    ``Retry-After`` header: the server sheds load instead of growing an
    unbounded backlog.
    """


class DeadlineExceededError(ServeError):
    """Raised when a request's deadline expires before its result is ready.

    Used both by the cooperative :func:`repro.serve.jobs.with_deadline`
    wrapper (awaiting side) and by the worker pool when it kills a
    dispatch whose job overran its budget (executing side).
    """


class JobNotFoundError(ServeError):
    """Raised when a job id is unknown to the server (or already purged)."""


class ServeClientError(ServeError):
    """Raised by :mod:`repro.serve.client` when the server returns an error
    response that is not a backpressure signal (those raise
    :class:`QueueFullError` so callers can back off and retry)."""


class WorkerPoolError(ReproError):
    """Raised by :mod:`repro.partitioners.subround` when the persistent
    worker pool cannot be started or a worker fails mid-stage."""


class SharedMemoryError(ReproError):
    """Raised by :mod:`repro.core.shm` when a shared-memory segment
    cannot be created, attached, or laid out (e.g. attaching a
    descriptor whose segment has already been unlinked)."""


class SanitizerError(ReproError):
    """Raised by :mod:`repro.analyze.sanitize` when an enabled runtime
    check finds a corrupted structure at a kernel/partitioner boundary.

    Only ever raised when ``REPRO_SANITIZE`` is set; with the sanitizer
    disabled (the default) the checks are no-ops.
    """


class MeshError(ReproError):
    """Base class for errors raised by the :mod:`repro.mesh` subsystem
    (router admission, shard supervision, stream relays)."""


class NoShardAvailableError(MeshError):
    """Raised when every shard a key hashes to is marked down — the
    router maps it to ``503 Service Unavailable`` so clients retry
    after the supervisor restarts a shard."""


class SimulationError(ReproError):
    """Raised by :mod:`repro.sim` for malformed plans, topologies,
    scheduler protocol violations (assigning a finished task, an
    out-of-range worker, a locked task to a foreign worker), or unknown
    scheduler / information-mode names."""
