"""Built-in experiment specs: one per EXPERIMENTS.md row.

Importing this module (done lazily by :func:`repro.lab.spec.
load_builtin_specs`) populates the registry.  Most specs wrap a
``benchmarks/bench_*.py`` runner; the handful of rows that never had a
standalone bench function (F5 layerings, Appendix I.1 conversions, the
kernel suite) get native runners defined at the bottom of this file.

Conventions
-----------
* ``name`` is the EXPERIMENTS.md "Exp id" (ASCII-normalised).
* ``seeds`` holds the bench file's historical seed so ``repro lab run``
  regenerates exactly the committed tables.
* The :data:`~repro.lab.spec.SMOKE` tag marks experiments cheap enough
  for ``run --smoke`` (tiny ``smoke_params`` where the full sweep is
  not); :data:`~repro.lab.spec.TIMING` marks rows containing wall-clock
  measurements, which are excluded from smoke runs and from the
  byte-stable ``results.json`` determinism guarantee.
"""

from __future__ import annotations

from .spec import SMOKE, TIMING, ExperimentSpec, register


def _bench(name, artifact, title, module, func, check, header, *,
           params=None, smoke_params=None, seeds=(0,), timeout_s=300.0,
           tags=(SMOKE,), **kw):
    return register(ExperimentSpec(
        name=name, artifact=artifact, title=title, module=module,
        func=func, check=check, header=tuple(header),
        params=dict(params or {}),
        smoke_params=None if smoke_params is None else dict(smoke_params),
        seeds=tuple(seeds), timeout_s=timeout_s,
        tags=frozenset(tags), **kw))


# --- Section 2/Appendix B: the hyperDAG model --------------------------

_bench(
    "F1", "Figure 1 / App. B",
    "Figure 1: hyperDAG conversion (k=4 random balanced partition)",
    "bench_fig1_hyperdag", "run_conversion", "check_conversion",
    ["n", "DAG edges", "hyperedges", "n - sinks", "edge cut",
     "hyperDAG cost", "overcount x"],
    seeds=(1,), smoke_params={"widths": (5, 10)})

_bench(
    "F2", "Figure 2 + Lemma B.2",
    "Lemma B.2: recognition is linear in the pin count ρ",
    "bench_fig2_recognition", "run_recognition", "check_recognition",
    ["n", "pins ρ", "time (ms)", "ns / pin"],
    seeds=(2,), tags=(TIMING,))

_bench(
    "F2-reject", "Figure 2 + Lemma B.1",
    "Figure 2: structural rejections (|E| <= n-1 law)",
    "bench_fig2_recognition", "run_rejections", "check_rejections",
    ["instance", "n", "|E|", "hyperDAG?"])

_bench(
    "B.3", "Lemma B.3",
    "Lemma B.3: hyperDAG reduction preserves optimal cost",
    "bench_appendixB", "run_b3_reduction", "check_b3_reduction",
    ["seed", "n", "n'", "hyperDAG", "OPT", "mapped cost", "balanced"],
    smoke_params={"num_seeds": 2})

_bench(
    "HK", "App. B ([27] model)",
    "Appendix B: Hendrickson–Kolda model overcounts by a factor Θ(m); "
    "hyperDAGs stay exact at k-1",
    "bench_appendixB", "run_hk_overcount", "check_hk_overcount",
    ["sinks m", "hyperDAG (true) cost", "HK cost", "factor"])

# --- Section 4/Appendix C: inapproximability ---------------------------

_bench(
    "T4.1", "Figure 3 + Thm 4.1 (Lemma C.1)",
    "Theorem 4.1 / Lemma C.1: OPT_part == OPT_SpES",
    "bench_thm41_spes", "run_opt_correspondence",
    "check_opt_correspondence",
    ["n", "|E|", "p", "eps", "n'", "OPT_SpES", "OPT_part",
     "fwd-map cost"],
    seeds=(41,), smoke_params={"num_instances": 2})

_bench(
    "T4.1-D2", "Lemma C.6 + App. C.3",
    "Lemma C.6 / App. C.3: Δ=2 hyperDAG reduction",
    "bench_thm41_delta2", "run_delta2", "check_delta2",
    ["n", "|E|", "p", "n'", "Δ", "hyperDAG", "SpMV-prop", "OPT_SpES",
     "fwd cost", "balanced", "p-1 grids balanced"])

_bench(
    "L4.3", "Lemma 4.3",
    "Lemma 4.3: XP optimum == branch-and-bound optimum",
    "bench_lemma43_xp", "run_agreement", "check_agreement",
    ["seed", "B&B OPT", "XP OPT", "L*"],
    smoke_params={"num_seeds": 2})

_bench(
    "L4.3-scaling", "Lemma 4.3",
    "Lemma 4.3: runtime grows with the parameter L",
    "bench_lemma43_xp", "run_runtime_scaling", "check_runtime_scaling",
    ["regime", "L", "seconds"],
    seeds=(7,), tags=(TIMING,))

_bench(
    "C.4", "Appendix C.4",
    "Appendix C.4: OPT_part == OPT_SpES for every fixed k",
    "bench_appendixC_extensions", "run_c4_kway", "check_c4_kway",
    ["k", "eps", "n'", "fillers", "OPT_SpES", "OPT_part"],
    smoke_params={"cases": ((2, 0.0), (3, 0.0))})

_bench(
    "C.5", "Appendix C.5",
    "Appendix C.5: the Minimum p-Union generalisation",
    "bench_appendixC_extensions", "run_c5_mpu", "check_c5_mpu",
    ["n", "sets", "p", "n'", "OPT_MpU", "OPT_part", "fwd cost"])

# --- Section 5/Appendices E-F: scheduling ------------------------------

_bench(
    "F4", "Figure 4 / §5",
    "Figure 4: balanced != parallel (serial concatenation, k=2)",
    "bench_fig4_serial", "run_serial_concatenation",
    "check_serial_concatenation",
    ["n", "G1|G2 balanced", "mu", "mu_p(G1|G2)", "mu_p(interleave)",
     "slowdown"],
    seeds=(4,), smoke_params={"widths": (4, 8)})

_bench(
    "F6", "Figure 6",
    "Figure 6: layer-wise optimum grows Θ(b); branch colouring costs "
    "O(1)",
    "bench_fig6_layerwise", "run_layerwise_penalty",
    "check_layerwise_penalty",
    ["b", "n", "layer-wise OPT", "branch-colour cost"],
    smoke_params={"bs": (2, 4)})

_bench(
    "T5.5-chains", "Theorem 5.5",
    "Theorem 5.5 (chains/level-order): mu_p == n/2 iff "
    "3-PARTITION-style grouping exists",
    "bench_thm55_mup", "run_chains", "check_chains",
    ["numbers", "b", "grouping?", "target n/2", "mu", "mu_p"],
    smoke_params={"cases": (((2, 2, 1, 3), 4, True),
                            ((3, 3, 2), 4, False))})

_bench(
    "T5.5-trees", "Theorem 5.5",
    "Theorem 5.5 (out-trees)",
    "bench_thm55_mup", "run_out_trees", "check_out_trees",
    ["numbers", "b", "grouping?", "target", "mu_p"])

_bench(
    "T5.5-height", "Theorem 5.5",
    "Theorem 5.5 (bounded height, via CLIQUE)",
    "bench_thm55_mup", "run_bounded_height", "check_bounded_height",
    ["graph", "L", "clique?", "height", "target", "mu_p"])

_bench(
    "E.1", "Theorem E.1",
    "Theorem E.1: best-layering cost 0 iff grouping exists",
    "bench_thmE1_layering", "run_layering", "check_layering",
    ["numbers", "b", "DAG n", "flexible nodes", "grouping?",
     "grouped search", "full search"],
    smoke_params={"cases": (((2, 2, 1, 3), 4), ((1, 1, 2), 2))})

_bench(
    "F", "Appendix F",
    "Appendix F: μ stays cheap, exact μ_p blows up",
    "bench_appendixF_scheduling", "run_mu_vs_mup", "check_mu_vs_mup",
    ["n", "mu", "mu_p", "mu ms", "mu_p ms", "slowdown x"],
    tags=(TIMING,), timeout_s=600.0)

# --- Sections 5.2/6: colourings and orthogonal vectors -----------------

_bench(
    "T5.2", "Thm 5.2 + Lemma 6.3",
    "Lemma 6.3 + Theorem 5.2: cost-0 feasible iff 3-colourable",
    "bench_thm52_coloring", "run_coloring", "check_coloring",
    ["graph", "3-colourable", "flat cost-0", "layer-wise cost-0",
     "flat n", "DAG n"],
    smoke_params={"graphs": ("triangle", "path3", "K4")})

_bench(
    "T6.4", "Theorem 6.4",
    "Theorem 6.4: cost-0 feasible iff orthogonal pair exists",
    "bench_thm64_ovp", "run_ovp", "check_ovp",
    ["m", "D", "constraints c", "n", "OVP pair?", "cost-0?"],
    seeds=(64,), smoke_params={"ms": (3, 4), "reps": 2})

_bench(
    "D.1", "Lemma D.1 / 6.2",
    "Lemma D.1: multi-constraint k-section == blown-up "
    "single-constraint k-section",
    "bench_appendixC_extensions", "run_d1_blowup", "check_d1_blowup",
    ["n", "c", "n'", "direct OPT", "blow-up OPT"],
    smoke_params={"num_cases": 2})

# --- Section 7/Appendices G-I: hierarchical partitioning ---------------

_bench(
    "F8", "Figure 8 / Lemma 7.2",
    "Figure 8 / Lemma 7.2: recursive pays Θ(n), direct O(1)",
    "bench_fig8_recursive", "run_recursive_vs_direct",
    "check_recursive_vs_direct",
    ["n", "recursive", "direct OPT", "ratio", "hier(recursive)",
     "hier OPT", "hier ratio"],
    smoke_params={"units": (4, 8)})

_bench(
    "G.1", "Appendix G.1",
    "Appendix G.1: Figure 8 for general branching factors",
    "bench_fig8_recursive", "run_general_branching",
    "check_general_branching",
    ["b", "unit", "n", "direct OPT", "block split cost"],
    smoke_params={"cases": (("2,2", (4, 8)), ("3,2", (4, 8)))})

_bench(
    "F9", "Figure 9 / Theorem 7.4",
    "Figure 9 / Theorem 7.4: two-step vs hierarchical optimum (k=4, "
    "b1=2)",
    "bench_fig9_twostep", "run_two_step_gap", "check_two_step_gap",
    ["g1", "m", "std OPT", "two-step hier cost", "hier OPT", "ratio",
     "(b1-1)/b1*g1", "g1 (Lemma 7.3 cap)"],
    smoke_params={"g1s": (2.0, 4.0)})

_bench(
    "L7.3", "Lemma 7.3",
    "Lemma 7.3: hier OPT <= two-step <= g1 * hier OPT (g1=4)",
    "bench_lemma73_bound", "run_sandwich", "check_sandwich",
    ["seed", "hier OPT", "two-step", "ratio"],
    smoke_params={"num_seeds": 2})

_bench(
    "H.1", "Lemma H.1",
    "Lemma H.1: matching == brute force for d=2, b2=2",
    "bench_thm75_assignment", "run_matching", "check_matching",
    ["k", "f(k)", "brute-force cost", "matching cost", "matching ms",
     "brute ms"],
    tags=(TIMING,))

_bench(
    "H.2", "Lemma H.2",
    "Lemma H.2: 3DM perfect matching iff gain >= threshold (b2=3)",
    "bench_thm75_assignment", "run_3dm", "check_3dm",
    ["instance", "3DM?", "max gain", "threshold", "reached"])

_bench(
    "A.1", "Lemma A.1",
    "Lemma A.1: eps-balanced OPT == k-section OPT (padded)",
    "bench_appendixA", "run_a1_padding", "check_a1_padding",
    ["seed", "eps", "n", "n padded", "direct OPT", "via OPT"])

_bench(
    "A.3", "Lemmas A.3/A.4",
    "Lemmas A.3/A.4: how many parts an optimum actually uses",
    "bench_appendixA", "run_a3_a4_empty_parts",
    "check_a3_a4_empty_parts",
    ["k", "eps", "nonempty parts (OPT)", "A.3 bound (<)",
     "A.4 all-nonempty?"],
    seeds=(9,))

_bench(
    "A.5", "Lemma A.5",
    "Lemma A.5: splitting a block of size b costs >= b-1",
    "bench_appendixA", "run_a5_block_law", "check_a5_block_law",
    ["b", "bound b-1", "cheapest observed split"],
    seeds=(5,), smoke_params={"bs": (3, 5, 8), "samples": 25})

_bench(
    "C.3", "Lemma C.3",
    "Lemma C.3: grid cut >= sqrt(minority); square shape is "
    "2*sqrt(t0)-tight",
    "bench_appendixA", "run_c3_grid_law", "check_c3_grid_law",
    ["l", "violations", "min cut/sqrt(t0)", "t0 (square)", "square cut",
     "2*sqrt(t0)"],
    seeds=(33,), smoke_params={"ells": (3, 5), "samples": 40})

# --- Practice: heuristics, ablations, scaling, kernels -----------------

_bench(
    "PQ", "§1/§4 context",
    "Partitioner quality (connectivity, k=4, eps=0.1)",
    "bench_partitioner_quality", "run_quality", "check_quality",
    ["workload", "n", "m", "random", "greedy", "FM", "multilevel"],
    seeds=(77,), tags=(), timeout_s=600.0)

_bench(
    "AB", "DESIGN ablation",
    "Multilevel ablation (connectivity, planted k=4)",
    "bench_ablation_multilevel", "run_ablation", "check_ablation",
    ["seed", "full", "no coarsening (FM only)", "no refinement",
     "spectral+FM"],
    tags=(), timeout_s=600.0)

_bench(
    "HM-workloads", "§7 constructive",
    "Hierarchy-aware vs two-step (planted, k=4, g1=6)",
    "bench_hierarchy_methods", "run_workloads", "check_workloads",
    ["seed", "two-step", "direct (aware)", "ratio"],
    tags=(), timeout_s=600.0)

_bench(
    "HM-fm", "§7 constructive",
    "Block-level hierarchical FM escapes the Figure 9 trap",
    "bench_hierarchy_methods", "run_fig9_fm", "check_fig9_fm",
    ["g1", "two-step", "FM-refined", "hier OPT"],
    smoke_params={"g1s": (2.0, 4.0)})

_bench(
    "SAN", "sanitizer overhead",
    "Runtime sanitizer: boundary-check overhead (off vs on)",
    "bench_sanitize_overhead", "run_overhead", "check_overhead",
    ["mode", "seconds", "vs off"],
    tags=(TIMING,), timeout_s=600.0)

_bench(
    "SC", "scalability",
    "Multilevel scalability (k=8, planted)",
    "bench_scalability", "run_scaling", "check_scaling",
    ["n", "pins", "seconds", "us/pin", "cost", "planted cost",
     "balanced"],
    tags=(TIMING,), timeout_s=600.0)

_bench(
    "SIM", "§7 / Def 7.1 simulation",
    "Scheduler zoo x information modes on hierarchical machines "
    "(discrete-event simulation, lognormal durations)",
    "bench_sim", "run_matrix", "check_matrix",
    ["workload", "topology", "partitioner", "scheduler", "lb", "exact",
     "mean", "blind"],
    smoke_params={"smoke": True}, timeout_s=600.0)

# --- Native runners (rows with no standalone bench function) -----------

register(ExperimentSpec(
    name="F5", artifact="Figure 5 / §5.1",
    title="Figure 5: layerings are non-unique; flexible nodes sit off "
          "maximum paths",
    module="repro.lab.experiments", func="run_f5_layerings",
    check="check_f5_layerings",
    header=("width", "n", "layers l", "flexible", "ASAP valid",
            "ALAP valid", "multiple layerings"),
    seeds=(5,), tags=frozenset((SMOKE,))))

register(ExperimentSpec(
    name="I.1", artifact="Appendix I.1",
    title="Appendix I.1: Figure 8/9 constructions as hyperDAGs",
    module="repro.lab.experiments", func="run_i1_hyperdag",
    check="check_i1_hyperdag",
    tags=frozenset((SMOKE,))))

register(ExperimentSpec(
    name="KERN", artifact="kernel layer",
    title="CSR kernel suite vs reference oracles",
    module="repro.lab.experiments", func="run_kernel_suite",
    check="check_kernel_suite",
    params={"quick": True, "repeats": 2, "with_parallel": False},
    tags=frozenset((TIMING,)), timeout_s=600.0))


def run_f5_layerings(*, seed=5, widths=(4, 8, 16), layers=4,
                     density=0.4):
    import numpy as np

    from repro.generators import random_layered_dag

    rng = np.random.default_rng(seed)
    rows = []
    for width in widths:
        d = random_layered_dag([width] * layers, density, rng)
        asap, alap = d.asap_layers(), d.alap_layers()
        flexible = d.flexible_nodes()
        rows.append((width, d.n, d.longest_path_length(), len(flexible),
                     d.is_valid_layering(asap), d.is_valid_layering(alap),
                     bool(flexible)))
    return rows


def check_f5_layerings(rows):
    for width, n, ell, flex, asap_ok, alap_ok, multiple in rows:
        assert asap_ok and alap_ok
        assert multiple == (flex > 0)
    # flexibility (hence layering choice) actually occurs
    assert any(r[3] > 0 for r in rows)


def run_i1_hyperdag(*, seed=0, unit=12, g1=4.0):
    import numpy as np

    from repro.core import cut_net_cost, is_hyperdag
    from repro.hierarchy import two_step_from_partition
    from repro.reductions import (
        block_respecting_hierarchical_optimum,
        block_respecting_kway_optimum,
        build_recursive_gap_instance,
        build_two_step_gap_instance,
    )

    st8 = build_recursive_gap_instance(unit=unit, hyperdag=True)
    direct, _ = block_respecting_kway_optimum(st8, 4, eps=0.0)
    large = st8.blocks[0]
    b0 = max(2, len(large) // 6)
    labels = np.zeros(st8.hypergraph.n, dtype=np.int64)
    labels[large[-1]] = 1
    split = cut_net_cost(st8.hypergraph, labels, 2)
    fig8_rows = [(st8.hypergraph.n, is_hyperdag(st8.hypergraph), direct,
                  split, b0)]

    st9 = build_two_step_gap_instance(unit=unit, k=4, g1=g1,
                                      hyperdag=True)
    m = st9.meta["m"]
    cstd, pstd = block_respecting_kway_optimum(st9, 4, eps=0.0)
    _, ts = two_step_from_partition(st9.hypergraph, pstd, st9.topology)
    opt, _ = block_respecting_hierarchical_optimum(st9, eps=0.0)
    fig9_rows = [(g1, st9.hypergraph.n, is_hyperdag(st9.hypergraph),
                  cstd, 3 * m, ts, opt, ts / opt)]

    return [
        {"title": "Appendix I.1: Figure 8 construction as a hyperDAG",
         "header": ["n", "hyperDAG", "direct OPT", "split cost",
                    "b0 bound"],
         "rows": fig8_rows},
        {"title": "Appendix I.1: Figure 9 construction as a hyperDAG",
         "header": ["g1", "n", "hyperDAG", "std OPT", "3m", "two-step",
                    "hier OPT", "ratio"],
         "rows": fig9_rows},
    ]


def check_i1_hyperdag(result):
    fig8, fig9 = result
    for n, hd, direct, split, b0 in fig8["rows"]:
        assert hd
        assert direct <= 7          # direct stays O(1)
        assert split >= b0          # block splits stay expensive
    for g1, n, hd, cstd, three_m, ts, opt, ratio in fig9["rows"]:
        assert hd
        from repro.core.tolerance import close, geq, leq
        assert close(cstd, three_m)
        assert geq(ratio, g1 / 2) and leq(ratio, g1)


def run_kernel_suite(*, seed=0, quick=True, repeats=2,
                     with_parallel=False):
    from .spec import _import_module

    bk = _import_module("bench_kernels")
    sizes = bk.QUICK_SIZES if quick else bk.FULL_SIZES
    result = bk.run(sizes, repeats, with_parallel=with_parallel)
    rows = []
    for case in result["cases"]:
        label = f"n={case['n']},m={case['m']}"
        for kernel, v in case["kernels"].items():
            rows.append((label, kernel, v["ref_s"] * 1e3,
                         v["vec_s"] * 1e3, v["speedup"]))
    tables = [{"title": "CSR kernel suite vs reference oracles",
               "header": ["case", "kernel", "ref ms", "vec ms",
                          "speedup"],
               "rows": rows}]
    par = result.get("parallel")
    if par:
        tables.append({
            "title": "parallel V-cycles",
            "header": ["n_jobs", "seconds", "cost"],
            "rows": [(1, par["serial_s"], par["serial_cost"]),
                     (par["n_jobs"], par["parallel_s"],
                      par["parallel_cost"])]})
    return tables


def check_kernel_suite(result):
    kernel_rows = result[0]["rows"]
    assert kernel_rows
    for case, kernel, ref_ms, vec_ms, speedup in kernel_rows:
        assert speedup > 0
    if len(result) > 1:  # parallel V-cycles must agree on cost
        (j1, _, c1), (jn, _, cn) = result[1]["rows"]
        assert c1 == cn
