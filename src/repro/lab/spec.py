"""Experiment specs and the discoverable registry.

An :class:`ExperimentSpec` is a declarative description of one
EXPERIMENTS.md row: which callable produces the result rows, with which
parameters and seeds, under which timeout, and how to verify the rows
against the paper's claim.  Specs never hold code — they *name* a
module and function, so a spec (and therefore a task) is a plain
picklable value that travels to worker processes as strings.

Runner contract
---------------
``func`` resolves to a callable ``run(*, seed, **params)`` returning
either a bare list of rows (rendered under the spec's ``title`` /
``header``) or a table dict ``{"title", "header", "rows"}`` or a list
of such dicts for multi-table experiments.  ``check`` (optional)
resolves to a callable receiving exactly what the runner returned and
raising ``AssertionError`` when a paper claim does not hold.

Bare module names (no dot) resolve inside the repository's
``benchmarks/`` directory, which is how the legacy ``bench_*.py``
content is wrapped; dotted names resolve as ordinary imports.
"""

from __future__ import annotations

import importlib
import importlib.util
import sys
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from .cache import task_key

__all__ = [
    "BENCH_DIR",
    "ExperimentSpec",
    "Task",
    "all_specs",
    "expand_tasks",
    "get_spec",
    "load_builtin_specs",
    "register",
    "resolve_callable",
    "source_path",
]

ROOT = Path(__file__).resolve().parents[3]
BENCH_DIR = ROOT / "benchmarks"

SMOKE = "smoke"      # cheap, deterministic: eligible for ``run --smoke``
TIMING = "timing"    # rows contain wall-clock values (not seed-deterministic)


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment (one EXPERIMENTS.md row)."""

    name: str                       # experiment id, e.g. "F1", "T4.1"
    artifact: str                   # paper artifact, e.g. "Figure 1 / App. B"
    title: str                      # table caption
    module: str                     # bench module name or dotted import path
    func: str                       # runner attribute in ``module``
    check: str | None = None        # checker attribute in ``module``
    header: tuple[str, ...] | None = None   # columns for bare-row runners
    params: Mapping[str, Any] = field(default_factory=dict)
    smoke_params: Mapping[str, Any] | None = None
    seeds: tuple[int, ...] = (0,)
    timeout_s: float = 300.0
    retries: int = 1                # extra attempts after a crash
    version: int = 1                # bump to invalidate cached results
    tags: frozenset[str] = frozenset()

    @property
    def smoke(self) -> bool:
        return SMOKE in self.tags

    @property
    def deterministic(self) -> bool:
        return TIMING not in self.tags

    def effective_params(self, smoke: bool = False) -> dict[str, Any]:
        merged = dict(self.params)
        if smoke and self.smoke_params is not None:
            merged.update(self.smoke_params)
        return merged


@dataclass(frozen=True)
class Task:
    """One unit of executor work: a spec instantiated at one seed."""

    spec: ExperimentSpec
    seed: int
    params: Mapping[str, Any]
    key: str                        # content-addressed cache key

    @property
    def label(self) -> str:
        return (f"{self.spec.name}[seed={self.seed}]"
                if len(self.spec.seeds) > 1 else self.spec.name)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, ExperimentSpec] = {}
_BUILTINS_LOADED = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add ``spec`` to the registry (name must be unique)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate experiment spec {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def load_builtin_specs() -> None:
    """Import the built-in spec definitions exactly once."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        from . import experiments  # noqa: F401  (registers on import)


def get_spec(name: str) -> ExperimentSpec:
    load_builtin_specs()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None


def all_specs() -> list[ExperimentSpec]:
    load_builtin_specs()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


# ---------------------------------------------------------------------------
# Module / callable resolution and code fingerprinting
# ---------------------------------------------------------------------------

def _import_module(module: str):
    """Import ``module``; bare names resolve inside ``benchmarks/``."""
    if "." not in module and (BENCH_DIR / f"{module}.py").exists():
        bdir = str(BENCH_DIR)
        if bdir not in sys.path:
            # repro: allow[fork-safety] — the child process extends its
            # own copy of sys.path to import bench modules; the parent's
            # path is never touched after the fork.
            sys.path.insert(0, bdir)
    return importlib.import_module(module)


def resolve_callable(module: str, func: str) -> Callable[..., Any]:
    return getattr(_import_module(module), func)


def source_path(module: str) -> Path | None:
    """Path of the file defining ``module`` (for code fingerprints)."""
    bench = BENCH_DIR / f"{module}.py"
    if "." not in module and bench.exists():
        return bench
    spec = importlib.util.find_spec(module)
    if spec is not None and spec.origin and spec.origin != "built-in":
        return Path(spec.origin)
    return None


# ---------------------------------------------------------------------------
# Task expansion
# ---------------------------------------------------------------------------

def expand_tasks(specs: Sequence[ExperimentSpec], *, smoke: bool = False,
                 timeout_override: float | None = None) -> list[Task]:
    """Expand specs into concrete tasks in a deterministic order.

    The order — specs sorted by name, then seeds in declared order — is
    what makes ``results.json`` byte-identical across ``--jobs`` values
    and across resumed runs.
    """
    tasks: list[Task] = []
    for spec in sorted(specs, key=lambda s: s.name):
        if timeout_override is not None:
            spec = replace(spec, timeout_s=timeout_override)
        params = spec.effective_params(smoke)
        for seed in spec.seeds:
            tasks.append(Task(spec=spec, seed=seed, params=params,
                              key=task_key(spec, params, seed)))
    return tasks
