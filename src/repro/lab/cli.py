"""The ``repro lab`` subcommand: list / run / status / report.

``run`` is the reproduction driver: it expands the selected specs into
tasks, executes them process-parallel against the content-addressed
cache, appends the JSONL journal, writes the deterministic
``results.json``, and renders the paper-style tables.  A failed or
timed-out experiment degrades the run (non-zero exit, ``status`` in the
results) instead of aborting it.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from ..analyze import sanitize
from .cache import ResultCache
from .executor import execute
from .journal import (
    RunJournal,
    latest_run_records,
    read_journal,
    summarize_run,
)
from .report import (
    format_table,
    render_results,
    results_payload,
    write_results,
)
from .spec import all_specs, expand_tasks, get_spec

__all__ = ["add_lab_parser", "lab_main"]

DEFAULT_OUT_DIR = ".lab"


def add_lab_parser(sub) -> None:
    """Attach the ``lab`` subcommand to the top-level subparsers."""
    lab = sub.add_parser(
        "lab", help="run the paper's experiments (EXPERIMENTS.md rows)")
    labsub = lab.add_subparsers(dest="lab_command", required=True)

    ls = labsub.add_parser("list", help="list registered experiments")
    ls.add_argument("--smoke", action="store_true",
                    help="only experiments in the smoke tier")

    run = labsub.add_parser(
        "run", help="run experiments and write results.json")
    run.add_argument("experiments", nargs="*", metavar="EXP",
                     help="experiment ids (default: --all)")
    run.add_argument("--all", action="store_true",
                     help="run every registered experiment")
    run.add_argument("--smoke", action="store_true",
                     help="smoke tier: cheap deterministic experiments "
                          "with tiny parameters")
    run.add_argument("-j", "--jobs", type=int, default=1,
                     help="concurrent worker processes (default 1)")
    run.add_argument("--timeout", type=float, default=None,
                     help="override every spec's per-task timeout (s)")
    run.add_argument("--no-cache", action="store_true",
                     help="recompute everything, ignoring cached results")
    run.add_argument("--cache-dir", default=None,
                     help="result cache directory "
                          "(default: <out-dir>/../.lab-cache)")
    run.add_argument("--out-dir", default=DEFAULT_OUT_DIR,
                     help=f"journal + results directory "
                          f"(default {DEFAULT_OUT_DIR})")
    run.add_argument("--sanitize", action="store_true",
                     help="enable the runtime sanitizer "
                          "(REPRO_SANITIZE=1) in this process and every "
                          "worker")
    run.add_argument("-q", "--quiet", action="store_true",
                     help="suppress the rendered tables")

    st = labsub.add_parser("status", help="summarize the latest run")
    st.add_argument("--out-dir", default=DEFAULT_OUT_DIR)

    rp = labsub.add_parser("report",
                           help="render tables from results.json")
    rp.add_argument("--out-dir", default=DEFAULT_OUT_DIR)


def _select_specs(args):
    if args.experiments:
        return [get_spec(name) for name in args.experiments]
    specs = all_specs()
    if args.smoke:
        return [s for s in specs if s.smoke]
    if not getattr(args, "all", False):
        raise SystemExit(
            "lab run: name experiments, or pass --all / --smoke")
    return specs


def _lab_list(args) -> int:
    specs = [s for s in all_specs() if s.smoke or not args.smoke]
    rows = [(s.name, s.artifact, len(s.seeds),
             ",".join(sorted(s.tags)) or "-", f"{s.timeout_s:g}",
             f"{s.module}.{s.func}") for s in specs]
    text, _ = format_table(
        f"{len(specs)} experiment(s)",
        ["id", "paper artifact", "seeds", "tags", "timeout s", "runner"],
        rows)
    print(text)
    return 0


def _lab_run(args) -> int:
    if getattr(args, "sanitize", False):
        # workers inherit the environment, so this covers --jobs > 1 too
        os.environ["REPRO_SANITIZE"] = "1"
        sanitize.refresh()
    specs = _select_specs(args)
    tasks = expand_tasks(specs, smoke=args.smoke,
                         timeout_override=args.timeout)
    out_dir = Path(args.out_dir)
    cache_dir = (Path(args.cache_dir) if args.cache_dir
                 else out_dir.parent / ".lab-cache")
    cache = ResultCache(cache_dir)

    def progress(res) -> None:
        extra = f" ({res.error})" if res.error else ""
        print(f"[{res.status:>7}] {res.task.label} "
              f"{res.duration_s:.2f}s{extra}", file=sys.stderr)

    with RunJournal(out_dir / "journal.jsonl") as journal:
        journal.record("run_start",
                       selection=[s.name for s in specs],
                       smoke=args.smoke, jobs=args.jobs,
                       tasks=len(tasks), use_cache=not args.no_cache)
        results = execute(tasks, jobs=args.jobs, cache=cache,
                          journal=journal, use_cache=not args.no_cache,
                          progress=progress)
        journal.record("run_end", statuses={
            s: sum(1 for r in results if r.status == s)
            for s in sorted({r.status for r in results})})

    payload = results_payload(results, smoke=args.smoke)
    write_results(out_dir / "results.json", payload)
    if not args.quiet:
        print(render_results(payload))
    print(f"\nwrote {out_dir / 'results.json'} "
          f"(journal: {out_dir / 'journal.jsonl'})")
    return 0 if all(r.ok for r in results) else 1


def _lab_status(args) -> int:
    journal_path = Path(args.out_dir) / "journal.jsonl"
    records = read_journal(journal_path)
    if not records:
        print(f"no runs recorded in {journal_path}")
        return 1
    summary = summarize_run(latest_run_records(records))
    print(f"run       : {summary['run_id']}")
    print(f"selection : {summary.get('selection')}")
    print(f"tasks     : {summary['tasks']}")
    print(f"statuses  : {summary['statuses']}")
    print(f"task time : {summary['total_task_s']}s"
          + (f" (wall {summary['wall_s']}s)" if "wall_s" in summary
             else ""))
    print(f"complete  : {summary['complete']}")
    return 0 if summary["complete"] else 1


def _lab_report(args) -> int:
    from .report import read_results

    results_path = Path(args.out_dir) / "results.json"
    if not results_path.exists():
        print(f"no results at {results_path} (run `repro lab run` first)")
        return 1
    print(render_results(read_results(results_path)))
    return 0


def lab_main(args) -> int:
    handlers = {"list": _lab_list, "run": _lab_run,
                "status": _lab_status, "report": _lab_report}
    return handlers[args.lab_command](args)
