"""``repro.lab`` — declarative experiment orchestration.

Every row of EXPERIMENTS.md is a declarative :class:`ExperimentSpec`
(paper artifact, instance parameters, seeds, timeout) in a discoverable
registry; one robust executor runs them process-parallel with per-task
wall-clock timeouts, bounded retries, and a content-addressed result
cache under ``.lab-cache/`` so re-runs are incremental and interrupted
runs resume.  Each run appends a JSONL journal (per-task timings,
algorithm counters, peak RSS, outcome) and writes a deterministic
``results.json`` from which the paper-style tables are rendered.

CLI entry points::

    python -m repro lab list
    python -m repro lab run --smoke -j 4
    python -m repro lab status
    python -m repro lab report
"""

from __future__ import annotations

from .cache import ResultCache, task_key
from .executor import TaskResult, execute
from .journal import RunJournal, read_journal, summarize_run
from .report import format_table, render_results, results_payload
from .spec import (
    ExperimentSpec,
    Task,
    all_specs,
    expand_tasks,
    get_spec,
    load_builtin_specs,
    register,
)

__all__ = [
    "ExperimentSpec",
    "ResultCache",
    "RunJournal",
    "Task",
    "TaskResult",
    "all_specs",
    "execute",
    "expand_tasks",
    "format_table",
    "get_spec",
    "load_builtin_specs",
    "read_journal",
    "register",
    "render_results",
    "results_payload",
    "summarize_run",
    "task_key",
]
