"""Rendering and machine-readable results.

``format_table`` is the single formatting path shared by the legacy
``benchmarks/_util.print_table`` and the lab reporter, so the paper-
style tables look identical whichever harness produced them.

``results_payload``/``write_results`` build ``results.json``.  The file
deliberately contains *only* seed-deterministic content — experiment
ids, parameters, seeds, statuses, and result rows; no timestamps, run
ids, or durations (those live in the JSONL journal).  Serialised with
sorted keys and fixed separators, the file is therefore byte-identical
for any ``--jobs`` value and across interrupted-and-resumed runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from .cache import jsonify

__all__ = ["format_table", "render_results", "results_payload",
           "write_results", "read_results"]

RESULTS_SCHEMA = 1


def format_table(title: str, header: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> tuple[str, list[dict]]:
    """Render a paper-style table.

    Returns the rendered text block and the rendered rows as a list of
    ``{column: formatted value}`` dicts (one per row), so callers that
    need machine-readable output share the exact formatting used for
    display.
    """
    cols = len(header)
    widths = [len(h) for h in header]
    txt_rows: list[list[str]] = []
    for row in rows:
        txt = [f"{x:.4g}" if isinstance(x, float) else str(x) for x in row]
        txt_rows.append(txt)
        for i in range(cols):
            widths[i] = max(widths[i], len(txt[i]))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(header))
    out = [f"\n== {title} ==", line, "-" * len(line)]
    out += ["  ".join(txt[i].ljust(widths[i]) for i in range(cols))
            for txt in txt_rows]
    dict_rows = [dict(zip(header, txt)) for txt in txt_rows]
    return "\n".join(out), dict_rows


def results_payload(results: Sequence, *, smoke: bool = False) -> dict:
    """Build the deterministic ``results.json`` structure.

    ``results`` is a sequence of :class:`~repro.lab.executor.TaskResult`
    in task order.  Cached and freshly-computed results are
    indistinguishable here (both report ``status: "ok"``) — whether a
    value came from the cache is an execution detail for the journal.
    """
    experiments: dict[str, dict] = {}
    for res in results:
        spec = res.task.spec
        exp = experiments.setdefault(spec.name, {
            "artifact": spec.artifact,
            "title": spec.title,
            "tasks": [],
        })
        exp["tasks"].append({
            "seed": res.task.seed,
            "params": jsonify(dict(res.task.params)),
            "key": res.task.key,
            "status": "ok" if res.status == "cached" else res.status,
            "tables": jsonify(res.values) if res.ok else None,
            "error": res.error,
        })
    return {
        "schema": RESULTS_SCHEMA,
        "smoke": smoke,
        "experiments": {k: experiments[k] for k in sorted(experiments)},
    }


def write_results(path: str | Path, payload: dict) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n")


def read_results(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def render_results(payload: dict) -> str:
    """Render every experiment's tables plus a status footer."""
    blocks: list[str] = []
    statuses: dict[str, int] = {}
    for name in sorted(payload.get("experiments", {})):
        exp = payload["experiments"][name]
        for task in exp["tasks"]:
            statuses[task["status"]] = statuses.get(task["status"], 0) + 1
            if task["status"] != "ok":
                blocks.append(f"\n== {name} ({exp['artifact']}) == "
                              f"[{task['status'].upper()}"
                              f"{': ' + task['error'].strip().splitlines()[-1] if task.get('error') else ''}]")
                continue
            for table in task["tables"] or []:
                text, _ = format_table(
                    f"{name} · {table['title']}", table["header"],
                    table["rows"])
                blocks.append(text)
    total = sum(statuses.values())
    footer = ", ".join(f"{v} {k}" for k, v in sorted(statuses.items()))
    blocks.append(f"\n{total} task(s): {footer or 'none'}")
    return "\n".join(blocks)
