"""Process-parallel task execution with timeouts, retries, and caching.

Every task runs in its own worker process (the deterministic
seed-up-front discipline of ``multilevel_partition``'s ``n_jobs``
applied at the harness level): seeds and parameters are fixed at
expansion time, so results are identical for every ``jobs`` value, and
a hung or exploding task can be killed without touching its siblings.

Failure containment:

* **timeout** — a task past its wall-clock budget is terminated and
  recorded as ``status: "timeout"``; the run degrades gracefully
  instead of dying.
* **crash** — a task that raises or is OOM-killed is retried up to
  ``spec.retries`` extra times (transient failures), then recorded as
  ``status: "error"`` with the worker's traceback.
* **interrupt** — results are written by the *workers*, atomically,
  straight into the content-addressed cache; whatever completed before
  a kill is a cache hit on the next run, which is all a resume is.

The worker protocol is filesystem-based on purpose: a result file
either exists completely or not at all, so no partially-pickled queue
state can corrupt a run.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import shutil
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from .. import instrument
from .cache import ResultCache, atomic_write_json, jsonify
from .journal import RunJournal
from .spec import Task, resolve_callable

__all__ = ["TaskResult", "execute", "mp_context", "reap_process",
           "terminate_process"]

_POLL_S = 0.01
_KILL_GRACE_S = 0.5


@dataclass
class TaskResult:
    """Outcome of one task, as seen by the parent process."""

    task: Task
    status: str                     # "ok" | "cached" | "timeout" | "error"
    values: Any = None              # normalised list of table dicts
    duration_s: float = 0.0
    peak_rss_kb: int = 0
    counters: dict = field(default_factory=dict)
    attempts: int = 1
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _normalize_tables(result: Any, title: str,
                      header: Sequence[str] | None) -> list[dict]:
    """Coerce a runner's return value into a list of table dicts."""
    if isinstance(result, dict):
        result = [result]
    if (isinstance(result, list) and result
            and all(isinstance(t, dict) for t in result)):
        return [{"title": t.get("title", title),
                 "header": list(t.get("header") or header or []),
                 "rows": [list(r) for r in t.get("rows", [])]}
                for t in result]
    rows = [list(r) for r in (result or [])]
    return [{"title": title, "header": list(header or []), "rows": rows}]


def reset_inherited_signals() -> None:
    """Detach a fork-started worker from its parent's signal plumbing.

    A worker forked from an asyncio parent inherits the parent's
    Python-level signal handlers *and* its wakeup fd — a dup of the
    event loop's self-pipe.  If such a worker is then SIGTERMed (batch
    reap, deadline kill, cancel-the-loser), CPython's signal trampoline
    writes the signum into that shared pipe and the PARENT's loop
    dispatches its own SIGTERM callback: the server shuts itself down
    because its worker died.  Restoring default dispositions and
    clearing the wakeup fd first thing in the child severs the link.
    """
    import signal

    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):
        pass                        # non-main thread or closed fd
    for sig in (signal.SIGTERM, signal.SIGINT, signal.SIGHUP):
        try:
            signal.signal(sig, signal.SIG_DFL)
        except (ValueError, OSError):
            pass


def _child_main(payload: dict) -> None:
    """Run one task inside a worker process and write its result file.

    Exits 0 iff the result file was written; any failure (including one
    inside the experiment's ``check``) writes a traceback to the error
    file and exits 1.
    """
    reset_inherited_signals()
    out = Path(payload["outfile"])
    err = Path(payload["errfile"])
    try:
        instrument.reset()
        t0 = time.perf_counter()
        fn = resolve_callable(payload["module"], payload["func"])
        result = fn(seed=payload["seed"], **payload["params"])
        if payload.get("check"):
            resolve_callable(payload["module"], payload["check"])(result)
        duration = time.perf_counter() - t0
        try:
            import resource
            rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        except Exception:  # analyze: allow(silent-except) — best-effort metric: resource is POSIX-only and a metrics failure must never fail a finished task
            rss_kb = 0
        atomic_write_json(out, {
            "values": _normalize_tables(result, payload["title"],
                                        payload.get("header")),
            "duration_s": round(duration, 6),
            "peak_rss_kb": int(rss_kb),
            "counters": instrument.snapshot(),
        })
    except BaseException:
        try:
            atomic_write_json(err, {"error": traceback.format_exc()})
        finally:
            os._exit(1)
    os._exit(0)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

def mp_context():
    """Preferred multiprocessing context (``fork`` when available).

    Shared with :mod:`repro.serve.pool`, which runs its batch workers
    through the same context so serving and lab runs behave identically.
    """
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else methods[0])


_mp_context = mp_context  # legacy alias


@dataclass
class _Running:
    task: Task
    proc: mp.process.BaseProcess
    outfile: Path
    errfile: Path
    started: float
    attempts: int


def _spawn(ctx, task: Task, outfile: Path, errfile: Path,
           attempts: int) -> _Running:
    payload = {
        "module": task.spec.module,
        "func": task.spec.func,
        "check": task.spec.check,
        "title": task.spec.title,
        "header": list(task.spec.header) if task.spec.header else None,
        "seed": task.seed,
        "params": dict(task.params),
        "outfile": str(outfile),
        "errfile": str(errfile),
    }
    proc = ctx.Process(target=_child_main, args=(payload,), daemon=True)
    proc.start()
    return _Running(task=task, proc=proc, outfile=outfile, errfile=errfile,
                    started=time.perf_counter(), attempts=attempts)


def reap_process(proc: mp.process.BaseProcess) -> None:
    """Release a *finished* worker's OS resources (sentinel fd, handle).

    Without this, every timed-out task leaked a process object until
    interpreter exit — visible as zombie children and "leaked semaphore"
    warnings under repeated timeouts.  ``close()`` raises if the process
    is still alive, so callers must join first.
    """
    try:
        proc.close()
    except Exception:  # analyze: allow(silent-except) — best-effort cleanup: double-close or a still-racing child must never take down the run
        pass


def terminate_process(proc: mp.process.BaseProcess) -> None:
    """Terminate, fully reap, and close one worker process.

    SIGTERM with a grace period, then SIGKILL with an *unbounded* join:
    after SIGKILL the child is guaranteed to exit, and joining without a
    timeout is what actually reaps the zombie (the old bounded join
    could give up and strand it).
    """
    try:
        proc.terminate()
        proc.join(_KILL_GRACE_S)
        if proc.is_alive():
            proc.kill()
            proc.join()
    except Exception:  # analyze: allow(silent-except) — load-bearing crash isolation: killing an already-dead/zombie worker must not take down the run
        pass
    reap_process(proc)


_terminate = terminate_process  # legacy alias


def _read_result(run: _Running) -> TaskResult | None:
    """Turn a finished worker's files into a TaskResult (None = retry)."""
    import json

    if run.outfile.exists():
        try:
            payload = json.loads(run.outfile.read_text())
        except ValueError:
            payload = None
        if payload is not None:
            return TaskResult(
                task=run.task, status="ok",
                values=payload.get("values"),
                duration_s=payload.get("duration_s", 0.0),
                peak_rss_kb=payload.get("peak_rss_kb", 0),
                counters=payload.get("counters", {}),
                attempts=run.attempts)
    error = None
    if run.errfile.exists():
        try:
            error = json.loads(run.errfile.read_text()).get("error")
        except ValueError:
            pass
        try:
            run.errfile.unlink()
        except OSError:
            pass
    if run.attempts <= run.task.spec.retries:
        return None  # transient failure: retry
    return TaskResult(task=run.task, status="error", attempts=run.attempts,
                      duration_s=time.perf_counter() - run.started,
                      error=error or
                      f"worker exited with code {run.proc.exitcode} "
                      "and no result")


def execute(
    tasks: Sequence[Task],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    journal: RunJournal | None = None,
    use_cache: bool = True,
    progress: Callable[[TaskResult], None] | None = None,
) -> list[TaskResult]:
    """Run ``tasks`` with at most ``jobs`` concurrent worker processes.

    Returns results in the order of ``tasks`` regardless of completion
    order.  Cached results short-circuit without spawning a worker.
    """
    jobs = max(1, int(jobs))
    results: dict[str, TaskResult] = {}
    scratch = Path(tempfile.mkdtemp(prefix="repro-lab-"))
    ctx = _mp_context()

    def emit(res: TaskResult) -> None:
        results[res.task.key] = res
        if journal is not None:
            journal.record(
                "task", spec=res.task.spec.name, seed=res.task.seed,
                key=res.task.key, status=res.status,
                duration_s=round(res.duration_s, 6),
                peak_rss_kb=res.peak_rss_kb,
                counters=jsonify(res.counters),
                attempts=res.attempts,
                error=res.error)
        if progress is not None:
            progress(res)

    pending: list[Task] = []
    for task in tasks:
        hit = cache.get(task.key) if (cache is not None and use_cache) \
            else None
        if hit is not None and "values" in hit:
            emit(TaskResult(task=task, status="cached",
                            values=hit.get("values"),
                            duration_s=hit.get("duration_s", 0.0),
                            peak_rss_kb=hit.get("peak_rss_kb", 0),
                            counters=hit.get("counters", {})))
        else:
            pending.append(task)

    running: list[_Running] = []
    queue = list(pending)
    try:
        while queue or running:
            while queue and len(running) < jobs:
                task = queue.pop(0)
                outfile = (cache.path(task.key) if cache is not None
                           else scratch / f"{task.key}.json")
                errfile = scratch / f"{task.key}.err.json"
                running.append(_spawn(ctx, task, outfile, errfile, 1))
            time.sleep(_POLL_S)
            still: list[_Running] = []
            for run in running:
                elapsed = time.perf_counter() - run.started
                if run.proc.is_alive():
                    if elapsed >= run.task.spec.timeout_s:
                        terminate_process(run.proc)
                        emit(TaskResult(task=run.task, status="timeout",
                                        duration_s=elapsed,
                                        attempts=run.attempts,
                                        error=f"timed out after "
                                              f"{run.task.spec.timeout_s:g}s"
                                        ))
                    else:
                        still.append(run)
                    continue
                run.proc.join()
                res = _read_result(run)
                reap_process(run.proc)
                if res is None:  # retry a transient crash
                    still.append(_spawn(ctx, run.task, run.outfile,
                                        run.errfile, run.attempts + 1))
                else:
                    emit(res)
            running = still
    except BaseException:
        for run in running:
            terminate_process(run.proc)
        if journal is not None:
            journal.record("run_interrupted",
                           completed=len(results), total=len(tasks))
        raise
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    return [results[t.key] for t in tasks]
