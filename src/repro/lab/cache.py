"""Content-addressed result cache.

A task's result is stored under a key that is a SHA-256 of everything
that determines the result: the spec's name and version, the canonical
JSON of its instance parameters, the seed, and a *code fingerprint* —
the bytes of the source file defining the runner (for wrapped legacy
benchmarks that is the ``benchmarks/bench_*.py`` file itself).  Change
a parameter, bump the spec version, or edit the experiment's code and
the key changes: stale entries are simply never looked up again.

Entries are written atomically (temp file + ``os.replace``) by worker
processes, so a cache entry either exists completely or not at all —
this is what makes interrupted runs resumable: whatever finished before
the kill is picked up as a hit on the next run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

__all__ = ["ResultCache", "canonical_json", "jsonify", "task_key"]

DEFAULT_CACHE_DIR = ".lab-cache"


def jsonify(obj: Any) -> Any:
    """Recursively convert a task result into plain JSON-able values.

    Handles the numpy scalars/arrays and tuples that experiment rows
    are naturally built from; anything else must already be JSON-able.
    """
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, Mapping):
        return {str(k): jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        seq = sorted(obj) if isinstance(obj, (set, frozenset)) else obj
        return [jsonify(v) for v in seq]
    # numpy scalars expose item(); arrays expose tolist()
    if hasattr(obj, "item") and getattr(obj, "ndim", None) in (0, None):
        return jsonify(obj.item())
    if hasattr(obj, "tolist"):
        return jsonify(obj.tolist())
    raise TypeError(f"result value {obj!r} ({type(obj).__name__}) is not "
                    "JSON-serialisable")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding used for hashing and results files."""
    return json.dumps(jsonify(obj), sort_keys=True, separators=(",", ":"))


def task_key(spec, params: Mapping[str, Any], seed: int) -> str:
    """Stable content address of one (spec params, seed, code) triple."""
    from .spec import source_path  # deferred: spec.py imports this module

    h = hashlib.sha256()
    h.update(canonical_json({
        "spec": spec.name,
        "version": spec.version,
        "module": spec.module,
        "func": spec.func,
        "check": spec.check,
        "params": params,
        "seed": seed,
    }).encode())
    src = source_path(spec.module)
    if src is not None and src.exists():
        h.update(src.read_bytes())
    return h.hexdigest()


class ResultCache:
    """Filesystem cache mapping task keys to result payloads."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Return the cached payload, or None on miss / corrupt entry."""
        p = self.path(key)
        try:
            return json.loads(p.read_text())
        except (OSError, ValueError):
            return None

    def put(self, key: str, payload: Mapping[str, Any]) -> Path:
        path = self.path(key)
        atomic_write_json(path, payload)
        return path

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()


def atomic_write_json(path: Path, payload: Mapping[str, Any]) -> None:
    """Write JSON so that ``path`` is either complete or absent."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(jsonify(payload), fh, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
