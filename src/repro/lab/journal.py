"""Structured JSONL run journals.

One line per event, flushed and fsynced as it happens so a killed run
leaves a complete record of everything it finished.  Task records carry
wall-clock duration, peak RSS, the algorithm counters snapshotted from
``repro.instrument`` (FM passes, B&B nodes expanded, ...), the attempt
count, and the outcome (``ok`` / ``cached`` / ``timeout`` / ``error``).

The journal is the *observability* channel — timestamps and timings
live here and only here.  ``results.json`` (see ``report.py``) contains
exclusively seed-deterministic values, which is what makes it
byte-identical across ``--jobs`` values and resumed runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

__all__ = ["RunJournal", "read_journal", "latest_run_records",
           "summarize_run"]


class RunJournal:
    """Append-only JSONL writer scoped to one run id."""

    def __init__(self, path: str | os.PathLike, run_id: str | None = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id or time.strftime("%Y%m%d-%H%M%S-") + hex(
            os.getpid())[2:]
        # The serving layer only constructs a journal once, at server
        # start-up — before the event loop serves any traffic — so this
        # one-off open cannot stall an in-flight request.
        self._fh = open(self.path, "a")  # repro: allow[async-blocking] — construction-time open, not on a request path

    def record(self, event: str, **fields: Any) -> dict:
        rec = {"event": event, "run_id": self.run_id,
               "ts": round(time.time(), 3), **fields}
        self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        return rec

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(path: str | os.PathLike) -> list[dict]:
    """Parse a JSONL journal, skipping torn trailing lines."""
    records: list[dict] = []
    p = Path(path)
    if not p.exists():
        return records
    for line in p.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            continue  # torn write from a killed run
    return records


def latest_run_records(records: list[dict]) -> list[dict]:
    """Records of the most recently started run in the journal."""
    if not records:
        return []
    last_run = records[-1].get("run_id")
    return [r for r in records if r.get("run_id") == last_run]


def summarize_run(records: list[dict]) -> dict:
    """Aggregate one run's records into a status summary."""
    tasks = [r for r in records if r.get("event") == "task"]
    statuses: dict[str, int] = {}
    for r in tasks:
        statuses[r.get("status", "?")] = statuses.get(r.get("status", "?"),
                                                      0) + 1
    started = [r for r in records if r.get("event") == "run_start"]
    ended = [r for r in records if r.get("event") == "run_end"]
    out = {
        "run_id": records[-1].get("run_id") if records else None,
        "tasks": len(tasks),
        "statuses": statuses,
        "total_task_s": round(sum(r.get("duration_s", 0.0) or 0.0
                                  for r in tasks), 3),
        "complete": bool(ended),
    }
    if started and ended:
        out["wall_s"] = round(ended[-1]["ts"] - started[0]["ts"], 3)
    if started:
        out["selection"] = started[0].get("selection")
    return out
