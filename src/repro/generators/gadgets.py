"""The paper's gadget zoo (Appendices A, C, D, I).

Every hardness construction in the paper is assembled from a small set of
reusable gadgets:

* **blocks** (Appendix A): ``b`` nodes, ``b`` hyperedges of size ``b−1``
  each omitting one node.  Splitting a block costs at least ``b−1``
  (Lemma A.5) — blocks are "essentially unsplittable".
* **strong blocks** (Appendix D.1): every subset of at least ``b−h−2``
  nodes is a hyperedge; splitting costs at least ``C(b−1, h+1)``.  Needed
  when the surrounding construction has ``ω(n)`` hyperedges.
* **grid gadgets** (Definition C.2): an ``ℓ×ℓ`` grid whose rows and
  columns are hyperedges.  Each node has degree 2; ``t`` minority-colour
  nodes force a cut cost of at least ``√t`` (Lemma C.3).
* **extended grids** (Appendix C.2): grid plus up to ``ℓ`` *outsider*
  nodes, the ``i``-th joining the ``i``-th row hyperedge, keeping Δ = 2.
* **two-level hyperDAG blocks** (Lemma B.3 / Appendix I.1): a first group
  of generators wired to a large second group, giving an unsplittable
  gadget that is a valid hyperDAG.
* **fixed-colour constraint paddings** (Lemma D.2 and its ``k ≥ 3``
  generalisation in Appendix D.6): given a set ``S``, how many fixed
  nodes of each colour to add so a single balance constraint enforces
  "at most/at least/exactly ``h`` red nodes in ``S``".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from itertools import combinations

from ..core.balance import balance_threshold
from ..core.hypergraph import Hypergraph
from ..errors import InfeasibleError, ProblemTooLargeError

__all__ = [
    "block",
    "strong_block",
    "grid_gadget",
    "grid_node",
    "extended_grid",
    "two_level_block",
    "BoundMode",
    "ConstraintPadding",
    "constraint_padding",
]


def block(size: int) -> Hypergraph:
    """A block of ``size ≥ 2`` nodes (Appendix A).

    ``b`` hyperedges of size ``b−1``; hyperedge ``i`` omits node ``i``.
    By Lemma A.5 any partitioning splitting the block costs ≥ ``b−1``
    (for ``b ≥ 3``; at ``b = 2`` the hyperedges degenerate to singletons
    that can never be cut).
    """
    if size < 2:
        raise ValueError("block size must be >= 2")
    edges = [tuple(v for v in range(size) if v != i) for i in range(size)]
    return Hypergraph(size, edges, name=f"block-{size}")


def strong_block(size: int, h: int, max_edges: int = 200_000) -> Hypergraph:
    """Strong block (Appendix D.1): every subset of ``≥ size−h−2`` nodes
    is a hyperedge.  Splitting the block then costs at least
    ``C(size−1, h+1)``, which beats any construction with ``O(n^h)``
    hyperedges.  Exponential in ``h`` — guarded by ``max_edges``.
    """
    if size < 2:
        raise ValueError("strong block size must be >= 2")
    if h < 0:
        raise ValueError("h must be >= 0")
    lo = max(size - h - 2, 1)
    count = sum(math.comb(size, s) for s in range(lo, size + 1))
    if count > max_edges:
        raise ProblemTooLargeError(
            f"strong_block({size}, {h}) would create {count} hyperedges"
        )
    edges = [
        subset
        for s in range(lo, size + 1)
        for subset in combinations(range(size), s)
    ]
    return Hypergraph(size, edges, name=f"strong-block-{size}-{h}")


def grid_node(ell: int, row: int, col: int) -> int:
    """Node id of grid cell (row, col) in an ``ℓ×ℓ`` grid gadget."""
    return row * ell + col


def grid_gadget(ell: int) -> Hypergraph:
    """Grid gadget (Definition C.2): ``ℓ²`` nodes; each row and each
    column is a hyperedge of size ℓ.  Every node has degree exactly 2;
    ``t₀`` minority-colour occurrences force cut cost ≥ ``√t₀``
    (Lemma C.3)."""
    if ell < 1:
        raise ValueError("grid side must be >= 1")
    rows = [tuple(grid_node(ell, r, c) for c in range(ell)) for r in range(ell)]
    cols = [tuple(grid_node(ell, r, c) for r in range(ell)) for c in range(ell)]
    return Hypergraph(ell * ell, rows + cols, name=f"grid-{ell}")


def extended_grid(ell: int, num_outsiders: int) -> tuple[Hypergraph, tuple[int, ...]]:
    """Extended grid (Appendix C.2): grid gadget plus ``ℓ₀ ≤ ℓ``
    outsider nodes; the ``i``-th outsider joins the ``i``-th *row*
    hyperedge.  All degrees stay ≤ 2 (outsiders have degree 1 here and
    may pick up one more incident hyperedge in the host construction).

    Returns ``(hypergraph, outsider_node_ids)``.
    """
    if not 0 <= num_outsiders <= ell:
        raise ValueError("need 0 <= num_outsiders <= ell")
    base = ell * ell
    outsiders = tuple(range(base, base + num_outsiders))
    rows = []
    for r in range(ell):
        pins = [grid_node(ell, r, c) for c in range(ell)]
        if r < num_outsiders:
            pins.append(outsiders[r])
        rows.append(tuple(pins))
    cols = [tuple(grid_node(ell, r, c) for r in range(ell)) for c in range(ell)]
    g = Hypergraph(base + num_outsiders, rows + cols,
                   name=f"extended-grid-{ell}+{num_outsiders}")
    return g, outsiders


def two_level_block(b0: int, b1: int) -> tuple[Hypergraph, tuple[int, ...], tuple[int, ...]]:
    """Two-level hyperDAG block (Lemma B.3 style, Appendix I.1).

    A first group of ``b0`` generator nodes and a second group of ``b1``
    nodes; ``b0`` hyperedges, the ``i``-th containing first-group node
    ``i`` and the entire second group.  The gadget is a valid hyperDAG
    (each first-group node generates its hyperedge) and splitting the
    second group across parts cuts at least ``b0`` hyperedges... while
    splitting off second-group nodes costs ≥ b0 per Lemma A.5-style
    arguments when ``b0`` is large.

    Returns ``(hypergraph, first_group_ids, second_group_ids)``.
    """
    if b0 < 1 or b1 < 1:
        raise ValueError("group sizes must be >= 1")
    first = tuple(range(b0))
    second = tuple(range(b0, b0 + b1))
    edges = [tuple([i, *second]) for i in first]
    g = Hypergraph(b0 + b1, edges, name=f"two-level-block-{b0}-{b1}")
    return g, first, second


# ---------------------------------------------------------------------------
# Lemma D.2 constraint paddings
# ---------------------------------------------------------------------------

class BoundMode(str, Enum):
    """What a constraint padding enforces about red nodes in ``S``."""

    AT_MOST = "at-most"
    AT_LEAST = "at-least"
    EXACTLY = "exactly"


@dataclass(frozen=True)
class ConstraintPadding:
    """Fixed-colour node counts realising Lemma D.2 / Appendix D.6.

    Adding ``fixed_counts[i]`` nodes of fixed colour ``i`` to the set
    ``S`` creates a single balance-constraint set ``V₀`` of size
    ``total_size`` that is satisfied iff the number of red (colour-0)
    nodes inside ``S`` respects ``mode``/``h``.  For ``EXACTLY`` and
    ``AT_LEAST``, ``S`` must contain only red/blue nodes (the paper's
    setting); ``AT_MOST`` tolerates arbitrary colours in ``S``.
    """

    s_size: int
    h: int
    k: int
    eps: float
    mode: BoundMode
    fixed_counts: tuple[int, ...]

    @property
    def total_size(self) -> int:
        return self.s_size + sum(self.fixed_counts)

    @property
    def cap(self) -> int:
        """The balance threshold of the padded set."""
        return balance_threshold(self.total_size, self.k, self.eps)

    def satisfied(self, red_in_s: int, blue_in_s: int | None = None) -> bool:
        """Whether the padded constraint holds for a colouring of ``S``.

        ``blue_in_s`` defaults to ``s_size − red_in_s`` (two-colour S).
        """
        if blue_in_s is None:
            blue_in_s = self.s_size - red_in_s
        others = self.s_size - red_in_s - blue_in_s
        if red_in_s < 0 or blue_in_s < 0 or others < 0:
            raise ValueError("inconsistent colour counts")
        counts = list(self.fixed_counts)
        counts[0] += red_in_s
        if self.k >= 2:
            counts[1] += blue_in_s
        # Remaining colours: worst case puts all "other" nodes on the
        # largest remaining colour; for checking an actual colouring with
        # two colours in S (others == 0) this is exact.
        if others:
            if self.k < 3:
                raise ValueError("more colours used than k allows")
            counts[2] += others
        return max(counts) <= self.cap


def _candidate(s_size: int, h: int, k: int, eps: float, mode: BoundMode,
               m: int, min_counts: tuple[int, ...] | None = None,
               ) -> tuple[int, ...] | None:
    """Try to build fixed counts for total padded size ``m``; None if the
    arithmetic does not work out at this size."""
    cap = balance_threshold(m, k, eps)
    fixed_total = m - s_size
    if fixed_total < 0:
        return None

    def meets_min(counts: tuple[int, ...]) -> tuple[int, ...] | None:
        if min_counts is not None and any(
                c < lo for c, lo in zip(counts, min_counts)):
            return None
        return counts
    if mode == BoundMode.AT_MOST:
        red = cap - h
        if red < 0 or red > fixed_total:
            return None
        rest = fixed_total - red
        base, extra = divmod(rest, k - 1) if k > 1 else (0, 0)
        counts = [red] + [base + (1 if i < extra else 0) for i in range(k - 1)]
        # Validity: r = h must satisfy, r = h+1 must violate (if possible),
        # and no other colour may ever violate regardless of S's colours.
        if red + h > cap:
            return None
        if h + 1 <= s_size and red + h + 1 <= cap:
            return None
        if any(c + s_size > cap for c in counts[1:]):
            return None
        return meets_min(tuple(counts))
    if mode == BoundMode.AT_LEAST:
        # "at least h red" == "at most s_size - h blue" for two-colour S:
        # pad so blue is capped at s_size − h and red can absorb all of S.
        blue = cap - (s_size - h)
        if blue < 0 or blue > fixed_total:
            return None
        rest = fixed_total - blue
        base, extra = divmod(rest, k - 1) if k > 1 else (0, 0)
        counts = [base + (1 if i < extra else 0) for i in range(k - 1)]
        counts = [counts[0], blue] + counts[1:]
        if blue + (s_size - h) > cap:
            return None
        if s_size - h + 1 <= s_size and blue + (s_size - h) + 1 <= cap:
            return None
        if counts[0] + s_size > cap:
            return None
        if any(c + s_size > cap for c in counts[2:]):
            return None
        return meets_min(tuple(counts))
    # EXACTLY (the ε = 0 flavour; also valid for ε > 0 when it happens
    # to pin both colours): red fixed = cap − h, blue fixed = cap − (s−h),
    # all other colours exactly cap.
    red = cap - h
    blue = cap - (s_size - h)
    others_each = cap
    need = red + blue + (k - 2) * others_each
    if red < 0 or blue < 0 or need != fixed_total:
        return None
    if k * cap != m:  # exact mode requires the threshold to be tight
        return None
    counts = [red, blue] + [others_each] * (k - 2)
    return meets_min(tuple(counts))


def constraint_padding(s_size: int, h: int, k: int = 2, eps: float = 0.0,
                       mode: BoundMode = BoundMode.AT_MOST,
                       max_total: int | None = None,
                       min_counts: tuple[int, ...] | None = None,
                       ) -> ConstraintPadding:
    """Compute a Lemma D.2 padding for a set of ``s_size`` nodes.

    Searches the smallest total set size ``m`` for which the fixed-count
    arithmetic of Lemma D.2 (and its Appendix D.6 generalisation to
    ``k ≥ 3``) works out, and returns the resulting padding.

    ``min_counts`` requests at least that many fixed nodes per colour —
    the paper's variant "where V₀ already contains a predetermined
    number of occurrences of both colours" (after Lemma D.2), used by
    the layer-wise constructions whose layers carry path/control nodes.

    Raises
    ------
    InfeasibleError
        If no valid padding exists below ``max_total`` (e.g. ``EXACTLY``
        with ``ε > 0`` thresholds that never become tight).
    """
    if not 0 <= h <= s_size:
        raise ValueError("need 0 <= h <= s_size")
    if k < 2:
        raise ValueError("k must be >= 2")
    if eps >= k - 1:
        # Section 3.1: the paper assumes ε < k − 1, otherwise the balance
        # constraint is vacuous and cannot enforce anything.
        raise ValueError(f"need eps < k - 1 (got eps={eps}, k={k})")
    if eps == 0.0 and mode != BoundMode.EXACTLY:
        # With ε = 0 the threshold is tight; AT_MOST/AT_LEAST still work
        # (the search below finds them) but the paper uses EXACTLY there.
        pass
    if max_total is None:
        base = (s_size + h + 2) * k
        if min_counts is not None:
            base += sum(min_counts)
        max_total = max(64, int(base * (4 + 4 / max(eps, 0.25))))
    for m in range(s_size + 1, max_total + 1):
        counts = _candidate(s_size, h, k, eps, mode, m, min_counts)
        if counts is not None:
            return ConstraintPadding(s_size, h, k, eps, mode, counts)
    raise InfeasibleError(
        f"no Lemma D.2 padding found for s={s_size}, h={h}, k={k}, "
        f"eps={eps}, mode={mode} up to total size {max_total}"
    )
