"""Named workload factory shared by the CLI and the serving layer.

``repro generate`` (offline, writes an ``.hgr`` file) and ``repro.serve``
(online, builds the instance inside a worker) accept the same workload
names; this module is the single dispatch point so the two entry points
cannot drift apart.
"""

from __future__ import annotations

from ..core.hypergraph import Hypergraph
from ..errors import ServeProtocolError

__all__ = ["WORKLOAD_KINDS", "make_workload"]

WORKLOAD_KINDS = (
    "random",
    "planted",
    "spmv-random",
    "spmv-banded",
    "spmv-laplacian2d",
    "spmv-blockdiag",
    "hyperdag-fft",
    "hyperdag-stencil",
    "grid-gadget",
)


def make_workload(kind: str, *, n: int = 100, k: int = 4,
                  density: float = 0.05, seed: int = 0) -> Hypergraph:
    """Build the named workload hypergraph.

    ``n`` is the size parameter (nodes / grid side / stages), ``k`` the
    number of planted parts (``planted`` / ``spmv-blockdiag`` only),
    ``density`` the nonzero density (``spmv-random`` only).
    """
    n, k, seed = int(n), int(k), int(seed)
    if n <= 0:
        raise ServeProtocolError(f"workload size n must be positive, got {n}")
    if k <= 0:
        raise ServeProtocolError(f"workload parts k must be positive, got {k}")
    if kind == "random":
        from .random_hypergraphs import random_hypergraph
        return random_hypergraph(n, int(1.5 * n), rng=seed)
    if kind == "planted":
        from .random_hypergraphs import planted_partition_hypergraph
        graph, _ = planted_partition_hypergraph(
            n, k, 3 * n, max(1, n // 10), rng=seed)
        return graph
    if kind == "spmv-random":
        from .spmv import random_sparse_pattern, spmv_fine_grain
        return spmv_fine_grain(random_sparse_pattern(n, n, float(density),
                                                     rng=seed))
    if kind == "spmv-banded":
        from .matrices import banded_pattern
        from .spmv import spmv_fine_grain
        return spmv_fine_grain(banded_pattern(n, 2))
    if kind == "spmv-laplacian2d":
        from .matrices import laplacian_2d_pattern
        from .spmv import spmv_fine_grain
        return spmv_fine_grain(laplacian_2d_pattern(n))
    if kind == "spmv-blockdiag":
        from .matrices import block_diagonal_pattern
        from .spmv import spmv_fine_grain
        return spmv_fine_grain(block_diagonal_pattern(
            k, max(2, n // k), coupling=max(1, n // 10), rng=seed))
    if kind == "hyperdag-fft":
        from ..core import hyperdag_from_dag
        from .workloads import butterfly_dag
        graph, _ = hyperdag_from_dag(butterfly_dag(n))
        return graph
    if kind == "hyperdag-stencil":
        from ..core import hyperdag_from_dag
        from .workloads import stencil_1d_dag
        graph, _ = hyperdag_from_dag(stencil_1d_dag(n, max(2, n // 4)))
        return graph
    if kind == "grid-gadget":
        from .gadgets import grid_gadget
        return grid_gadget(n)
    raise ServeProtocolError(
        f"unknown workload kind {kind!r}; known: {', '.join(WORKLOAD_KINDS)}")
