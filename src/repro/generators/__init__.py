"""Workload and gadget generators (paper Appendices A, C, D; Section 3)."""

from .gadgets import (
    BoundMode,
    ConstraintPadding,
    block,
    constraint_padding,
    extended_grid,
    grid_gadget,
    grid_node,
    strong_block,
    two_level_block,
)
from .factory import WORKLOAD_KINDS, make_workload
from .matrices import (
    arrow_pattern,
    banded_pattern,
    block_diagonal_pattern,
    laplacian_2d_pattern,
)
from .random_dags import (
    chain_graph,
    level_order_dag,
    random_bounded_height_dag,
    random_dag,
    random_layered_dag,
    random_out_tree,
)
from .random_hypergraphs import (
    planted_partition_hypergraph,
    random_hypergraph,
    random_uniform_hypergraph,
)
from .streaming import (
    streaming_planted_hypergraph,
    streaming_uniform_hypergraph,
)
from .spmv import (
    SparsePattern,
    has_bipartite_edge_property,
    random_sparse_pattern,
    spmv_fine_grain,
)
from .workloads import butterfly_dag, grid_dag, reduction_tree_dag, stencil_1d_dag

__all__ = [
    "BoundMode",
    "ConstraintPadding",
    "SparsePattern",
    "WORKLOAD_KINDS",
    "make_workload",
    "arrow_pattern",
    "banded_pattern",
    "block",
    "block_diagonal_pattern",
    "butterfly_dag",
    "laplacian_2d_pattern",
    "chain_graph",
    "constraint_padding",
    "extended_grid",
    "grid_dag",
    "grid_gadget",
    "grid_node",
    "has_bipartite_edge_property",
    "level_order_dag",
    "planted_partition_hypergraph",
    "random_bounded_height_dag",
    "random_dag",
    "random_hypergraph",
    "random_layered_dag",
    "random_out_tree",
    "random_sparse_pattern",
    "random_uniform_hypergraph",
    "reduction_tree_dag",
    "spmv_fine_grain",
    "stencil_1d_dag",
    "streaming_planted_hypergraph",
    "streaming_uniform_hypergraph",
    "strong_block",
    "two_level_block",
]
