"""Structured computational-DAG workloads.

The introduction motivates partitioning by manycore scheduling of real
computations; these generators produce the classic shapes: reduction
trees, FFT butterflies, and stencil sweeps.
"""

from __future__ import annotations

from ..core.dag import DAG

__all__ = ["reduction_tree_dag", "butterfly_dag", "stencil_1d_dag",
           "grid_dag"]


def reduction_tree_dag(num_leaves: int) -> DAG:
    """Binary reduction tree: ``num_leaves`` inputs pairwise combined
    until one result remains.  All internal nodes have indegree 2, so the
    hyperDAG has Δ ≤ 3 (Section 3.2)."""
    if num_leaves < 1:
        raise ValueError("num_leaves must be >= 1")
    edges = []
    frontier = list(range(num_leaves))
    next_id = num_leaves
    while len(frontier) > 1:
        new_frontier = []
        for i in range(0, len(frontier) - 1, 2):
            edges.append((frontier[i], next_id))
            edges.append((frontier[i + 1], next_id))
            new_frontier.append(next_id)
            next_id += 1
        if len(frontier) % 2:
            new_frontier.append(frontier[-1])
        frontier = new_frontier
    return DAG(next_id, edges)


def butterfly_dag(stages: int) -> DAG:
    """FFT butterfly on ``2^stages`` lanes with ``stages`` rounds.

    Node ``(s, i)`` combines the stage-``s−1`` values of lanes ``i`` and
    ``i XOR 2^(s−1)``; indegree 2 everywhere past stage 0.
    """
    if stages < 0:
        raise ValueError("stages must be >= 0")
    width = 1 << stages
    def node(stage: int, lane: int) -> int:
        return stage * width + lane
    edges = []
    for s in range(1, stages + 1):
        stride = 1 << (s - 1)
        for lane in range(width):
            edges.append((node(s - 1, lane), node(s, lane)))
            edges.append((node(s - 1, lane ^ stride), node(s, lane)))
    return DAG((stages + 1) * width, edges)


def stencil_1d_dag(width: int, steps: int) -> DAG:
    """1-D three-point stencil: cell ``(t, x)`` depends on
    ``(t−1, x−1..x+1)``."""
    if width < 1 or steps < 0:
        raise ValueError("need width >= 1 and steps >= 0")
    def node(t: int, x: int) -> int:
        return t * width + x
    edges = []
    for t in range(1, steps + 1):
        for x in range(width):
            for dx in (-1, 0, 1):
                if 0 <= x + dx < width:
                    edges.append((node(t - 1, x + dx), node(t, x)))
    return DAG((steps + 1) * width, edges)


def grid_dag(rows: int, cols: int) -> DAG:
    """Wavefront/grid DAG: cell ``(i, j)`` depends on ``(i−1, j)`` and
    ``(i, j−1)`` (dynamic-programming table shape)."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    def node(i: int, j: int) -> int:
        return i * cols + j
    edges = []
    for i in range(rows):
        for j in range(cols):
            if i:
                edges.append((node(i - 1, j), node(i, j)))
            if j:
                edges.append((node(i, j - 1), node(i, j)))
    return DAG(rows * cols, edges)
