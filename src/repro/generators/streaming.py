"""Streaming CSR-native generators for million-pin instances.

The list-of-tuples generators in :mod:`.random_hypergraphs` spend a
Python loop (and a Python tuple) per hyperedge, which tops out around
10^5 pins before generation dominates the benchmark it feeds.  The
generators here draw every edge of a batch at once with vectorised
rejection sampling and write straight into normalised CSR arrays, so a
10^7-pin instance materialises in seconds without ever holding a Python
pin list.  ``Hypergraph.from_csr(..., copy=False)`` then adopts the
buffers zero-copy — the same arrays later land in shared memory for the
parallel V-cycle (see :mod:`repro.core.shm`).

Determinism: every draw flows from the caller's seed through one
``np.random.Generator``; resampling loops are data-dependent but their
draw order is fixed by the instance, so the same seed always yields the
same CSR bytes.
"""

from __future__ import annotations

import numpy as np

from ..core.hypergraph import Hypergraph

__all__ = [
    "streaming_uniform_hypergraph",
    "streaming_planted_hypergraph",
]

# Resampling a row whose pins collided converges geometrically (the
# collision probability per row is ~size^2 / 2n); the cap only guards
# degenerate parameter choices like edge_size ~ n.
_MAX_RESAMPLE_ROUNDS = 64


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _distinct_rows(gen: np.random.Generator, m: int, size: int,
                   low: np.ndarray | int, high: np.ndarray | int,
                   ) -> np.ndarray:
    """``m`` rows of ``size`` distinct ints, row i drawn from
    ``[low_i, high_i)``, fully vectorised rejection sampling."""
    lo = np.broadcast_to(np.asarray(low, dtype=np.int64), (m,))
    hi = np.broadcast_to(np.asarray(high, dtype=np.int64), (m,))
    rows = gen.integers(lo[:, None], hi[:, None], size=(m, size))
    rows.sort(axis=1)
    for _ in range(_MAX_RESAMPLE_ROUNDS):
        bad = np.flatnonzero((rows[:, 1:] == rows[:, :-1]).any(axis=1))
        if bad.size == 0:
            return rows
        fresh = gen.integers(lo[bad, None], hi[bad, None],
                             size=(bad.size, size))
        fresh.sort(axis=1)
        rows[bad] = fresh
    raise ValueError(
        f"could not draw {size} distinct pins per edge from ranges as "
        f"narrow as {int((hi - lo).min())} — edge size too close to the "
        "part size")


def streaming_uniform_hypergraph(
    n: int,
    m: int,
    edge_size: int,
    rng: int | np.random.Generator | None = None,
) -> Hypergraph:
    """``m`` hyperedges of exactly ``edge_size`` distinct uniform pins,
    built directly into CSR arrays (no Python pin lists).

    Equivalent in distribution to
    :func:`~repro.generators.random_hypergraphs.random_uniform_hypergraph`
    but ~100x faster above 10^5 pins and O(pins) in memory.
    """
    if edge_size > n:
        raise ValueError("edge_size cannot exceed n")
    gen = _rng(rng)
    rows = _distinct_rows(gen, int(m), int(edge_size), 0, int(n))
    ptr = np.arange(0, (m + 1) * edge_size, edge_size, dtype=np.int64)
    return Hypergraph.from_csr(
        n, ptr, rows.reshape(-1), copy=False,
        name=f"stream-uniform-{n}-{m}-{edge_size}")


def streaming_planted_hypergraph(
    n: int,
    k: int,
    m_intra: int,
    m_inter: int,
    edge_size: int = 3,
    rng: int | np.random.Generator | None = None,
) -> tuple[Hypergraph, np.ndarray]:
    """A million-pin-scale planted k-way instance, CSR-direct.

    Same contract as
    :func:`~repro.generators.random_hypergraphs.planted_partition_hypergraph`:
    ``m_intra`` edges draw all pins inside one random part, ``m_inter``
    edges draw uniformly, and the returned planted labelling certifies
    an upper bound of ``m_inter`` on the optimal cut.  Parts are the
    contiguous blocks of a seeded permutation, so intra-part sampling is
    a range draw mapped through the permutation — no per-part Python
    loop.
    """
    if k < 2 or n < k * edge_size:
        raise ValueError("need k >= 2 and n >= k * edge_size")
    gen = _rng(rng)
    perm = gen.permutation(n)
    # node perm[j] belongs to the part owning slot j; parts are the k
    # near-equal contiguous slot blocks
    bounds = np.linspace(0, n, k + 1).astype(np.int64)
    labels = np.empty(n, dtype=np.int64)
    labels[perm] = np.searchsorted(bounds, np.arange(n), side="right") - 1
    m_intra, m_inter = int(m_intra), int(m_inter)
    part = gen.integers(0, k, size=m_intra)
    intra = _distinct_rows(gen, m_intra, int(edge_size),
                           bounds[part], bounds[part + 1])
    inter = _distinct_rows(gen, m_inter, int(edge_size), 0, int(n))
    slots = np.concatenate([intra, inter]).reshape(-1)
    pins = perm[slots].reshape(-1, edge_size)
    pins.sort(axis=1)
    ptr = np.arange(0, (m_intra + m_inter + 1) * edge_size, edge_size,
                    dtype=np.int64)
    g = Hypergraph.from_csr(n, ptr, pins.reshape(-1), copy=False,
                            name=f"stream-planted-{n}-{k}")
    return g, labels
