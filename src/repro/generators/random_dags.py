"""Random computational-DAG generators.

Includes the special DAG classes of Appendix F for which the basic
scheduling problem is polynomial: chain graphs, out-trees, level-order
DAGs, and bounded-height DAGs.
"""

from __future__ import annotations

import numpy as np

from ..core.dag import DAG

__all__ = [
    "random_dag",
    "random_layered_dag",
    "random_out_tree",
    "chain_graph",
    "level_order_dag",
    "random_bounded_height_dag",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_dag(
    n: int,
    edge_prob: float = 0.2,
    rng: int | np.random.Generator | None = None,
    max_in_degree: int | None = None,
) -> DAG:
    """Uniform upper-triangular random DAG.

    ``max_in_degree`` caps indegrees (Section 3.2 notes computational
    DAGs often have constant indegree, e.g. 2 for binary operations).
    """
    gen = _rng(rng)
    edges = []
    indeg = np.zeros(n, dtype=np.int64)
    for v in range(n):
        for u in range(v):
            if max_in_degree is not None and indeg[v] >= max_in_degree:
                break
            if gen.random() < edge_prob:
                edges.append((u, v))
                indeg[v] += 1
    return DAG(n, edges)


def random_layered_dag(
    layer_sizes: list[int],
    edge_prob: float = 0.5,
    rng: int | np.random.Generator | None = None,
) -> DAG:
    """Random DAG with fixed layer sizes; edges go between consecutive
    layers with probability ``edge_prob``, and each non-first-layer node
    is guaranteed at least one predecessor (so ASAP layering equals the
    intended one)."""
    gen = _rng(rng)
    offsets = np.cumsum([0] + list(layer_sizes))
    n = int(offsets[-1])
    edges = []
    for i in range(len(layer_sizes) - 1):
        prev = range(offsets[i], offsets[i + 1])
        cur = range(offsets[i + 1], offsets[i + 2])
        for v in cur:
            preds = [u for u in prev if gen.random() < edge_prob]
            if not preds:
                preds = [int(gen.choice(list(prev)))]
            edges.extend((u, v) for u in preds)
    return DAG(n, edges)


def random_out_tree(
    n: int,
    rng: int | np.random.Generator | None = None,
) -> DAG:
    """Random out-tree (every node has indegree ≤ 1, Appendix F): node
    ``v > 0`` attaches below a uniformly random earlier node."""
    gen = _rng(rng)
    edges = [(int(gen.integers(v)), v) for v in range(1, n)]
    return DAG(n, edges)


def chain_graph(lengths: list[int]) -> DAG:
    """Disjoint directed paths (chain graph, Appendix F)."""
    return DAG.disjoint_union([DAG.path(length) for length in lengths])


def level_order_dag(layer_sizes: list[int]) -> DAG:
    """A single-component level-order DAG (Appendix F): every node of
    layer ``j`` has an edge to every node of layer ``j+1``."""
    offsets = np.cumsum([0] + list(layer_sizes))
    n = int(offsets[-1])
    edges = []
    for i in range(len(layer_sizes) - 1):
        for u in range(offsets[i], offsets[i + 1]):
            for v in range(offsets[i + 1], offsets[i + 2]):
                edges.append((u, v))
    return DAG(n, edges)


def random_bounded_height_dag(
    n: int,
    height: int,
    edge_prob: float = 0.4,
    rng: int | np.random.Generator | None = None,
) -> DAG:
    """Random DAG whose longest path has at most ``height`` nodes
    (bounded-height class, Appendix F)."""
    if height < 1:
        raise ValueError("height must be >= 1")
    gen = _rng(rng)
    level = gen.integers(0, height, size=n)
    edges = []
    for v in range(n):
        for u in range(v):
            if level[u] < level[v] and gen.random() < edge_prob:
                edges.append((u, v))
    d = DAG(n, edges)
    assert d.longest_path_length() <= height
    return d
