"""Structured sparse-matrix patterns for realistic SpMV workloads.

The paper's motivating application partitions SpMV computations [30];
random patterns miss the structure real solvers see.  These generators
produce the classic shapes: banded systems, 2-D finite-difference
Laplacians, block-diagonal systems with coupling, and arrow matrices.
All return :class:`~repro.generators.spmv.SparsePattern` for use with
:func:`~repro.generators.spmv.spmv_fine_grain`.
"""

from __future__ import annotations

import numpy as np

from .spmv import SparsePattern

__all__ = ["banded_pattern", "laplacian_2d_pattern",
           "block_diagonal_pattern", "arrow_pattern"]


def banded_pattern(n: int, bandwidth: int = 1) -> SparsePattern:
    """Banded n×n matrix: nonzeros within ``|i−j| ≤ bandwidth``
    (``bandwidth=1`` is tridiagonal)."""
    if n < 1 or bandwidth < 0:
        raise ValueError("need n >= 1 and bandwidth >= 0")
    rows, cols = [], []
    for i in range(n):
        for j in range(max(0, i - bandwidth), min(n, i + bandwidth + 1)):
            rows.append(i)
            cols.append(j)
    return SparsePattern(n, n, tuple(rows), tuple(cols))


def laplacian_2d_pattern(grid: int) -> SparsePattern:
    """5-point stencil Laplacian of a ``grid × grid`` mesh
    (n = grid², the canonical PDE system matrix)."""
    if grid < 1:
        raise ValueError("grid must be >= 1")
    n = grid * grid
    rows, cols = [], []

    def idx(r: int, c: int) -> int:
        return r * grid + c

    for r in range(grid):
        for c in range(grid):
            i = idx(r, c)
            rows.append(i)
            cols.append(i)
            for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                rr, cc = r + dr, c + dc
                if 0 <= rr < grid and 0 <= cc < grid:
                    rows.append(i)
                    cols.append(idx(rr, cc))
    return SparsePattern(n, n, tuple(rows), tuple(cols))


def block_diagonal_pattern(num_blocks: int, block_size: int,
                           coupling: int = 0,
                           rng: int | np.random.Generator | None = None,
                           ) -> SparsePattern:
    """Dense diagonal blocks plus ``coupling`` random off-block
    nonzeros — the shape of domain-decomposed systems.  A partitioner
    should recover the blocks; the coupling entries bound the cut."""
    if num_blocks < 1 or block_size < 1 or coupling < 0:
        raise ValueError("bad parameters")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    n = num_blocks * block_size
    seen: set[tuple[int, int]] = set()
    for b in range(num_blocks):
        base = b * block_size
        for i in range(block_size):
            for j in range(block_size):
                seen.add((base + i, base + j))
    added = 0
    while added < coupling:
        i = int(gen.integers(n))
        j = int(gen.integers(n))
        if i // block_size != j // block_size and (i, j) not in seen:
            seen.add((i, j))
            added += 1
    items = sorted(seen)
    return SparsePattern(n, n, tuple(i for i, _ in items),
                         tuple(j for _, j in items))


def arrow_pattern(n: int) -> SparsePattern:
    """Arrow matrix: dense first row and column plus the diagonal — a
    worst case for 1-D distributions (every row/column hyperedge meets
    node 0's row/column)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    seen: set[tuple[int, int]] = set()
    for i in range(n):
        seen.add((i, i))
        seen.add((0, i))
        seen.add((i, 0))
    items = sorted(seen)
    return SparsePattern(n, n, tuple(i for i, _ in items),
                         tuple(j for _, j in items))
