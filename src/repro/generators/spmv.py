"""SpMV fine-grain hypergraphs (paper Sections 3.2 and 4; reference [30]).

The fine-grain model of a sparse matrix ``A`` creates one node per
nonzero; the nonzeros of each row form a hyperedge and the nonzeros of
each column form a hyperedge.  Every node then has degree exactly 2, and
the hyperedges split into two classes (rows / columns) that are each
pairwise disjoint — the "2-regular bipartite-property" hypergraphs of
Knigge & Bisseling [30] to which the paper's Δ = 2 hardness result
carries over.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypergraph import Hypergraph

__all__ = ["SparsePattern", "random_sparse_pattern", "spmv_fine_grain",
           "has_bipartite_edge_property"]


@dataclass(frozen=True)
class SparsePattern:
    """Sparsity pattern of a matrix: parallel coordinate arrays."""

    num_rows: int
    num_cols: int
    rows: tuple[int, ...]
    cols: tuple[int, ...]

    @property
    def nnz(self) -> int:
        return len(self.rows)


def random_sparse_pattern(
    num_rows: int,
    num_cols: int,
    density: float,
    rng: int | np.random.Generator | None = None,
) -> SparsePattern:
    """Uniform random sparsity pattern with expected ``density`` fill,
    with at least one nonzero per row and per column (so every hyperedge
    of the fine-grain model is nonempty)."""
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    mask = gen.random((num_rows, num_cols)) < density
    # Guarantee nonempty rows and columns.
    for r in range(num_rows):
        if not mask[r].any():
            mask[r, int(gen.integers(num_cols))] = True
    for c in range(num_cols):
        if not mask[:, c].any():
            mask[int(gen.integers(num_rows)), c] = True
    rr, cc = np.nonzero(mask)
    return SparsePattern(num_rows, num_cols, tuple(int(x) for x in rr),
                         tuple(int(x) for x in cc))


def spmv_fine_grain(pattern: SparsePattern) -> Hypergraph:
    """Fine-grain SpMV hypergraph of a sparsity pattern [30].

    One node per nonzero; one hyperedge per row and per column
    (singleton hyperedges for rows/columns with a single nonzero are
    kept: they are never cut but preserve the 2-regularity invariant).
    """
    row_edges: list[list[int]] = [[] for _ in range(pattern.num_rows)]
    col_edges: list[list[int]] = [[] for _ in range(pattern.num_cols)]
    for node, (r, c) in enumerate(zip(pattern.rows, pattern.cols)):
        row_edges[r].append(node)
        col_edges[c].append(node)
    edges = [tuple(e) for e in row_edges if e] + [tuple(e) for e in col_edges if e]
    return Hypergraph(pattern.nnz, edges,
                      name=f"spmv-{pattern.num_rows}x{pattern.num_cols}")


def has_bipartite_edge_property(graph: Hypergraph) -> bool:
    """Check the [30] structural property: hyperedges can be split into
    two classes with any two same-class hyperedges disjoint.

    Equivalent to 2-colourability of the "conflict graph" on hyperedges
    (edges between intersecting hyperedges); checked by BFS.
    """
    m = graph.num_edges
    # Build conflict adjacency via shared pins.
    touching: list[set[int]] = [set() for _ in range(m)]
    ptr, node_edges = graph.incidence()
    for v in range(graph.n):
        inc = node_edges[ptr[v]:ptr[v + 1]]
        for i in range(len(inc)):
            for j in range(i + 1, len(inc)):
                a, b = int(inc[i]), int(inc[j])
                touching[a].add(b)
                touching[b].add(a)
    colour = [-1] * m
    for start in range(m):
        if colour[start] != -1:
            continue
        colour[start] = 0
        queue = [start]
        while queue:
            a = queue.pop()
            for b in touching[a]:
                if colour[b] == -1:
                    colour[b] = 1 - colour[a]
                    queue.append(b)
                elif colour[b] == colour[a]:
                    return False
    return True
