"""Random hypergraph generators for tests and benchmarks."""

from __future__ import annotations

import numpy as np

from ..core.hypergraph import Hypergraph

__all__ = [
    "random_hypergraph",
    "random_uniform_hypergraph",
    "planted_partition_hypergraph",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_uniform_hypergraph(
    n: int,
    m: int,
    edge_size: int,
    rng: int | np.random.Generator | None = None,
) -> Hypergraph:
    """``m`` hyperedges, each of exactly ``edge_size`` distinct uniformly
    random pins."""
    if edge_size > n:
        raise ValueError("edge_size cannot exceed n")
    gen = _rng(rng)
    edges = [tuple(gen.choice(n, size=edge_size, replace=False)) for _ in range(m)]
    return Hypergraph(n, edges, name=f"random-uniform-{n}-{m}-{edge_size}")


def random_hypergraph(
    n: int,
    m: int,
    min_size: int = 2,
    max_size: int = 4,
    rng: int | np.random.Generator | None = None,
) -> Hypergraph:
    """``m`` hyperedges with sizes uniform in ``[min_size, max_size]``."""
    if not 1 <= min_size <= max_size <= n:
        raise ValueError("need 1 <= min_size <= max_size <= n")
    gen = _rng(rng)
    edges = []
    for _ in range(m):
        s = int(gen.integers(min_size, max_size + 1))
        edges.append(tuple(gen.choice(n, size=s, replace=False)))
    return Hypergraph(n, edges, name=f"random-{n}-{m}")


def planted_partition_hypergraph(
    n: int,
    k: int,
    m_intra: int,
    m_inter: int,
    edge_size: int = 3,
    rng: int | np.random.Generator | None = None,
) -> tuple[Hypergraph, np.ndarray]:
    """A hypergraph with a planted balanced k-way structure.

    ``m_intra`` hyperedges live entirely inside a random planted part;
    ``m_inter`` hyperedges draw pins across parts.  Returns
    ``(hypergraph, planted_labels)`` — a good partitioner should recover
    a cut close to ``m_inter``; the planted labelling certifies an upper
    bound on the optimum.
    """
    if k < 2 or n < k * edge_size:
        raise ValueError("need k >= 2 and n >= k * edge_size")
    gen = _rng(rng)
    labels = np.repeat(np.arange(k), -(-n // k))[:n]
    gen.shuffle(labels)
    groups = [np.flatnonzero(labels == i) for i in range(k)]
    edges = []
    for _ in range(m_intra):
        grp = groups[int(gen.integers(k))]
        edges.append(tuple(gen.choice(grp, size=min(edge_size, len(grp)),
                                      replace=False)))
    for _ in range(m_inter):
        edges.append(tuple(gen.choice(n, size=edge_size, replace=False)))
    g = Hypergraph(n, edges, name=f"planted-{n}-{k}")
    return g, labels
