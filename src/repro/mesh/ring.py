"""Deterministic consistent-hash ring over shard identities.

sha256-based and entropy-free: the same shard set and the same key
stream produce byte-identical assignments in every process on every
platform (the router's coroutines are determinism-pass roots, so even
the *routing* layer is held to the reproducibility bar).  Virtual
replicas smooth the load split; with ``replicas`` points per shard,
adding one shard to an N-shard ring reassigns ~1/(N+1) of the key
space and leaves every other key where it was — the property the
kill/restart story leans on (a restarted shard owns exactly its old
keys again) and the hypothesis suite pins down.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

__all__ = ["HashRing"]

_DEFAULT_REPLICAS = 64


def _point(label: str) -> int:
    """Ring coordinate of a label: first 8 bytes of sha256, big-endian."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Immutable consistent-hash ring mapping keys to shard ids."""

    def __init__(self, shards: Iterable[str],
                 replicas: int = _DEFAULT_REPLICAS) -> None:
        self.shards: tuple[str, ...] = tuple(dict.fromkeys(shards))
        if not self.shards:
            raise ValueError("HashRing needs at least one shard")
        self.replicas = max(1, int(replicas))
        points: list[tuple[int, str]] = []
        for shard in self.shards:
            for replica in range(self.replicas):
                points.append((_point(f"{shard}#{replica}"), shard))
        # ties (sha256 collisions on 64 bits) broken by shard id so the
        # sort — and therefore every assignment — is total and stable
        points.sort()
        self._points = points
        self._coords = [coord for coord, _ in points]

    def assign(self, key: str) -> str:
        """The shard owning ``key`` (first ring point clockwise)."""
        return self.preference(key, 1)[0]

    def preference(self, key: str, count: int | None = None,
                   ) -> tuple[str, ...]:
        """Distinct shards in clockwise order from ``key``'s position.

        Index 0 is the owner; subsequent entries are the deterministic
        failover / hedging order.  ``count=None`` returns all shards.
        """
        want = len(self.shards) if count is None else min(
            int(count), len(self.shards))
        start = bisect.bisect_right(self._coords, _point(key))
        seen: list[str] = []
        for i in range(len(self._points)):
            shard = self._points[(start + i) % len(self._points)][1]
            if shard not in seen:
                seen.append(shard)
                if len(seen) == want:
                    break
        return tuple(seen)

    def spread(self, keys: Sequence[str]) -> dict[str, int]:
        """Keys-per-shard histogram (load-balance diagnostics)."""
        counts = {shard: 0 for shard in self.shards}
        for key in keys:
            counts[self.assign(key)] += 1
        return counts
