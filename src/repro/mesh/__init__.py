"""repro.mesh — sharded serving: consistent-hash routing, hedging, chaos.

Turns N independent ``repro serve`` processes into one service:

* :mod:`repro.mesh.ring` — deterministic consistent-hash ring mapping
  job cache keys to shards (sha256, virtual replicas; adding a shard
  moves ~1/N of the key space).
* :mod:`repro.mesh.router` — stdlib asyncio front process: routes by
  cache key, relays binary ``/v1/stream`` uploads without
  materialising them, hedges slow sync solves onto a second shard,
  and requeues in-flight jobs of a dead shard exactly once.
* :mod:`repro.mesh.shards` — shard subprocess supervisor (spawn,
  SIGKILL, restart on the same port) used by ``repro mesh up``, the
  chaos harness, and the kill/restart tests.
* :mod:`repro.mesh.harness` — in-process router/mesh fixtures shared
  by the test suite and ``benchmarks/bench_mesh.py``.

The mesh needs no gossip and no metadata service: the ``.lab-cache``
key is location-independent, so any shard can answer any repeat
submission — routing only concentrates *in-flight* work per key onto
one shard (cache locality + single computation), and the shared cache
root makes failover trivially correct.
"""

from .ring import HashRing
from .router import MeshConfig, Router
from .shards import ShardSpec, ShardSupervisor

__all__ = [
    "HashRing",
    "MeshConfig",
    "Router",
    "ShardSpec",
    "ShardSupervisor",
]
