"""Shard subprocess supervision: spawn, SIGKILL, restart-in-place.

Each shard is a real ``repro serve`` process (own interpreter, own
worker pool) bound to ``127.0.0.1`` on an ephemeral port and pointed at
the mesh's *shared* cache root — the property the whole failover story
rests on.  The supervisor parses each shard's machine-readable ready
line (``repro serve listening on 127.0.0.1:<port>``) to learn the bound
port, keeps draining stderr afterwards (a full pipe would wedge the
child), and can SIGKILL a shard mid-batch and later restart it **on the
same port** so the router's ring and shard table never change — exactly
the crash/recover cycle the chaos harness and the kill/restart tests
drive.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from ..errors import MeshError

__all__ = ["ShardSpec", "ShardSupervisor"]

_READY_RE = re.compile(r"repro serve listening on ([\d.]+):(\d+)")
_STDERR_TAIL = 50


@dataclass(frozen=True)
class ShardSpec:
    """Identity + address of one shard, as the router sees it."""

    id: str
    host: str
    port: int


class _Child:
    """One spawned shard process plus its stderr drain thread."""

    def __init__(self, proc: subprocess.Popen) -> None:
        self.proc = proc
        self.port: int | None = None
        self.ready = threading.Event()
        self.tail: deque[str] = deque(maxlen=_STDERR_TAIL)
        self._drain = threading.Thread(target=self._drain_stderr,
                                       daemon=True)
        self._drain.start()

    def _drain_stderr(self) -> None:
        assert self.proc.stderr is not None
        for raw in self.proc.stderr:
            line = raw.decode(errors="replace").rstrip()
            self.tail.append(line)
            match = _READY_RE.search(line)
            if match:
                self.port = int(match.group(2))
                self.ready.set()
        self.ready.set()            # EOF: unblock waiters (port stays None)


class ShardSupervisor:
    """Spawn and control N ``repro serve`` shard processes."""

    def __init__(self, count: int, cache_dir: str, *,
                 host: str = "127.0.0.1", workers: int = 1,
                 queue_limit: int = 4096, batch_window_s: float = 0.005,
                 slow: dict[str, float] | None = None,
                 ready_timeout_s: float = 30.0) -> None:
        if count < 1:
            raise MeshError("a mesh needs at least one shard")
        self.count = count
        self.cache_dir = str(cache_dir)
        self.host = host
        self.workers = workers
        self.queue_limit = queue_limit
        self.batch_window_s = batch_window_s
        #: per-shard-id injected worker slowdown in seconds (the
        #: manufactured slow shard for the hedging benchmark)
        self.slow = dict(slow or {})
        self.ready_timeout_s = ready_timeout_s
        self._children: dict[str, _Child] = {}
        self._ports: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[ShardSpec, ...]:
        """Spawn every shard; returns specs once all are accepting."""
        try:
            for i in range(self.count):
                sid = f"s{i}"
                self._children[sid] = self._spawn(sid, port=0)
                self._ports[sid] = self._await_ready(sid)
        except BaseException:
            self.stop_all()
            raise
        return self.specs()

    def specs(self) -> tuple[ShardSpec, ...]:
        return tuple(ShardSpec(sid, self.host, self._ports[sid])
                     for sid in sorted(self._ports))

    def pid(self, sid: str) -> int:
        return self._children[sid].proc.pid

    def alive(self, sid: str) -> bool:
        child = self._children.get(sid)
        return child is not None and child.proc.poll() is None

    def kill(self, sid: str) -> None:
        """SIGKILL a shard mid-flight (no graceful shutdown at all)."""
        child = self._children[sid]
        if child.proc.poll() is None:
            os.kill(child.proc.pid, signal.SIGKILL)
        child.proc.wait(timeout=10)

    def restart(self, sid: str) -> ShardSpec:
        """Bring a killed shard back **on its original port**.

        Same port + same shard id means the router's static shard table
        keeps working: its probe loop just sees the shard come back.
        """
        if self.alive(sid):
            raise MeshError(f"shard {sid} is still running")
        self._children[sid] = self._spawn(sid, port=self._ports[sid])
        self._ports[sid] = self._await_ready(sid)
        return ShardSpec(sid, self.host, self._ports[sid])

    def stop_all(self) -> None:
        for sid, child in self._children.items():
            if child.proc.poll() is None:
                child.proc.terminate()
        for sid, child in self._children.items():
            try:
                child.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                os.kill(child.proc.pid, signal.SIGKILL)
                child.proc.wait(timeout=10)

    def reap_orphan_segments(self) -> list[str]:
        """Unlink shared-memory segments orphaned by SIGKILLed shards.

        A gracefully stopped shard unlinks everything it owns
        (``SegmentRegistry.close_all``); a SIGKILLed one cannot, and
        POSIX shm segments outlive their creator.  Only safe once every
        shard is down — while any shard lives, a name in ``/dev/shm``
        may be its parked-idle segment.  Returns the reaped names so
        the harness teardown can assert the *graceful* path leaked
        nothing.
        """
        shm_root = Path("/dev/shm")
        if any(c.proc.poll() is None for c in self._children.values()) \
                or not shm_root.is_dir():
            return []
        reaped: list[str] = []
        for prefix in ("repro_stream_", "repro_shm_"):
            for path in sorted(shm_root.glob(prefix + "*")):
                try:
                    path.unlink()
                except OSError:
                    continue
                reaped.append(path.name)
        return reaped

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.stop_all()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _spawn(self, sid: str, port: int) -> _Child:
        argv = [sys.executable, "-m", "repro", "serve",
                "--host", self.host, "--port", str(port),
                "--workers", str(self.workers),
                "--queue-limit", str(self.queue_limit),
                "--batch-window", str(self.batch_window_s),
                "--cache-dir", self.cache_dir,
                "--shard-id", sid]
        slow_s = self.slow.get(sid, 0.0)
        if slow_s > 0:
            argv += ["--debug-slow-ms", str(int(round(slow_s * 1000)))]
        # the child must import the same repro package we are running
        # from, whether or not the caller exported PYTHONPATH
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(argv, stdout=subprocess.DEVNULL,
                                stderr=subprocess.PIPE, env=env)
        return _Child(proc)

    def _await_ready(self, sid: str) -> int:
        child = self._children[sid]
        if not child.ready.wait(self.ready_timeout_s) \
                or child.port is None:
            if child.proc.poll() is None:
                child.proc.kill()
                child.proc.wait(timeout=10)
            tail = "\n".join(child.tail)
            raise MeshError(f"shard {sid} never reported ready; "
                            f"stderr tail:\n{tail}")
        return child.port
