"""In-process mesh bring-up shared by the test suite and the bench.

Mirrors ``tests/serve/conftest.ServerThread``: the router's event loop
runs in a private daemon thread and is driven over real sockets by the
blocking :class:`~repro.serve.client.ServeClient` — the full stack
(router HTTP, hedging, relay, shard subprocesses) is exercised, nothing
is mocked.  :func:`mesh_up` is the one bring-up path, so the chaos
harness in ``benchmarks/bench_mesh.py`` and the kill/restart tests see
byte-for-byte the same topology.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from dataclasses import dataclass, field
from typing import Iterator

from ..serve.client import ServeClient
from .router import MeshConfig, Router
from .shards import ShardSupervisor

__all__ = ["MeshHandle", "RouterThread", "mesh_up"]


class RouterThread:
    """Run one Router inside a private event loop thread."""

    def __init__(self, config: MeshConfig) -> None:
        self.router = Router(config)
        self.loop = asyncio.new_event_loop()
        self._stopped = threading.Event()
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._stop_evt: asyncio.Event | None = None
        self._failure: BaseException | None = None

    def _main(self) -> None:
        asyncio.set_event_loop(self.loop)

        async def run() -> None:
            try:
                await self.router.start()
            except BaseException as exc:
                self._failure = exc
                self._ready.set()
                raise
            self._stop_evt = asyncio.Event()
            self._ready.set()
            await self._stop_evt.wait()  # analyze: allow(serve-timeout) — thread-lifetime wait; stop() sets it from the owning thread
            await self.router.stop()

        try:
            self.loop.run_until_complete(run())
        finally:
            self.loop.close()
            self._stopped.set()

    def start(self) -> "RouterThread":
        self._ready = threading.Event()
        self._thread.start()
        if not self._ready.wait(timeout=15):
            raise RuntimeError("router failed to start within 15s")
        if self._failure is not None:
            raise self._failure
        return self

    @property
    def port(self) -> int:
        assert self.router.port is not None
        return self.router.port

    def stop(self) -> None:
        if self._stop_evt is not None:
            self.loop.call_soon_threadsafe(self._stop_evt.set)
        self._stopped.wait(timeout=15)


@dataclass
class MeshHandle:
    """Everything a caller needs to drive (and abuse) a running mesh."""

    supervisor: ShardSupervisor
    router_thread: RouterThread
    #: /dev/shm segments still present after teardown (filled by
    #: :func:`mesh_up` on exit; non-empty only when SIGKILLed shards
    #: orphaned segments — the graceful path must leave this empty)
    leaked_segments: list = field(default_factory=list)

    @property
    def router(self) -> Router:
        return self.router_thread.router

    @property
    def port(self) -> int:
        return self.router_thread.port

    def client(self, timeout_s: float = 60.0) -> ServeClient:
        """Blocking client pointed at the router (not at any shard)."""
        return ServeClient("127.0.0.1", self.port, timeout_s=timeout_s)


@contextlib.contextmanager
def mesh_up(count: int, cache_dir: str, *,
            workers: int = 1, slow: dict[str, float] | None = None,
            hedge: bool = True, hedge_min_s: float = 0.05,
            hedge_max_s: float = 1.0, probe_interval_s: float = 0.1,
            queue_limit: int = 4096, client_timeout_s: float = 120.0,
            ) -> Iterator[MeshHandle]:
    """Spawn ``count`` shard processes + one in-process router."""
    supervisor = ShardSupervisor(count, cache_dir, workers=workers,
                                 queue_limit=queue_limit, slow=slow)
    router_thread: RouterThread | None = None
    try:
        specs = supervisor.start()
        config = MeshConfig(shards=specs, hedge=hedge,
                            hedge_min_s=hedge_min_s,
                            hedge_max_s=hedge_max_s,
                            probe_interval_s=probe_interval_s,
                            client_timeout_s=client_timeout_s)
        router_thread = RouterThread(config).start()
        handle = MeshHandle(supervisor=supervisor,
                            router_thread=router_thread)
        yield handle
    finally:
        if router_thread is not None:
            with contextlib.suppress(Exception):
                router_thread.stop()
        supervisor.stop_all()
        # /dev/shm leak check: anything a SIGKILLed shard orphaned is
        # reaped and reported; a purely graceful run must leak nothing
        leaked = supervisor.reap_orphan_segments()
        if router_thread is not None:
            handle.leaked_segments.extend(leaked)
