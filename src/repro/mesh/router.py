"""The mesh router: consistent-hash dispatch, hedging, failure handling.

One stdlib asyncio process in front of N ``repro serve`` shards.  The
router speaks the exact same HTTP surface as a shard (clients don't
care whether they talk to one shard or the mesh) and adds:

* **routing by cache key** — a request's ``.lab-cache`` key (computed
  exactly as the shard computes it) is hashed onto
  :class:`~repro.mesh.ring.HashRing`; in-flight work for one key lands
  on one shard (single computation + warm cache locality), while the
  *shared cache root* means any shard can serve a repeat of a
  completed key — failover needs no state transfer.
* **hedged dispatch** — a sync solve still unanswered after the hedge
  delay (``hedge_factor`` x the rolling p50 of sync latencies, clamped
  to ``[hedge_min_s, hedge_max_s]``) is re-dispatched to the next
  shard in the key's preference order; the first success wins.
  Deterministic cancel-the-loser: when both are complete the primary
  is preferred, and the loser is cancelled (its worker-side result, if
  any, is an idempotent cache write — duplicates are harmless).
  Exposed as the ``repro_mesh_hedge_*`` Prometheus family.
* **requeue-exactly-once** — an acknowledged async job whose shard
  dies (transport failure, or a 404 from a restarted shard that lost
  its job table) is resubmitted once to the next alive shard in its
  preference order; a completed key resolves instantly as a cache hit
  there.  ``max_requeue`` bounds it so a poisoned job cannot bounce
  around the mesh forever.
* **stream relay** — ``POST /v1/stream`` bodies are forwarded to the
  owning shard in 64 KiB pieces as they arrive; the router reads only
  the frame header (for the routing key) and never materialises the
  pin arrays.

Determinism discipline: router coroutines are analyze determinism
roots, so this module draws on no entropy and no wall clock — job ids
are sequential (``m0000001``), time is ``time.monotonic`` only, and
every blocking client call runs behind a dedicated thread pool (which
also keeps the async-blocking pass honest).  Health probes get their
own tiny pool: the default executor caps at ``cpu_count + 4`` threads,
so on small hosts a burst of slow data-path calls would otherwise
queue the 2-second probe calls past their own deadline and mark
perfectly healthy shards down.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import json
import signal
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..errors import (DeadlineExceededError, JobNotFoundError, MeshError,
                      NoShardAvailableError, QueueFullError, ReproError,
                      ServeClientError, ServeProtocolError)
from ..serve.client import ServeClient
from ..serve.http import (HttpError, content_length, read_body, read_head,
                          read_response, write_response)
from ..serve.jobs import FINAL_STATUSES, with_deadline
from ..serve.metrics import Metrics
from ..serve.protocol import parse_job_request
from ..serve.runner import job_key
from ..serve.stream import (MAGIC, STREAM_CONTENT_TYPE, request_from_header,
                            stream_graph_spec)
from .ring import HashRing
from .shards import ShardSpec

__all__ = ["MeshConfig", "MeshJob", "Router", "run_router"]

_MAX_BODY = 64 * 1024 * 1024
_HEADER_MAX_BYTES = 1 << 20
_READ_DEADLINE_S = 30.0
_RELAY_CHUNK = 64 * 1024
_LATENCY_WINDOW = 512


@dataclass
class MeshConfig:
    """Everything ``repro mesh up`` can tune from the command line."""

    host: str = "127.0.0.1"
    port: int = 0
    shards: tuple[ShardSpec, ...] = ()
    hedge: bool = True
    hedge_min_s: float = 0.05
    hedge_max_s: float = 1.0
    hedge_factor: float = 4.0       # x rolling p50 of sync latencies
    probe_interval_s: float = 0.25
    probe_timeout_s: float = 2.0
    client_timeout_s: float = 120.0
    admit_timeout_s: float = 10.0
    max_requeue: int = 1            # resubmissions per acknowledged job
    replicas: int = 64              # ring points per shard
    retain_jobs: int = 4096
    io_threads: int = 32            # data-path shard-call threads
    extra: dict = field(default_factory=dict)


@dataclass
class MeshJob:
    """Router-side record of one acknowledged (202) job."""

    rid: str
    key: str
    body: dict                      # JSON-able resubmission payload
    shard: str
    shard_job_id: str
    attempts: int = 1               # submissions so far (initial + requeues)
    final: dict | None = None       # cached final describe (rid-rewritten)
    busy: bool = False              # a requeue is in flight for this job


class _ClientPool:
    """Thread-safe stack of keep-alive :class:`ServeClient` instances.

    Every router->shard call runs in an executor worker; the pool
    hands each worker a persistent connection and takes it back after,
    so concurrent calls multiplex over a handful of sockets instead of
    reconnecting per request (the keep-alive satellite, router side).
    Only ever touched from worker threads — never from the event loop.
    """

    def __init__(self, spec: ShardSpec, timeout_s: float) -> None:
        self._spec = spec
        self._timeout_s = timeout_s
        self._lock = threading.Lock()
        self._idle: list[ServeClient] = []

    def request(self, method: str, path: str,
                body: dict | None = None) -> tuple[int, Any, dict]:
        with self._lock:
            client = (self._idle.pop() if self._idle
                      else ServeClient(self._spec.host, self._spec.port,
                                       timeout_s=self._timeout_s))
        try:
            result = client._request(method, path, body)
        except BaseException:
            client.close()
            raise
        with self._lock:
            self._idle.append(client)
        return result

    def close(self) -> None:
        with self._lock:
            clients, self._idle = self._idle, []
        for client in clients:
            client.close()


class Router:
    """One mesh front process over a fixed shard set."""

    def __init__(self, config: MeshConfig) -> None:
        if not config.shards:
            raise MeshError("mesh router needs at least one shard")
        self.config = config
        self.metrics = Metrics(prefix="repro_mesh_")
        self.shards: dict[str, ShardSpec] = {s.id: s for s in config.shards}
        self.ring = HashRing(self.shards, replicas=config.replicas)
        self._pools = {sid: _ClientPool(spec, config.client_timeout_s)
                       for sid, spec in self.shards.items()}
        # Dedicated executors: asyncio's default pool is tiny on small
        # hosts, and a deadline that fires while the call is still
        # *queued for a thread* is indistinguishable from a dead shard.
        self._io = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(4, config.io_threads),
            thread_name_prefix="mesh-io")
        self._probe_io = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(2, len(self.shards)),
            thread_name_prefix="mesh-probe")
        self._down: set[str] = set()
        self._jobs: dict[str, MeshJob] = {}
        self._seq = itertools.count(1)
        self._lat: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._server: asyncio.AbstractServer | None = None
        self._probe_task: asyncio.Task | None = None
        self.port: int | None = None
        self.metrics.register_gauge(
            "shards_alive",
            lambda: float(len(self.shards) - len(self._down)))
        self.metrics.register_gauge(
            "jobs_tracked", lambda: float(len(self._jobs)))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(  # analyze: allow(serve-timeout) — bind/listen at startup; nothing to time-box yet and failure must propagate to the CLI
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._probe_task = asyncio.get_running_loop().create_task(
            self._probe_loop())

    async def stop(self) -> None:
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await with_deadline(asyncio.shield(self._probe_task), 2.0)
            except BaseException:  # analyze: allow(silent-except) — the probe task only sleeps and probes; cancellation is its normal exit
                pass
        if self._server is not None:
            self._server.close()
            await with_deadline(self._server.wait_closed(), 5.0)
        for pool in self._pools.values():
            pool.close()
        self._io.shutdown(wait=False, cancel_futures=True)
        self._probe_io.shutdown(wait=False, cancel_futures=True)

    async def serve_forever(self) -> None:
        """Run until SIGTERM/SIGINT; then shut down gracefully."""
        import sys
        await self.start()
        print(f"repro mesh listening on {self.config.host}:{self.port}",
              file=sys.stderr, flush=True)
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop_event.set)
            except (NotImplementedError, RuntimeError):
                pass  # platform without signal support in the loop
        try:
            await stop_event.wait()  # analyze: allow(serve-timeout) — the process-lifetime wait; bounding it would mean a router that exits on a timer
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Connection handling (same framing discipline as the shard server)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.metrics.inc("http_connections")
        try:
            while True:
                try:
                    head = await read_head(reader)
                except DeadlineExceededError:
                    break
                except HttpError as exc:
                    await write_response(writer, exc.status,
                                         {"error": str(exc)}, exc.headers,
                                         keep_alive=False)
                    break
                if head is None:
                    break
                method, target, headers = head
                self.metrics.inc("http_requests")
                force_close = False
                try:
                    if (method == "POST"
                            and target.split("?", 1)[0] == "/v1/stream"):
                        status, payload, extra = await self._handle_stream(
                            reader, headers)
                    else:
                        body = await read_body(reader, headers,
                                               max_body=_MAX_BODY)
                        status, payload, extra = await self._route(
                            method, target, body)
                except HttpError as exc:
                    status, payload = exc.status, {"error": str(exc)}
                    extra = exc.headers
                    force_close = exc.close
                except NoShardAvailableError as exc:
                    status, payload, extra = 503, {"error": str(exc)}, {}
                except ServeProtocolError as exc:
                    status, payload, extra = 400, {"error": str(exc)}, {}
                except JobNotFoundError as exc:
                    status, payload, extra = 404, {"error": str(exc)}, {}
                except QueueFullError as exc:
                    status, payload = 429, {"error": str(exc)}
                    extra = {"Retry-After":
                             str(int(getattr(exc, "retry_after_s", 1)))}
                except (ReproError, OSError) as exc:
                    status, payload, extra = 502, {"error": str(exc)}, {}
                keep_alive = (headers.get("connection", "") != "close"
                              and not force_close)
                await write_response(writer, status, payload, extra,
                                     keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        except Exception:  # analyze: allow(silent-except) — one broken connection must never take down the accept loop
            pass
        finally:
            try:
                writer.close()
                await with_deadline(writer.wait_closed(), 2.0)
            except (Exception, DeadlineExceededError):  # analyze: allow(silent-except) — socket teardown race; the fd is closed either way
                pass

    async def _route(self, method: str, target: str,
                     body: bytes) -> tuple[int, dict, dict]:
        target = target.split("?", 1)[0]
        if target == "/healthz" and method == "GET":
            return 200, self._health(), {}
        if target == "/metrics" and method == "GET":
            return 200, {"_raw": self.metrics.render_prometheus()}, {}
        if target == "/v1/mesh" and method == "GET":
            return 200, self._mesh_info(), {}
        if target == "/v1/partition" and method == "POST":
            return await self._handle_solve(body)
        if target == "/v1/jobs" and method == "POST":
            return await self._handle_submit(body)
        if target == "/v1/jobs" and method == "GET":
            return 200, {"jobs": self._job_summaries()}, {}
        if target.startswith("/v1/jobs/"):
            rid = target[len("/v1/jobs/"):]
            if method == "GET":
                return await self._handle_poll(rid)
            if method == "DELETE":
                return await self._handle_cancel(rid)
        raise HttpError(405 if target in ("/v1/partition", "/v1/jobs",
                                          "/v1/stream", "/v1/mesh",
                                          "/healthz", "/metrics")
                        else 404,
                        f"no route for {method} {target}")

    # ------------------------------------------------------------------
    # Shard transport
    # ------------------------------------------------------------------
    async def _shard_call(self, sid: str, method: str, path: str,
                          body: dict | None = None,
                          timeout_s: float | None = None,
                          probe: bool = False) -> tuple[int, Any, dict]:
        """One pooled keep-alive HTTP call to a shard, off the loop.

        Transport failure marks the shard down (the probe loop revives
        it) and re-raises; HTTP-level errors come back as plain status
        codes for the caller to interpret.  Probe calls run on their
        own executor so a saturated data path can never time out a
        health check and spuriously mark a live shard down.
        """
        budget = (self.config.client_timeout_s if timeout_s is None
                  else timeout_s)
        pool = self._probe_io if probe else self._io
        loop = asyncio.get_running_loop()
        try:
            return await with_deadline(
                loop.run_in_executor(pool, self._pools[sid].request,
                                     method, path, body),
                budget)
        except (ServeClientError, DeadlineExceededError, OSError):
            self._mark_down(sid)
            raise

    def _mark_down(self, sid: str) -> None:
        if sid not in self._down:
            self._down.add(sid)
            self.metrics.inc("shard_down_marks")

    def _alive_order(self, key: str) -> list[str]:
        order = [sid for sid in self.ring.preference(key)
                 if sid not in self._down]
        if not order:
            raise NoShardAvailableError(
                f"all {len(self.shards)} shards are marked down")
        return order

    async def _probe_loop(self) -> None:
        """Revive down shards; requeue jobs orphaned on dead ones.

        One surprise exception must not kill the loop: a dead probe
        loop means down shards stay down forever and orphaned jobs are
        never requeued, which is strictly worse than skipping a beat.
        """
        while True:
            await asyncio.sleep(self.config.probe_interval_s)
            try:
                for sid in sorted(self._down):
                    try:
                        status, _payload, _hdrs = await self._shard_call(
                            sid, "GET", "/healthz",
                            timeout_s=self.config.probe_timeout_s,
                            probe=True)
                    except (ReproError, OSError):
                        continue
                    if status == 200:
                        self._down.discard(sid)
                        self.metrics.inc("shard_revivals")
                for job in [j for j in self._jobs.values()
                            if j.final is None and j.shard in self._down]:
                    await self._requeue(job, "owning shard is down")
            except asyncio.CancelledError:
                raise
            except Exception:  # analyze: allow(silent-except) — not silent: probe_loop_errors counts each beat lost; the loop surviving is the point
                self.metrics.inc("probe_loop_errors")

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit_sync(self, body: bytes) -> tuple[dict, str, Any]:
        """Parse + key one JSON request (blocking: reads runner source)."""
        try:
            obj = json.loads(body or b"{}")
        except ValueError:
            raise ServeProtocolError(
                "request body is not valid JSON") from None
        request = parse_job_request(obj)
        return obj, job_key(request), request

    async def _admit(self, body: bytes) -> tuple[dict, str, Any]:
        loop = asyncio.get_running_loop()
        return await with_deadline(
            loop.run_in_executor(self._io, self._admit_sync, body),
            self.config.admit_timeout_s)

    # ------------------------------------------------------------------
    # Solve (sync path, hedged)
    # ------------------------------------------------------------------
    async def _handle_solve(self, body: bytes) -> tuple[int, dict, dict]:
        obj, key, _request = await self._admit(body)
        t0 = time.monotonic()
        errors: list[str] = []
        tried: set[str] = set()
        for _attempt in range(2):   # primary, then one failover
            order = [sid for sid in self._alive_order(key)
                     if sid not in tried]
            if not order:
                break
            sid = order[0]
            tried.add(sid)
            hedge_sid = next((s for s in order[1:]), None)
            try:
                status, payload, hdrs = await self._dispatch_hedged(
                    sid, hedge_sid, obj)
            except (ServeClientError, DeadlineExceededError, OSError) as exc:
                errors.append(f"{sid}: {exc}")
                self.metrics.inc("failovers")
                continue
            if status in (200, 202) and isinstance(payload, dict) \
                    and "job_id" in payload:
                self._lat.append(time.monotonic() - t0)
                self.metrics.observe_latency(time.monotonic() - t0)
                job = self._register(sid, key, obj, payload)
                payload = dict(payload, job_id=job.rid)
            extra = {}
            if "retry-after" in hdrs:
                extra["Retry-After"] = hdrs["retry-after"]
            return status, payload if isinstance(payload, dict) \
                else {"error": str(payload)}, extra
        raise HttpError(503, "no shard could take the job: "
                             + "; ".join(errors or ["none alive"]))

    def _hedge_delay(self) -> float:
        """Current hedge trigger: factor x rolling p50, clamped.

        The p50 (not p99/p95) keeps the estimate robust against the
        very contamination hedging exists to fix — one slow shard
        inflates the upper quantiles with exactly the latencies we want
        to cut off, but moves the median only once it owns half the
        traffic.
        """
        window = sorted(self._lat)
        if not window:
            return self.config.hedge_max_s
        p50 = window[len(window) // 2]
        return min(self.config.hedge_max_s,
                   max(self.config.hedge_min_s,
                       self.config.hedge_factor * p50))

    @staticmethod
    def _abandon(task: asyncio.Task) -> None:
        """Cancel and detach a task whose outcome no longer matters.

        The done-callback retrieves the exception so an attempt that
        fails after being abandoned never logs "exception was never
        retrieved" (its shard was already marked down by
        ``_shard_call`` itself).
        """
        task.cancel()
        task.add_done_callback(lambda t: t.cancelled() or t.exception())

    async def _dispatch_hedged(self, sid: str, hedge_sid: str | None,
                               obj: dict) -> tuple[int, Any, dict]:
        """POST a solve to ``sid``; hedge onto ``hedge_sid`` if slow."""
        budget = self.config.client_timeout_s
        primary = asyncio.get_running_loop().create_task(
            self._shard_call(sid, "POST", "/v1/partition", obj))
        if not self.config.hedge or hedge_sid is None:
            try:
                return await with_deadline(asyncio.shield(primary),
                                           budget)
            except BaseException:
                # deadline hit or caller cancelled: the shielded task
                # would otherwise keep running unsupervised
                self._abandon(primary)
                raise
        try:
            return await with_deadline(asyncio.shield(primary),
                                       self._hedge_delay())
        except DeadlineExceededError:
            pass                    # primary is slow: hedge
        except BaseException:
            self._abandon(primary)
            raise
        self.metrics.inc("hedge_started")
        hedge = asyncio.get_running_loop().create_task(
            self._shard_call(hedge_sid, "POST", "/v1/partition", obj))
        pending: set[asyncio.Task] = {primary, hedge}
        deadline = time.monotonic() + budget
        winner: asyncio.Task | None = None
        try:
            while pending and winner is None:
                done, pending = await with_deadline(
                    asyncio.wait(pending,
                                 return_when=asyncio.FIRST_COMPLETED),
                    max(0.05, deadline - time.monotonic()))
                # deterministic winner selection: primary preferred when
                # both are complete, regardless of completion order
                for task in (primary, hedge):
                    if (task in done or task.done()) \
                            and not task.cancelled() \
                            and task.exception() is None:
                        winner = task
                        break
        except BaseException:
            # overall budget exhausted or caller cancelled: neither
            # attempt can win any more
            self._abandon(primary)
            self._abandon(hedge)
            raise
        if winner is None:
            # both attempts failed; surface the primary's error
            self._abandon(hedge)
            self.metrics.inc("hedge_both_failed")
            return primary.result()     # raises
        loser = hedge if winner is primary else primary
        if not loser.done():
            self.metrics.inc("hedge_cancelled")
        self._abandon(loser)
        self.metrics.inc("hedge_win_primary" if winner is primary
                         else "hedge_win_hedge")
        return winner.result()

    # ------------------------------------------------------------------
    # Async jobs
    # ------------------------------------------------------------------
    async def _handle_submit(self, body: bytes) -> tuple[int, dict, dict]:
        obj, key, _request = await self._admit(body)
        errors: list[str] = []
        tried: set[str] = set()
        for _attempt in range(2):
            order = [sid for sid in self._alive_order(key)
                     if sid not in tried]
            if not order:
                break
            sid = order[0]
            tried.add(sid)
            try:
                status, payload, hdrs = await self._shard_call(
                    sid, "POST", "/v1/jobs", obj)
            except (ServeClientError, DeadlineExceededError, OSError) as exc:
                errors.append(f"{sid}: {exc}")
                self.metrics.inc("failovers")
                continue
            extra = {}
            if "retry-after" in hdrs:
                extra["Retry-After"] = hdrs["retry-after"]
            if status in (200, 202) and isinstance(payload, dict):
                job = self._register(sid, key, obj, payload)
                payload = dict(payload, job_id=job.rid)
            return status, payload if isinstance(payload, dict) \
                else {"error": str(payload)}, extra
        raise HttpError(503, "no shard could take the job: "
                             + "; ".join(errors or ["none alive"]))

    def _register(self, sid: str, key: str, obj: dict,
                  payload: dict) -> MeshJob:
        rid = f"m{next(self._seq):07d}"
        job = MeshJob(rid=rid, key=key, body=obj, shard=sid,
                      shard_job_id=payload.get("job_id", ""))
        if payload.get("status") in FINAL_STATUSES:
            job.final = dict(payload, job_id=rid)
        self._jobs[rid] = job
        self._purge_jobs()
        return job

    def _purge_jobs(self) -> None:
        excess = len(self._jobs) - self.config.retain_jobs
        if excess <= 0:
            return
        for rid in [r for r in self._jobs
                    if self._jobs[r].final is not None][:excess]:
            del self._jobs[rid]     # oldest first: rids are sequential

    def _job(self, rid: str) -> MeshJob:
        try:
            return self._jobs[rid]
        except KeyError:
            raise JobNotFoundError(f"unknown job {rid!r}") from None

    def _live_state(self, job: MeshJob) -> dict:
        return {"job_id": job.rid, "status": "queued",
                "attempts": job.attempts, "shard": job.shard,
                "cached": False}

    async def _handle_poll(self, rid: str) -> tuple[int, dict, dict]:
        job = self._job(rid)
        if job.final is not None:
            return 200, job.final, {}
        if job.shard in self._down:
            await self._requeue(job, "owning shard is down")
            return 200, job.final or self._live_state(job), {}
        try:
            status, payload, _hdrs = await self._shard_call(
                job.shard, "GET", f"/v1/jobs/{job.shard_job_id}")
        except (ServeClientError, DeadlineExceededError, OSError):
            await self._requeue(job, "shard unreachable on poll")
            return 200, job.final or self._live_state(job), {}
        if status == 404:
            # the shard restarted and lost its in-memory job table —
            # the job itself may have finished into the shared cache,
            # which is exactly what the resubmission will find
            await self._requeue(job, "shard restarted without the job")
            return 200, job.final or self._live_state(job), {}
        if status != 200 or not isinstance(payload, dict):
            return 200, self._live_state(job), {}
        payload = dict(payload, job_id=rid)
        if payload.get("status") in FINAL_STATUSES:
            job.final = payload
        return 200, payload, {}

    async def _handle_cancel(self, rid: str) -> tuple[int, dict, dict]:
        job = self._job(rid)
        if job.final is not None:
            return 200, job.final, {}
        try:
            status, payload, _hdrs = await self._shard_call(
                job.shard, "DELETE", f"/v1/jobs/{job.shard_job_id}")
        except (ServeClientError, DeadlineExceededError, OSError):
            return 200, self._live_state(job), {}
        if status == 200 and isinstance(payload, dict):
            payload = dict(payload, job_id=rid)
            if payload.get("status") in FINAL_STATUSES:
                job.final = payload
            return 200, payload, {}
        return 200, self._live_state(job), {}

    async def _requeue(self, job: MeshJob, reason: str) -> None:
        """Resubmit an orphaned job once; finalise it if that's spent.

        Exactly-once discipline: ``attempts`` counts submissions and a
        concurrent-requeue guard (``busy``) keeps overlapping polls
        from double-submitting while the resubmission is in flight.
        """
        if job.final is not None or job.busy:
            return
        if job.attempts > self.config.max_requeue:
            job.final = {"job_id": job.rid, "status": "error",
                         "attempts": job.attempts, "cached": False,
                         "error": f"lost after shard failure ({reason}); "
                                  "requeue budget spent"}
            self.metrics.inc("jobs_lost")
            return
        job.busy = True
        try:
            try:
                order = [sid for sid in self._alive_order(job.key)]
            except NoShardAvailableError:
                return              # keep the attempt; probe may revive
            sid = order[0]
            job.attempts += 1
            self.metrics.inc("requeued")
            try:
                status, payload, _hdrs = await self._shard_call(
                    sid, "POST", "/v1/jobs", job.body)
            except (ServeClientError, DeadlineExceededError, OSError) as exc:
                job.final = {"job_id": job.rid, "status": "error",
                             "attempts": job.attempts, "cached": False,
                             "error": f"requeue to {sid} failed: {exc}"}
                self.metrics.inc("jobs_lost")
                return
            if status in (200, 202) and isinstance(payload, dict):
                job.shard = sid
                job.shard_job_id = payload.get("job_id", "")
                if payload.get("status") in FINAL_STATUSES:
                    job.final = dict(payload, job_id=job.rid)
                return
            error = (payload.get("error") if isinstance(payload, dict)
                     else str(payload))
            job.final = {"job_id": job.rid, "status": "error",
                         "attempts": job.attempts, "cached": False,
                         "error": f"requeue rejected with HTTP {status}: "
                                  f"{error}"}
            self.metrics.inc("jobs_lost")
        finally:
            job.busy = False

    # ------------------------------------------------------------------
    # Stream relay
    # ------------------------------------------------------------------
    async def _handle_stream(self, reader: asyncio.StreamReader,
                             headers: dict) -> tuple[int, dict, dict]:
        total = content_length(headers, max_body=_MAX_BODY)
        if total is None:
            raise HttpError(411, "stream requests need a Content-Length")
        consumed = 0

        async def take(n: int) -> bytes:
            nonlocal consumed
            consumed += n
            if consumed > total:
                raise HttpError(400, "stream frame exceeds Content-Length",
                                close=True)
            return await with_deadline(reader.readexactly(n),
                                       _READ_DEADLINE_S)

        prefix = bytearray()
        magic = await take(len(MAGIC))
        prefix += magic
        if magic != MAGIC:
            raise HttpError(400, "bad stream magic (expected RMSH1)",
                            close=True)
        raw_len = await take(4)
        prefix += raw_len
        (hlen,) = struct.unpack("<I", raw_len)
        if hlen > _HEADER_MAX_BYTES:
            raise HttpError(400, "stream header too large", close=True)
        raw_header = await take(hlen)
        prefix += raw_header
        try:
            header = json.loads(raw_header)
        except ValueError:
            raise HttpError(400, "stream header is not valid JSON",
                            close=True) from None

        def keyed():
            request = request_from_header(header)
            return request, job_key(request)

        try:
            request, key = await with_deadline(
                asyncio.get_running_loop().run_in_executor(self._io, keyed),
                self.config.admit_timeout_s)
        except ReproError as exc:
            raise HttpError(400, str(exc), close=True) from exc
        sid = self._alive_order(key)[0]
        spec = self.shards[sid]
        try:
            shard_reader, shard_writer = await with_deadline(
                asyncio.open_connection(spec.host, spec.port), 5.0)
        except (OSError, DeadlineExceededError) as exc:
            self._mark_down(sid)
            raise HttpError(503, f"shard {sid} unreachable for stream "
                                 f"relay: {exc}", close=True) from exc
        try:
            head = (f"POST /v1/stream HTTP/1.1\r\n"
                    f"Host: {spec.host}:{spec.port}\r\n"
                    f"Content-Type: {STREAM_CONTENT_TYPE}\r\n"
                    f"Content-Length: {total}\r\n"
                    f"Connection: close\r\n\r\n")
            shard_writer.write(head.encode() + bytes(prefix))
            await shard_writer.drain()
            remaining = total - len(prefix)
            while remaining > 0:
                chunk = await with_deadline(
                    reader.read(min(_RELAY_CHUNK, remaining)),
                    _READ_DEADLINE_S)
                if not chunk:
                    raise HttpError(400, "client closed mid-stream",
                                    close=True)
                consumed += len(chunk)
                remaining -= len(chunk)
                shard_writer.write(chunk)
                await shard_writer.drain()
            status, shard_headers, raw_body = await read_response(
                shard_reader, self.config.client_timeout_s)
        except HttpError:
            raise
        except (OSError, ConnectionError, asyncio.IncompleteReadError,
                DeadlineExceededError) as exc:
            # mid-relay shard death: the upload was never acknowledged,
            # so this is a client-visible 502, not a lost job
            self._mark_down(sid)
            raise HttpError(502, f"stream relay to shard {sid} failed: "
                                 f"{exc}", close=True) from exc
        finally:
            try:
                shard_writer.close()
                await with_deadline(shard_writer.wait_closed(), 2.0)
            except (Exception, DeadlineExceededError):  # analyze: allow(silent-except) — relay socket teardown race; the fd is closed either way
                pass
        try:
            payload = json.loads(raw_body) if raw_body else {}
        except ValueError:
            raise HttpError(502, "undecodable shard response to stream "
                                 "relay") from None
        self.metrics.inc("stream_relays")
        self.metrics.inc("stream_relay_bytes", by=float(total))
        extra = {}
        if "retry-after" in shard_headers:
            extra["Retry-After"] = shard_headers["retry-after"]
        if status in (200, 202) and isinstance(payload, dict) \
                and "job_id" in payload:
            # resubmission body: the original request around the graph's
            # content address — a requeue can re-run it as a JSON submit
            # (cache hit if the job finished; an explicit 400 if the
            # payload truly died with the shard)
            csr = header.get("csr", {})
            body = dict(header.get("request", {}))
            body["graph"] = stream_graph_spec(
                header.get("digest", ""), csr.get("n", 0),
                csr.get("m", 0), csr.get("pins", 0))
            job = self._register(sid, key, body, payload)
            payload = dict(payload, job_id=job.rid)
        return status, payload if isinstance(payload, dict) \
            else {"error": str(payload)}, extra

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _health(self) -> dict:
        return {
            "status": "ok",
            "role": "mesh-router",
            "shards": {sid: {"host": spec.host, "port": spec.port,
                             "alive": sid not in self._down}
                       for sid, spec in self.shards.items()},
            "jobs_tracked": len(self._jobs),
            "hedge": self.config.hedge,
            "hedge_delay_s": round(self._hedge_delay(), 6),
            "metrics": self.metrics.snapshot(),
        }

    def _mesh_info(self) -> dict:
        live = [j for j in self._jobs.values() if j.final is None]
        return {
            "shards": sorted(self.shards),
            "down": sorted(self._down),
            "replicas": self.ring.replicas,
            "jobs_live": len(live),
            "jobs_tracked": len(self._jobs),
            "hedge_delay_s": round(self._hedge_delay(), 6),
        }

    def _job_summaries(self, limit: int = 100) -> list[dict]:
        out = []
        for rid in sorted(self._jobs, reverse=True)[:limit]:
            job = self._jobs[rid]
            state = (job.final.get("status") if job.final is not None
                     else "live")
            out.append({"job_id": rid, "shard": job.shard,
                        "status": state, "attempts": job.attempts})
        return out


async def run_router(config: MeshConfig) -> None:
    """Entry point used by ``repro mesh up``."""
    await Router(config).serve_forever()
