"""CLI verbs for the mesh: ``mesh up``, ``mesh route``, ``mesh status``.

``repro mesh up`` is the one-command bring-up: it spawns N shard
subprocesses against a shared cache root and runs the router in the
foreground until SIGTERM/SIGINT, then tears the shards down.
``repro mesh route`` answers "which shard owns this key" offline (pure
ring arithmetic, no network) and ``repro mesh status`` scrapes a
running router's ``/v1/mesh`` view.
"""

from __future__ import annotations

import asyncio
import json
import sys

from ..errors import ReproError

__all__ = ["add_mesh_parser", "mesh_main"]


def add_mesh_parser(sub) -> None:
    m = sub.add_parser("mesh", help="sharded serving mesh")
    ms = m.add_subparsers(dest="mesh_command", required=True)

    up = ms.add_parser("up", help="spawn N shards + run the router")
    up.add_argument("--shards", type=int, default=3,
                    help="shard subprocess count")
    up.add_argument("--host", default="127.0.0.1")
    up.add_argument("--port", type=int, default=8080,
                    help="router listen port (0 = ephemeral)")
    up.add_argument("--workers", type=int, default=1,
                    help="worker dispatches per shard")
    up.add_argument("--cache-dir", default=".lab-cache",
                    help="shared content-addressed cache root")
    up.add_argument("--queue-limit", type=int, default=4096,
                    help="per-shard admission queue bound")
    up.add_argument("--no-hedge", action="store_true",
                    help="disable hedged dispatch of slow sync solves")
    up.add_argument("--slow", default=None, metavar="SID=MS",
                    help="inject a worker slowdown on one shard "
                         "(e.g. s1=400), for hedging experiments")

    rt = ms.add_parser("route", help="offline ring lookup for a key")
    rt.add_argument("key", help="routing key (e.g. a job cache key)")
    rt.add_argument("--shards", type=int, default=3,
                    help="shard count to build the ring over")
    rt.add_argument("--replicas", type=int, default=64)

    st = ms.add_parser("status", help="scrape /v1/mesh of a router")
    st.add_argument("--host", default="127.0.0.1")
    st.add_argument("--port", type=int, default=8080)


def _parse_slow(value: str | None) -> dict[str, float]:
    if not value:
        return {}
    try:
        sid, _, ms = value.partition("=")
        return {sid.strip(): float(ms) / 1000.0}
    except ValueError:
        raise ReproError(f"--slow wants SID=MS, got {value!r}") from None


def _up(args) -> int:
    from .router import MeshConfig, run_router
    from .shards import ShardSupervisor

    supervisor = ShardSupervisor(args.shards, args.cache_dir,
                                 host="127.0.0.1", workers=args.workers,
                                 queue_limit=args.queue_limit,
                                 slow=_parse_slow(args.slow))
    try:
        specs = supervisor.start()
        for spec in specs:
            print(f"shard {spec.id} pid={supervisor.pid(spec.id)} "
                  f"port={spec.port}", file=sys.stderr, flush=True)
        config = MeshConfig(host=args.host, port=args.port, shards=specs,
                            hedge=not args.no_hedge)
        asyncio.run(run_router(config))
    except KeyboardInterrupt:
        pass
    finally:
        supervisor.stop_all()
    return 0


def _route(args) -> int:
    from .ring import HashRing

    ring = HashRing([f"s{i}" for i in range(args.shards)],
                    replicas=args.replicas)
    print(json.dumps({"key": args.key,
                      "owner": ring.assign(args.key),
                      "preference": list(ring.preference(args.key))},
                     indent=2))
    return 0


def _status(args) -> int:
    from ..serve.client import ServeClient

    with ServeClient(args.host, args.port) as client:
        out = client._checked("GET", "/v1/mesh")
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def mesh_main(args) -> int:
    try:
        return {"up": _up, "route": _route,
                "status": _status}[args.mesh_command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
