"""Kernighan–Lin-style pairwise-swap refinement.

At tight balance (ε = 0) single-node FM moves must pass through
infeasible intermediate states and can stall; exchanging two equal-
weight nodes keeps every part size intact.  This refiner greedily
applies improving feasible swaps — the classic KL complement to FM.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.cost import Metric
from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..core.tolerance import GAIN_ATOL, gt, lt
from ..errors import ProblemTooLargeError
from .base import weight_caps
from .fm import _State

__all__ = ["kl_swap_refine"]


def kl_swap_refine(
    graph: Hypergraph,
    partition: Partition | Sequence[int] | np.ndarray,
    k: int | None = None,
    eps: float = 0.0,
    metric: Metric = Metric.CONNECTIVITY,
    caps: np.ndarray | None = None,
    max_sweeps: int = 4,
    relaxed: bool = False,
    max_nodes: int = 600,
) -> Partition:
    """Greedy improving-swap sweeps (O(n²·deg) each, size-guarded).

    Only swaps that keep every part within its cap are applied, so a
    feasible input stays feasible — including at ε = 0 where
    :func:`~repro.partitioners.fm_refine` cannot move at all without
    its one-node slack.
    """
    if isinstance(partition, Partition):
        labels = partition.labels.copy()
        k = partition.k
    else:
        if k is None:
            raise ValueError("k required for raw label vectors")
        labels = np.asarray(partition, dtype=np.int64).copy()
    if graph.n > max_nodes:
        raise ProblemTooLargeError(
            f"kl_swap_refine guards at {max_nodes} nodes, got {graph.n}")
    if caps is None:
        caps = weight_caps(graph, k, eps, relaxed=relaxed)
    state = _State(graph, labels, k)
    w = graph.node_weights
    for _ in range(max_sweeps):
        improved = False
        for v in range(graph.n):
            for u in range(v + 1, graph.n):
                lv, lu = int(state.labels[v]), int(state.labels[u])
                if lv == lu:
                    continue
                if (gt(state.part_weight[lu] - w[u] + w[v], caps[lu]) or
                        gt(state.part_weight[lv] - w[v] + w[u], caps[lv])):
                    continue
                d1 = state.move_delta(v, lu, metric)
                state.apply(v, lu)
                d2 = state.move_delta(u, lv, metric)
                if lt(d1 + d2, 0.0, atol=GAIN_ATOL):
                    state.apply(u, lv)
                    improved = True
                else:
                    state.apply(v, lv)  # revert
        if not improved:
            break
    return Partition(state.labels, k)
