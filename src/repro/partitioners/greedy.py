"""Greedy constructive partitioners: sequential placement and BFS growth."""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.cost import Metric
from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..core.tolerance import gt, leq
from ..errors import InfeasibleError
from .base import weight_caps

__all__ = ["greedy_sequential_partition", "bfs_growth_partition"]


def greedy_sequential_partition(
    graph: Hypergraph,
    k: int,
    eps: float = 0.0,
    metric: Metric = Metric.CONNECTIVITY,
    rng: int | np.random.Generator | None = None,
    relaxed: bool = False,
) -> Partition:
    """Assign nodes one by one (random order) to the feasible part that
    increases the cost estimate least; ties favour the lightest part.

    The incremental estimate counts, per hyperedge, the number of
    distinct parts among *assigned* pins — a lower bound on the final
    λ_e that becomes exact once all pins are placed.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    caps = weight_caps(graph, k, eps, relaxed=relaxed)
    labels = np.full(graph.n, -1, dtype=np.int64)
    pin_counts = np.zeros((graph.num_edges, k), dtype=np.int64)
    nonzero = np.zeros(graph.num_edges, dtype=np.int64)
    part_weight = np.zeros(k, dtype=np.float64)

    for v in gen.permutation(graph.n):
        w = graph.node_weights[v]
        best_b, best_key = -1, None
        for b in range(k):
            if gt(part_weight[b] + w, caps[b]):
                continue
            delta = 0.0
            for j in graph.incident_edges(v):
                j = int(j)
                if pin_counts[j, b] == 0 and nonzero[j] > 0:
                    if metric == Metric.CONNECTIVITY:
                        delta += graph.edge_weights[j]
                    elif nonzero[j] == 1:
                        delta += graph.edge_weights[j]
            key = (delta, float(part_weight[b]))
            if best_key is None or key < best_key:
                best_key, best_b = key, b
        if best_b < 0:
            raise InfeasibleError("no part can take node within caps "
                                  "(retry with relaxed=True)")
        labels[v] = best_b
        part_weight[best_b] += w
        for j in graph.incident_edges(v):
            j = int(j)
            if pin_counts[j, best_b] == 0:
                nonzero[j] += 1
            pin_counts[j, best_b] += 1
    return Partition(labels, k)


def bfs_growth_partition(
    graph: Hypergraph,
    k: int,
    eps: float = 0.0,
    rng: int | np.random.Generator | None = None,
    relaxed: bool = False,
) -> Partition:
    """Grow parts one at a time by BFS over shared hyperedges from a
    random seed, filling each part to roughly ``n/k`` weight before
    starting the next.  Produces connected, locality-preserving parts —
    a strong initial partition for FM refinement."""
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    caps = weight_caps(graph, k, eps, relaxed=relaxed)
    target = graph.total_node_weight / k
    labels = np.full(graph.n, -1, dtype=np.int64)
    part_weight = np.zeros(k, dtype=np.float64)
    unassigned = set(range(graph.n))

    for b in range(k - 1):
        if not unassigned:
            break
        seed = int(gen.choice(sorted(unassigned)))
        queue = deque([seed])
        seen = {seed}
        while queue and part_weight[b] < target:
            v = queue.popleft()
            if labels[v] != -1:
                continue
            w = graph.node_weights[v]
            if gt(part_weight[b] + w, caps[b]):
                continue
            labels[v] = b
            part_weight[b] += w
            unassigned.discard(v)
            for j in graph.incident_edges(v):
                for u in graph.edges[int(j)]:
                    if u not in seen and labels[u] == -1:
                        seen.add(u)
                        queue.append(u)
            if not queue and part_weight[b] < target and unassigned:
                # component exhausted: jump to a fresh seed
                nxt = int(gen.choice(sorted(unassigned)))
                queue.append(nxt)
                seen.add(nxt)
    # Everything left goes to the last part if it fits, else spread.
    order = sorted(unassigned)
    gen.shuffle(order)
    for v in order:
        w = graph.node_weights[v]
        placed = False
        for b in sorted(range(k), key=lambda b: part_weight[b]):
            if leq(part_weight[b] + w, caps[b]):
                labels[v] = b
                part_weight[b] += w
                placed = True
                break
        if not placed:
            raise InfeasibleError("caps exhausted during BFS growth "
                                  "(retry with relaxed=True)")
    return Partition(labels, k)
