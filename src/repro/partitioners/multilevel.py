"""Multilevel k-way hypergraph partitioning (coarsen → initial → refine).

The standard practical answer to the paper's inapproximability results:
heavy-pin matching coarsens the hypergraph, a portfolio of constructive
heuristics partitions the coarsest level, and FM refinement is applied
while uncoarsening (the n-level/multilevel scheme of [28, 45]).
"""

from __future__ import annotations

import numpy as np

from ..core.cost import Metric, cost
from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from .base import rebalance, weight_caps
from .fm import fm_refine
from .greedy import bfs_growth_partition, greedy_sequential_partition
from .random_part import random_balanced_partition

__all__ = ["coarsen_step", "multilevel_partition"]


def coarsen_step(
    graph: Hypergraph,
    rng: np.random.Generator,
    max_cluster_weight: float,
) -> tuple[Hypergraph, np.ndarray] | None:
    """One heavy-pin matching + contraction step.

    Nodes are visited in random order; each unmatched node pairs with the
    unmatched neighbour maximising the heavy-edge score
    ``Σ_{e ∋ u,v} w_e / (|e| − 1)``, subject to the merged weight staying
    below ``max_cluster_weight``.  Returns ``(coarser graph, mapping)``
    or ``None`` when no pair matched (coarsening has converged).
    """
    n = graph.n
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    any_matched = False
    for v in order:
        if match[v] != -1:
            continue
        scores: dict[int, float] = {}
        for j in graph.incident_edges(v):
            j = int(j)
            e = graph.edges[j]
            if len(e) < 2:
                continue
            s = graph.edge_weights[j] / (len(e) - 1)
            for u in e:
                if u != v and match[u] == -1:
                    scores[u] = scores.get(u, 0.0) + s
        best_u, best_s = -1, 0.0
        wv = graph.node_weights[v]
        for u, s in scores.items():
            if wv + graph.node_weights[u] > max_cluster_weight:
                continue
            if s > best_s:
                best_u, best_s = u, s
        if best_u != -1:
            match[v] = best_u
            match[best_u] = v
            any_matched = True
    if not any_matched:
        return None
    mapping = np.full(n, -1, dtype=np.int64)
    nxt = 0
    for v in range(n):
        if mapping[v] != -1:
            continue
        mapping[v] = nxt
        if match[v] != -1:
            mapping[match[v]] = nxt
        nxt += 1
    coarse = graph.contract(mapping, num_groups=nxt).merge_parallel_edges()
    return coarse, mapping


def _initial_portfolio(
    graph: Hypergraph,
    k: int,
    eps: float,
    metric: Metric,
    rng: np.random.Generator,
    caps: np.ndarray,
    tries: int,
) -> Partition:
    """Best of several constructive starts, each FM-refined."""
    candidates: list[Partition] = []
    for fn in (greedy_sequential_partition, bfs_growth_partition):
        try:
            candidates.append(fn(graph, k, eps, rng=rng, relaxed=True))
        except Exception:
            pass
    for _ in range(tries):
        try:
            candidates.append(random_balanced_partition(graph, k, eps, rng=rng,
                                                        relaxed=True))
        except Exception:
            pass
    best, best_c = None, np.inf
    for p in candidates:
        # count-based constructions can violate *weight* caps on
        # coarsened hypergraphs — repair before refining, since FM only
        # keeps cap-respecting prefixes from a feasible start.
        repaired = rebalance(graph, p.labels, caps)
        refined = fm_refine(graph, repaired, k=k, eps=eps, metric=metric,
                            caps=caps)
        c = cost(graph, refined, metric)
        if c < best_c:
            best, best_c = refined, c
    assert best is not None, "no initial partition could be constructed"
    return best


def multilevel_partition(
    graph: Hypergraph,
    k: int,
    eps: float = 0.0,
    metric: Metric = Metric.CONNECTIVITY,
    rng: int | np.random.Generator | None = None,
    coarsen_to: int | None = None,
    initial_tries: int = 4,
    relaxed: bool = True,
    repetitions: int = 1,
) -> Partition:
    """Full multilevel partitioner.

    ``relaxed=True`` (default) uses the ``ceil`` balance threshold so a
    feasible solution always exists (Appendix A); pass ``False`` for the
    strict constraint on instances where you know it is satisfiable.
    ``repetitions > 1`` runs independent V-cycles with different random
    matchings and keeps the cheapest result.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if repetitions > 1:
        best: Partition | None = None
        best_cost = np.inf
        for _ in range(repetitions):
            cand = multilevel_partition(graph, k, eps, metric, gen,
                                        coarsen_to, initial_tries, relaxed,
                                        repetitions=1)
            c = cost(graph, cand, metric)
            if c < best_cost:
                best, best_cost = cand, c
        assert best is not None
        return best
    if coarsen_to is None:
        coarsen_to = max(40, 4 * k)
    caps = weight_caps(graph, k, eps, relaxed=relaxed)
    max_cluster = max(float(graph.node_weights.max(initial=1.0)),
                      float(caps[0]) / 3.0)

    levels: list[tuple[Hypergraph, np.ndarray]] = []
    cur = graph
    while cur.n > coarsen_to:
        step = coarsen_step(cur, gen, max_cluster)
        if step is None or step[0].n >= cur.n:
            break
        coarse, mapping = step
        levels.append((cur, mapping))
        cur = coarse

    part = _initial_portfolio(cur, k, eps, metric, gen, caps, initial_tries)
    labels = part.labels.copy()
    for fine, mapping in reversed(levels):
        labels = labels[mapping]
        labels = fm_refine(fine, labels, k=k, eps=eps, metric=metric,
                           caps=caps).labels.copy()
    # final safety: the flat graph has unit weights, so repair + refine
    # guarantees the returned partition honours the balance caps.
    labels = rebalance(graph, labels, caps)
    labels = fm_refine(graph, labels, k=k, eps=eps, metric=metric,
                       caps=caps).labels.copy()
    return Partition(labels, k)
