"""Multilevel k-way hypergraph partitioning (coarsen → initial → refine).

The standard practical answer to the paper's inapproximability results:
heavy-pin matching coarsens the hypergraph, a portfolio of constructive
heuristics partitions the coarsest level, and FM refinement is applied
while uncoarsening (the n-level/multilevel scheme of [28, 45]).

Independent work — the V-cycle ``repetitions`` and the candidates of the
initial portfolio — can execute in parallel worker processes via
``n_jobs``; per-task seeds are drawn up-front from the caller's RNG so
the result is identical for every ``n_jobs`` given a fixed seed.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .. import instrument
from ..analyze import sanitize
from ..core import kernels
from ..core.cost import Metric, cost
from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..errors import ReproError
from .base import rebalance, weight_caps
from .fm import fm_refine
from .greedy import bfs_growth_partition, greedy_sequential_partition
from .random_part import random_balanced_partition

__all__ = ["coarsen_step", "multilevel_partition"]

_SEED_BOUND = 2**62


def coarsen_step(
    graph: Hypergraph,
    rng: np.random.Generator,
    max_cluster_weight: float,
) -> tuple[Hypergraph, np.ndarray] | None:
    """One heavy-pin matching + contraction step.

    Nodes are visited in random order; each unmatched node pairs with the
    unmatched neighbour maximising the heavy-edge score
    ``Σ_{e ∋ u,v} w_e / (|e| − 1)``, subject to the merged weight staying
    below ``max_cluster_weight`` (ties broken by smallest node id).  The
    per-node score accumulation is vectorised over the CSR arrays: one
    ragged gather of the incident edges' pins plus a ``bincount``, no
    Python iteration over pins.  Returns ``(coarser graph, mapping)``
    or ``None`` when no pair matched (coarsening has converged).
    """
    n = graph.n
    ptr, pins = graph.csr()
    node_ptr, node_edges = graph.incidence()
    sizes = np.diff(ptr)
    # Heavy-pin score contributed by each edge to every co-pin pair;
    # singleton/empty edges contribute nothing.
    escore = np.where(sizes > 1,
                      graph.edge_weights / np.maximum(sizes - 1, 1), 0.0)
    nw = graph.node_weights
    match = np.full(n, -1, dtype=np.int64)
    any_matched = False
    for v in rng.permutation(n):
        if match[v] != -1:
            continue
        inc = node_edges[node_ptr[v]:node_ptr[v + 1]]
        if inc.size == 0:
            continue
        _, cand = kernels.gather_rows(ptr, pins, inc)
        contrib = np.repeat(escore[inc], sizes[inc])
        uniq, inv = np.unique(cand, return_inverse=True)
        score = np.bincount(inv, weights=contrib)
        ok = ((uniq != v) & (match[uniq] == -1) & (score > 0.0)
              & (nw[v] + nw[uniq] <= max_cluster_weight))
        if not ok.any():
            continue
        u = int(uniq[int(np.argmax(np.where(ok, score, -1.0)))])
        match[v] = u
        match[u] = v
        any_matched = True
    if not any_matched:
        return None
    # Group representative = smaller endpoint; ranking the sorted unique
    # representatives reproduces the first-appearance numbering.
    ids = np.arange(n, dtype=np.int64)
    rep = np.where(match == -1, ids, np.minimum(ids, match))
    uniq_rep, mapping = np.unique(rep, return_inverse=True)
    mapping = mapping.astype(np.int64)
    coarse = graph.contract(mapping, num_groups=int(uniq_rep.size))
    coarse = coarse.merge_parallel_edges()
    if sanitize.ENABLED:
        sanitize.check_csr(*coarse.csr(), coarse.n, where="coarsen_step")
    return coarse, mapping


# ---------------------------------------------------------------------------
# Parallel execution plumbing
# ---------------------------------------------------------------------------

def _run_tasks(fn, argtuples, n_jobs: int) -> list:
    """Map ``fn`` over argument tuples, in-process or via worker processes.

    Results come back in submission order, so parallel and serial
    execution select the same winner.  Falls back to serial execution if
    a worker pool cannot be created (restricted environments).
    """
    if n_jobs <= 1 or len(argtuples) <= 1:
        return [fn(*args) for args in argtuples]
    try:
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else methods[0])
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(argtuples)),
                                 mp_context=ctx) as pool:
            return list(pool.map(fn, *zip(*argtuples)))
    except (OSError, PermissionError, ValueError):
        return [fn(*args) for args in argtuples]


def _portfolio_candidate(graph, k, eps, metric, caps, kind, seed):
    """Build one constructive candidate, repair balance, FM-refine it.

    Returns ``(cost, labels)`` or ``None`` when construction fails.
    Top-level function so it pickles into worker processes.
    """
    rng = np.random.default_rng(seed)
    try:
        if kind == "greedy":
            p = greedy_sequential_partition(graph, k, eps, rng=rng,
                                            relaxed=True)
        elif kind == "bfs":
            p = bfs_growth_partition(graph, k, eps, rng=rng, relaxed=True)
        else:
            p = random_balanced_partition(graph, k, eps, rng=rng,
                                          relaxed=True)
    except ReproError:
        # a constructive heuristic may legitimately fail on a coarsened
        # instance (e.g. InfeasibleError under tight caps); the portfolio
        # simply proceeds with the surviving candidates
        return None
    # count-based constructions can violate *weight* caps on coarsened
    # hypergraphs — repair before refining, since FM only keeps
    # cap-respecting prefixes from a feasible start.
    repaired = rebalance(graph, p.labels, caps)
    refined = fm_refine(graph, repaired, k=k, eps=eps, metric=metric,
                        caps=caps)
    return float(cost(graph, refined, metric)), refined.labels


def _single_vcycle(graph, k, eps, metric, seed, coarsen_to, initial_tries,
                   relaxed):
    """One seeded V-cycle; returns ``(cost, labels)``.  Picklable."""
    part = multilevel_partition(graph, k, eps, metric,
                                rng=np.random.default_rng(seed),
                                coarsen_to=coarsen_to,
                                initial_tries=initial_tries,
                                relaxed=relaxed, repetitions=1, n_jobs=1)
    return float(cost(graph, part, metric)), part.labels


def _initial_portfolio(
    graph: Hypergraph,
    k: int,
    eps: float,
    metric: Metric,
    rng: np.random.Generator,
    caps: np.ndarray,
    tries: int,
    n_jobs: int = 1,
) -> Partition:
    """Best of several constructive starts, each FM-refined.

    Candidate seeds are drawn up-front, so the winning candidate is the
    same whether the portfolio runs serially or across processes.
    """
    kinds = ["greedy", "bfs"] + ["random"] * tries
    seeds = rng.integers(0, _SEED_BOUND, size=len(kinds))
    args = [(graph, k, eps, metric, caps, kind, int(seed))
            for kind, seed in zip(kinds, seeds)]
    results = [r for r in _run_tasks(_portfolio_candidate, args, n_jobs)
               if r is not None]
    assert results, "no initial partition could be constructed"
    best = min(range(len(results)), key=lambda i: results[i][0])
    return Partition(results[best][1], k)


def multilevel_partition(
    graph: Hypergraph,
    k: int,
    eps: float = 0.0,
    metric: Metric = Metric.CONNECTIVITY,
    rng: int | np.random.Generator | None = None,
    coarsen_to: int | None = None,
    initial_tries: int = 4,
    relaxed: bool = True,
    repetitions: int = 1,
    n_jobs: int = 1,
) -> Partition:
    """Full multilevel partitioner.

    ``relaxed=True`` (default) uses the ``ceil`` balance threshold so a
    feasible solution always exists (Appendix A); pass ``False`` for the
    strict constraint on instances where you know it is satisfiable.
    ``repetitions > 1`` runs independent V-cycles with different random
    matchings and keeps the cheapest result.  ``n_jobs > 1`` executes
    those V-cycles (and the initial-portfolio candidates of a single
    cycle) in parallel worker processes; for a fixed seed the returned
    partition is identical regardless of ``n_jobs``.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if repetitions > 1:
        seeds = gen.integers(0, _SEED_BOUND, size=repetitions)
        args = [(graph, k, eps, metric, int(seed), coarsen_to, initial_tries,
                 relaxed) for seed in seeds]
        results = _run_tasks(_single_vcycle, args, n_jobs)
        best = min(range(len(results)), key=lambda i: results[i][0])
        return Partition(results[best][1], k)
    if coarsen_to is None:
        coarsen_to = max(40, 4 * k)
    caps = weight_caps(graph, k, eps, relaxed=relaxed)
    max_cluster = max(float(graph.node_weights.max(initial=1.0)),
                      float(caps[0]) / 3.0)

    levels: list[tuple[Hypergraph, np.ndarray]] = []
    cur = graph
    while cur.n > coarsen_to:
        step = coarsen_step(cur, gen, max_cluster)
        if step is None or step[0].n >= cur.n:
            break
        coarse, mapping = step
        levels.append((cur, mapping))
        cur = coarse
        instrument.bump("coarsen_levels")

    part = _initial_portfolio(cur, k, eps, metric, gen, caps, initial_tries,
                              n_jobs=n_jobs)
    labels = part.labels.copy()
    for fine, mapping in reversed(levels):
        labels = labels[mapping]
        labels = fm_refine(fine, labels, k=k, eps=eps, metric=metric,
                           caps=caps).labels.copy()
    # final safety: the flat graph has unit weights, so repair + refine
    # guarantees the returned partition honours the balance caps.
    labels = rebalance(graph, labels, caps)
    labels = fm_refine(graph, labels, k=k, eps=eps, metric=metric,
                       caps=caps).labels.copy()
    if sanitize.ENABLED:
        sanitize.check_partition(graph, labels, k,
                                 where="multilevel_partition")
        sanitize.check_balance(graph, labels, caps,
                               where="multilevel_partition")
    return Partition(labels, k)
