"""Multilevel k-way hypergraph partitioning (coarsen → initial → refine).

The standard practical answer to the paper's inapproximability results:
heavy-pin matching coarsens the hypergraph, a portfolio of constructive
heuristics partitions the coarsest level, and FM refinement is applied
while uncoarsening (the n-level/multilevel scheme of [28, 45]).

Independent work — the V-cycle ``repetitions`` and the candidates of the
initial portfolio — can execute in parallel worker processes via
``n_jobs``; per-task seeds are drawn up-front from the caller's RNG so
the result is identical for every ``n_jobs`` given a fixed seed.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .. import instrument
from ..analyze import sanitize
from ..core import kernels
from ..core.cost import Metric, cost
from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..core.shm import SharedCSR
from ..errors import ReproError, SharedMemoryError, WorkerPoolError
from .base import rebalance, weight_caps
from .fm import fm_refine
from .greedy import bfs_growth_partition, greedy_sequential_partition
from .random_part import random_balanced_partition
from .subround import (
    CLUSTER_SLACK,
    POOL_MIN_PINS,
    SHRINK_TARGET,
    RoundPool,
    subround_coarsen_step,
    subround_fm_refine,
)

__all__ = ["coarsen_step", "multilevel_partition"]

_SEED_BOUND = 2**62

# Measured on the reference container (fork start method): creating and
# tearing down a ProcessPoolExecutor costs ~8 ms, while one solver task
# runs ~14 ms at ~600 pins (coarsest-level portfolio candidate) and
# scales roughly linearly above that.  Parallel dispatch therefore only
# recoups its overhead once per-task work reaches tens of milliseconds
# — i.e. a few thousand pins — so below this cutoff ``_run_tasks``
# stays in-process (results are order-identical either way).
_PARALLEL_MIN_PINS = 4096

# Ship the hypergraph to repetition workers through shared memory once
# it is big enough that per-worker pickling dominates; below this the
# pickle is a handful of pages and the segment setup isn't worth it.
_SHM_HANDOFF_MIN_PINS = 32_768

# Levels at or above this node count refine with the synchronous
# sub-round FM (vectorised rounds, O(pins) per round, parallelisable);
# smaller levels keep the sequential gain-heap FM, whose per-move
# re-evaluation squeezes out slightly better cuts where it is cheap.
# The heap FM hill-climbs out of local minima the batch sub-round FM
# cannot (it only applies positive-gain prefixes), so it stays in
# charge wherever it is affordable.  Measured on planted instances:
# cutover at 2048 recovers the planted cut where 512 left a 6x gap
# (n=2000: cost 337 vs 2100), while 8192 was ~25x slower end-to-end at
# 100k pins for ~2% connectivity — the per-move Python loop dominates
# past a couple thousand nodes.  The pin gate keeps heap FM away from
# coarse-but-dense levels (few hundred nodes, 10^5+ pins) where one
# pass costs more than the rest of the V-cycle.
_SYNC_FM_MIN_NODES = 2048
_SYNC_FM_MIN_PINS = 65_536

# Stop coarsening when a step shrinks the level by less than this
# factor: each extra level costs a full refinement pass on the way back
# up, so grinding out the last few percent of contraction (typically
# against the cluster weight cap) is a net loss.
_STALL_SHRINK = 0.95


def coarsen_step(
    graph: Hypergraph,
    rng: np.random.Generator,
    max_cluster_weight: float,
) -> tuple[Hypergraph, np.ndarray] | None:
    """One heavy-pin matching + contraction step.

    Nodes are visited in random order; each unmatched node pairs with the
    unmatched neighbour maximising the heavy-edge score
    ``Σ_{e ∋ u,v} w_e / (|e| − 1)``, subject to the merged weight staying
    below ``max_cluster_weight`` (ties broken by smallest node id).  The
    per-node score accumulation is vectorised over the CSR arrays: one
    ragged gather of the incident edges' pins plus a ``bincount``, no
    Python iteration over pins.  Returns ``(coarser graph, mapping)``
    or ``None`` when no pair matched (coarsening has converged).
    """
    n = graph.n
    ptr, pins = graph.csr()
    node_ptr, node_edges = graph.incidence()
    sizes = np.diff(ptr)
    # Heavy-pin score contributed by each edge to every co-pin pair;
    # singleton/empty edges contribute nothing.
    escore = np.where(sizes > 1,
                      graph.edge_weights / np.maximum(sizes - 1, 1), 0.0)
    nw = graph.node_weights
    match = np.full(n, -1, dtype=np.int64)
    any_matched = False
    for v in rng.permutation(n):
        if match[v] != -1:
            continue
        inc = node_edges[node_ptr[v]:node_ptr[v + 1]]
        if inc.size == 0:
            continue
        _, cand = kernels.gather_rows(ptr, pins, inc)
        contrib = np.repeat(escore[inc], sizes[inc])
        uniq, inv = np.unique(cand, return_inverse=True)
        score = np.bincount(inv, weights=contrib)
        ok = ((uniq != v) & (match[uniq] == -1) & (score > 0.0)
              & (nw[v] + nw[uniq] <= max_cluster_weight))
        if not ok.any():
            continue
        u = int(uniq[int(np.argmax(np.where(ok, score, -1.0)))])
        match[v] = u
        match[u] = v
        any_matched = True
    if not any_matched:
        return None
    # Group representative = smaller endpoint; ranking the sorted unique
    # representatives reproduces the first-appearance numbering.
    ids = np.arange(n, dtype=np.int64)
    rep = np.where(match == -1, ids, np.minimum(ids, match))
    uniq_rep, mapping = np.unique(rep, return_inverse=True)
    mapping = mapping.astype(np.int64)
    coarse = graph.contract(mapping, num_groups=int(uniq_rep.size))
    coarse = coarse.merge_parallel_edges()
    if sanitize.ENABLED:
        sanitize.check_csr(*coarse.csr(), coarse.n, where="coarsen_step")
    return coarse, mapping


# ---------------------------------------------------------------------------
# Parallel execution plumbing
# ---------------------------------------------------------------------------

def _run_tasks(fn, argtuples, n_jobs: int, est_pins: int | None = None) -> list:
    """Map ``fn`` over argument tuples, in-process or via worker processes.

    Results come back in submission order, so parallel and serial
    execution select the same winner.  Falls back to serial execution if
    a worker pool cannot be created (restricted environments), and stays
    serial outright when ``est_pins`` (per-task problem size) is below
    ``_PARALLEL_MIN_PINS`` — pool spawn overhead would dominate such
    tasks (see the cutoff's measurement note above).
    """
    if n_jobs <= 1 or len(argtuples) <= 1:
        return [fn(*args) for args in argtuples]
    if est_pins is not None and est_pins < _PARALLEL_MIN_PINS:
        return [fn(*args) for args in argtuples]
    try:
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else methods[0])
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(argtuples)),
                                 mp_context=ctx) as pool:
            return list(pool.map(fn, *zip(*argtuples)))
    except (OSError, PermissionError, ValueError):
        return [fn(*args) for args in argtuples]


def _portfolio_candidate(graph, k, eps, metric, caps, kind, seed):
    """Build one constructive candidate, repair balance, FM-refine it.

    Returns ``(cost, labels)`` or ``None`` when construction fails.
    Top-level function so it pickles into worker processes.
    """
    rng = np.random.default_rng(seed)
    try:
        if kind == "greedy":
            p = greedy_sequential_partition(graph, k, eps, rng=rng,
                                            relaxed=True)
        elif kind == "bfs":
            p = bfs_growth_partition(graph, k, eps, rng=rng, relaxed=True)
        else:
            p = random_balanced_partition(graph, k, eps, rng=rng,
                                          relaxed=True)
    except ReproError:
        # a constructive heuristic may legitimately fail on a coarsened
        # instance (e.g. InfeasibleError under tight caps); the portfolio
        # simply proceeds with the surviving candidates
        return None
    # count-based constructions can violate *weight* caps on coarsened
    # hypergraphs — repair before refining, since FM only keeps
    # cap-respecting prefixes from a feasible start.
    repaired = rebalance(graph, p.labels, caps)
    refined = _refine(graph, repaired, k, eps, metric, caps)
    return float(cost(graph, Partition(refined, k), metric)), refined


def _single_vcycle(graph, k, eps, metric, seed, coarsen_to, initial_tries,
                   relaxed):
    """One seeded V-cycle; returns ``(cost, labels)``.  Picklable."""
    part = multilevel_partition(graph, k, eps, metric,
                                rng=np.random.default_rng(seed),
                                coarsen_to=coarsen_to,
                                initial_tries=initial_tries,
                                relaxed=relaxed, repetitions=1, n_jobs=1)
    return float(cost(graph, part, metric)), part.labels


def _single_vcycle_shm(descriptor, k, eps, metric, seed, coarsen_to,
                       initial_tries, relaxed):
    """`_single_vcycle` over a shared-memory CSR descriptor.

    What pickles into the worker is the ~100-byte descriptor; the
    worker attaches by name and runs over zero-copy views, so its
    private RSS stays a small constant regardless of instance size.
    """
    shared = SharedCSR.attach(descriptor)
    try:
        return _single_vcycle(shared.hypergraph(), k, eps, metric, seed,
                              coarsen_to, initial_tries, relaxed)
    finally:
        shared.close()


def _initial_portfolio(
    graph: Hypergraph,
    k: int,
    eps: float,
    metric: Metric,
    rng: np.random.Generator,
    caps: np.ndarray,
    tries: int,
    n_jobs: int = 1,
) -> Partition:
    """Best of several constructive starts, each FM-refined.

    Candidate seeds are drawn up-front, so the winning candidate is the
    same whether the portfolio runs serially or across processes.
    """
    kinds = ["greedy", "bfs"] + ["random"] * tries
    seeds = rng.integers(0, _SEED_BOUND, size=len(kinds))
    args = [(graph, k, eps, metric, caps, kind, int(seed))
            for kind, seed in zip(kinds, seeds)]
    results = [r for r in _run_tasks(_portfolio_candidate, args, n_jobs,
                                     est_pins=graph.num_pins)
               if r is not None]
    assert results, "no initial partition could be constructed"
    best = min(range(len(results)), key=lambda i: results[i][0])
    return Partition(results[best][1], k)


def multilevel_partition(
    graph: Hypergraph,
    k: int,
    eps: float = 0.0,
    metric: Metric = Metric.CONNECTIVITY,
    rng: int | np.random.Generator | None = None,
    coarsen_to: int | None = None,
    initial_tries: int = 4,
    relaxed: bool = True,
    repetitions: int = 1,
    n_jobs: int = 1,
) -> Partition:
    """Full multilevel partitioner.

    ``relaxed=True`` (default) uses the ``ceil`` balance threshold so a
    feasible solution always exists (Appendix A); pass ``False`` for the
    strict constraint on instances where you know it is satisfiable.
    ``repetitions > 1`` runs independent V-cycles with different random
    matchings and keeps the cheapest result.  ``n_jobs > 1`` executes
    those V-cycles (and the initial-portfolio candidates of a single
    cycle) in parallel worker processes; for a fixed seed the returned
    partition is identical regardless of ``n_jobs``.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if repetitions > 1:
        seeds = gen.integers(0, _SEED_BOUND, size=repetitions)
        tail = (coarsen_to, initial_tries, relaxed)
        shared = None
        if n_jobs > 1 and graph.num_pins >= _SHM_HANDOFF_MIN_PINS:
            try:
                shared = SharedCSR.from_hypergraph(graph)
            except SharedMemoryError:
                shared = None           # no /dev/shm: pickle as before
        if shared is not None:
            with shared:
                descriptor = shared.descriptor()
                args = [(descriptor, k, eps, metric, int(seed), *tail)
                        for seed in seeds]
                results = _run_tasks(_single_vcycle_shm, args, n_jobs,
                                     est_pins=graph.num_pins)
        else:
            args = [(graph, k, eps, metric, int(seed), *tail)
                    for seed in seeds]
            results = _run_tasks(_single_vcycle, args, n_jobs,
                                 est_pins=graph.num_pins)
        best = min(range(len(results)), key=lambda i: results[i][0])
        return Partition(results[best][1], k)
    if coarsen_to is None:
        coarsen_to = max(40, 4 * k)
    caps = weight_caps(graph, k, eps, relaxed=relaxed)
    max_cluster = max(float(graph.node_weights.max(initial=1.0)),
                      float(caps[0]) / 3.0)

    pool = None
    if n_jobs > 1 and graph.num_pins >= POOL_MIN_PINS:
        try:
            pool = RoundPool(n_jobs)
        except WorkerPoolError:
            pool = None                 # restricted env: identical serially
    try:
        levels: list[tuple[Hypergraph, np.ndarray]] = []
        cur = graph
        # Per-level cluster-weight cap, ramped geometrically toward the
        # global cap: level L's clusters stay within a slack multiple of
        # that level's expected average weight, which keeps coarsening
        # balanced (no snowball cluster eating its neighbourhood on the
        # first level) while still letting deep levels merge freely.
        level_cap = (CLUSTER_SLACK * SHRINK_TARGET
                     * float(graph.node_weights.sum()) / max(graph.n, 1))
        stalls = 0
        while cur.n > coarsen_to:
            step = subround_coarsen_step(cur, gen,
                                         min(max_cluster, level_cap),
                                         pool=pool)
            level_cap *= SHRINK_TARGET
            if step is None or step[0].n >= cur.n:
                break
            coarse, mapping = step
            levels.append((cur, mapping))
            stalls = stalls + 1 if coarse.n > _STALL_SHRINK * cur.n else 0
            cur = coarse
            instrument.bump("coarsen_levels")
            if stalls >= 2:
                # two near-no-op levels in a row even with the cap ramp:
                # the structure is exhausted, and every extra level pays
                # a refinement pass — hand over to the initial portfolio
                break

        part = _initial_portfolio(cur, k, eps, metric, gen, caps,
                                  initial_tries, n_jobs=n_jobs)
        labels = part.labels.copy()
        for fine, mapping in reversed(levels):
            labels = labels[mapping]
            labels = _refine(fine, labels, k, eps, metric, caps, pool)
        # final safety: the flat graph has unit weights, so repair +
        # refine guarantees the returned partition honours the caps.
        labels = rebalance(graph, labels, caps)
        labels = _refine(graph, labels, k, eps, metric, caps, pool)
    finally:
        if pool is not None:
            pool.close()
            stats = pool.last_stats
            if stats:
                instrument.bump(
                    "pool_worker_rss_delta_bytes_max",
                    max(s["rss_delta_bytes"] for s in stats))
    if sanitize.ENABLED:
        sanitize.check_partition(graph, labels, k,
                                 where="multilevel_partition")
        sanitize.check_balance(graph, labels, caps,
                               where="multilevel_partition")
    return Partition(labels, k)


def _refine(graph, labels, k, eps, metric, caps, pool=None):
    """Pick the refinement engine by level size (instance-dependent only,
    so the choice — and the result — is identical for every ``n_jobs``).

    The heap FM's per-move Python loop costs O(degree) per move, so it
    is gated on *both* node and pin count: coarse levels of expander-ish
    instances keep hundreds of thousands of pins across a few hundred
    nodes, and a single heap pass there costs more than every sub-round
    pass of the whole V-cycle combined.
    """
    if (graph.n >= _SYNC_FM_MIN_NODES
            or graph.num_pins >= _SYNC_FM_MIN_PINS):
        return subround_fm_refine(graph, labels, k=k, eps=eps, metric=metric,
                                  caps=caps, pool=pool).labels.copy()
    return fm_refine(graph, labels, k=k, eps=eps, metric=metric,
                     caps=caps).labels.copy()
