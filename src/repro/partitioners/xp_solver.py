"""The XP algorithm of Lemma 4.3 (and its extensions).

Parameterised by the allowed cost ``L``, balanced partitioning is
solvable in ``n^{f(L)}`` time: enumerate which ≤ L hyperedges are cut
(a *configuration*), contract the uncut remainder into components, and
decide by dynamic programming whether the components can be packed into
parts respecting the balance constraint(s).

Implemented variants:

* :func:`xp_decision` — Lemma 4.3 (single balance constraint, both
  metrics; for connectivity with ``k ≥ 3`` the full per-edge
  colour-subset configurations of the paper's proof are enumerated);
* :func:`xp_multiconstraint_decision` — Appendix D.2 (``c`` constraints,
  a ``(c·k)``-dimensional DP state);
* :func:`xp_optimum` — minimise by increasing ``L``, exhibiting the
  ``n^{f(L)}`` scaling benchmarked in ``bench_lemma43_xp``.

All variants assume hyperedge weights ≥ 1, so that "cost ≤ L" implies
"at most L cut hyperedges" (unit weights in the paper).
"""

from __future__ import annotations

from itertools import combinations, product

import numpy as np

from ..core.balance import MultiConstraint, balance_threshold
from ..core.cost import Metric, cost
from ..core.hypergraph import Hypergraph
from ..core.partition import Partition
from ..core.tolerance import GAIN_ATOL, gt, leq
from ..errors import ProblemTooLargeError
from .base import PartitionResult

__all__ = ["xp_decision", "xp_multiconstraint_decision", "xp_optimum"]


def _check_weights(graph: Hypergraph) -> None:
    if graph.num_edges and float(graph.edge_weights.min()) < 1.0:
        raise ValueError("XP solver requires hyperedge weights >= 1")


def _components_after_removal(graph: Hypergraph, removed: tuple[int, ...]):
    """Connected components of the hypergraph minus the removed edges,
    plus, per component, the set of removed-edge ids touching it."""
    remaining = graph.remove_edges(removed)
    comps = remaining.connected_components()
    comp_of = np.empty(graph.n, dtype=np.int64)
    for ci, comp in enumerate(comps):
        for v in comp:
            comp_of[v] = ci
    touching: list[set[int]] = [set() for _ in comps]
    for j in removed:
        for v in graph.edges[j]:
            touching[comp_of[v]].add(j)
    return comps, touching


def _pack_components(
    comps: list[list[int]],
    allowed: list[set[int]],
    k: int,
    caps: np.ndarray,
) -> list[int] | None:
    """DP of Lemma 4.3: colour each component from its allowed set so
    every part's node count stays within ``caps``.  Returns per-component
    colours or ``None``."""
    start = (0,) * k
    frontier: dict[tuple[int, ...], tuple[tuple[int, ...] | None, int]] = {
        start: (None, -1)}
    layers = [frontier]
    for ci, comp in enumerate(comps):
        size = len(comp)
        nxt: dict[tuple[int, ...], tuple[tuple[int, ...], int]] = {}
        for state in layers[-1]:
            for colour in allowed[ci]:
                if state[colour] + size > caps[colour]:
                    continue
                new = list(state)
                new[colour] += size
                key = tuple(new)
                if key not in nxt:
                    nxt[key] = (state, colour)
        if not nxt:
            return None
        layers.append(nxt)
    # Any surviving end state is feasible (caps enforced during DP).
    state = next(iter(layers[-1]))
    colours: list[int] = []
    for depth in range(len(comps), 0, -1):
        prev, colour = layers[depth][state]
        colours.append(colour)
        state = prev  # type: ignore[assignment]
    colours.reverse()
    return colours


def _labels_from_colours(n: int, comps: list[list[int]],
                         colours: list[int]) -> np.ndarray:
    labels = np.empty(n, dtype=np.int64)
    for comp, colour in zip(comps, colours):
        for v in comp:
            labels[v] = colour
    return labels


def _edge_subsets(m: int, max_cut: int, max_subsets: int):
    total = 0
    for size in range(0, max_cut + 1):
        for sub in combinations(range(m), size):
            total += 1
            if total > max_subsets:
                raise ProblemTooLargeError(
                    f"XP enumeration exceeds {max_subsets} cut-edge subsets")
            yield sub


def xp_decision(
    graph: Hypergraph,
    k: int,
    L: float,
    eps: float = 0.0,
    metric: Metric = Metric.CUT_NET,
    relaxed: bool = False,
    max_subsets: int = 2_000_000,
    max_configs: int = 2_000_000,
) -> Partition | None:
    """Is there an ε-balanced k-way partitioning of cost ≤ ``L``?

    Returns a witness partition or ``None``.  Runtime ``n^{O(L)}``.
    """
    _check_weights(graph)
    if L < 0:
        return None
    m = graph.num_edges
    caps = np.full(k, balance_threshold(graph.n, k, eps, relaxed=relaxed),
                   dtype=np.int64)
    max_cut = min(m, int(L))
    simple = metric == Metric.CUT_NET or k == 2
    for removed in _edge_subsets(m, max_cut, max_subsets):
        est = float(graph.edge_weights[list(removed)].sum()) if removed else 0.0
        if gt(est, L, atol=GAIN_ATOL):
            continue
        comps, touching = _components_after_removal(graph, removed)
        if simple:
            allowed = [set(range(k)) for _ in comps]
            colours = _pack_components(comps, allowed, k, caps)
            if colours is None:
                continue
            labels = _labels_from_colours(graph.n, comps, colours)
            if leq(cost(graph, labels, metric, k=k), L, atol=GAIN_ATOL):
                return Partition(labels, k)
            continue
        # Connectivity with k >= 3: enumerate allowed-colour subsets per
        # removed edge (the paper's full configurations).
        colour_sets = [frozenset(s) for r in range(2, k + 1)
                       for s in combinations(range(k), r)]
        n_cfg = len(colour_sets) ** len(removed)
        if n_cfg > max_configs:
            raise ProblemTooLargeError(
                f"{n_cfg} colour configurations exceed {max_configs}")
        for assignment in product(colour_sets, repeat=len(removed)):
            cfg_cost = sum(
                graph.edge_weights[j] * (len(cs) - 1)
                for j, cs in zip(removed, assignment))
            if gt(cfg_cost, L, atol=GAIN_ATOL):
                continue
            cs_of = dict(zip(removed, assignment))
            allowed = []
            ok = True
            for ci in range(len(comps)):
                al = set(range(k))
                for j in touching[ci]:
                    al &= cs_of[j]
                if not al:
                    ok = False
                    break
                allowed.append(al)
            if not ok:
                continue
            colours = _pack_components(comps, allowed, k, caps)
            if colours is None:
                continue
            labels = _labels_from_colours(graph.n, comps, colours)
            if leq(cost(graph, labels, metric, k=k), L, atol=GAIN_ATOL):
                return Partition(labels, k)
    return None


def xp_multiconstraint_decision(
    graph: Hypergraph,
    k: int,
    L: float,
    constraints: MultiConstraint,
    eps: float = 0.0,
    metric: Metric = Metric.CUT_NET,
    relaxed: bool = False,
    max_subsets: int = 2_000_000,
) -> Partition | None:
    """Appendix D.2: the XP algorithm with ``c`` balance constraints.

    DP state tracks, per (constraint, colour), how many subset nodes the
    colour already holds — the ``c·k + 1``-dimensional table of the
    paper, implemented sparsely.  Uses the cut-net metric (or k = 2 where
    the metrics agree), matching the contexts where the paper invokes it.
    """
    _check_weights(graph)
    if L < 0:
        return None
    if metric == Metric.CONNECTIVITY and k > 2:
        raise NotImplementedError(
            "multi-constraint XP implemented for cut-net (or k = 2)")
    m = graph.num_edges
    c = constraints.c
    subset_of = np.full(graph.n, -1, dtype=np.int64)
    caps = []
    for j, subset in enumerate(constraints.subsets):
        for v in subset:
            subset_of[v] = j
        caps.append(balance_threshold(len(subset), k, eps, relaxed=relaxed))
    for removed in _edge_subsets(m, min(m, int(L)), max_subsets):
        est = float(graph.edge_weights[list(removed)].sum()) if removed else 0.0
        if gt(est, L, atol=GAIN_ATOL):
            continue
        comps, _ = _components_after_removal(graph, removed)
        inter = [np.zeros(c, dtype=np.int64) for _ in comps]
        for ci, comp in enumerate(comps):
            for v in comp:
                if subset_of[v] >= 0:
                    inter[ci][subset_of[v]] += 1
        start = tuple([0] * (c * k))
        layers: list[dict] = [{start: (None, -1)}]
        dead = False
        for ci in range(len(comps)):
            nxt: dict = {}
            iv = inter[ci]
            for state in layers[-1]:
                for colour in range(k):
                    new = list(state)
                    ok = True
                    for j in range(c):
                        if iv[j] == 0:
                            continue
                        idx = j * k + colour
                        new[idx] += int(iv[j])
                        if new[idx] > caps[j]:
                            ok = False
                            break
                    if not ok:
                        continue
                    key = tuple(new)
                    if key not in nxt:
                        nxt[key] = (state, colour)
            if not nxt:
                dead = True
                break
            layers.append(nxt)
        if dead:
            continue
        state = next(iter(layers[-1]))
        colours: list[int] = []
        for depth in range(len(comps), 0, -1):
            prev, colour = layers[depth][state]
            colours.append(colour)
            state = prev
        colours.reverse()
        labels = _labels_from_colours(graph.n, comps, colours)
        if leq(cost(graph, labels, metric, k=k), L, atol=GAIN_ATOL):
            return Partition(labels, k)
    return None


def xp_optimum(
    graph: Hypergraph,
    k: int,
    eps: float = 0.0,
    metric: Metric = Metric.CUT_NET,
    relaxed: bool = False,
    L_max: float | None = None,
    **kwargs,
) -> PartitionResult:
    """Minimise cost by running :func:`xp_decision` for ``L = 0, 1, ...``.

    The first feasible ``L`` certifies the optimum (edge weights ≥ 1 make
    integer steps sufficient for integer weights).
    """
    if L_max is None:
        L_max = float((k - 1) * max(graph.num_edges, 1))
    L = 0.0
    while L <= L_max:
        witness = xp_decision(graph, k, L, eps, metric, relaxed, **kwargs)
        if witness is not None:
            return PartitionResult(witness, cost(graph, witness, metric),
                                   metric, optimal=True, info={"L": L})
        L += 1.0
    raise ProblemTooLargeError(f"no solution found up to L_max={L_max}")
